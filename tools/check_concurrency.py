"""Static concurrency check: lock-order cycles, guarded-by, baseline drift.

CI runs this over ``src/repro`` so the lock hierarchy is a checked
artifact instead of tribal knowledge: a new acquired-while-holding
edge, a potential deadlock cycle, a ``# guarded_by:`` field mutated
outside its lock, or drift against the checked-in baseline
(``tools/concurrency_baseline.json``) breaks the build.

Usage::

    python tools/check_concurrency.py src/repro
    python tools/check_concurrency.py --graph src/repro
    python tools/check_concurrency.py --update-baseline src/repro

Without ``--baseline`` the default baseline next to this script is used
when it exists; ``--no-baseline`` skips drift checking (cycles and
guarded-by only).  Exits 0 when clean, 1 on findings, 2 on usage
errors — the same discipline as ``check_md_links.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.check import run_check  # noqa: E402

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "concurrency_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="lock-order + guarded-by static analysis",
    )
    parser.add_argument("paths", nargs="*", help="packages or files to analyze")
    parser.add_argument(
        "--baseline",
        default=str(_DEFAULT_BASELINE),
        help="baseline JSON (default: tools/concurrency_baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip baseline drift checking (cycles + guarded-by only)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline's edge set from the current tree",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="print the acquired-while-holding graph before findings",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    return run_check(
        args.paths,
        baseline_path=None if args.no_baseline else args.baseline,
        update_baseline=args.update_baseline,
        show_graph=args.graph,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
