"""Check that relative markdown links in the repo's docs resolve.

CI runs this over README.md, docs/, and examples/ so documentation and
the tree cannot drift silently: a renamed file, a deleted doc, or a typo
in a link breaks the build instead of breaking a reader.

Usage::

    python tools/check_md_links.py README.md docs examples

External links (http/https/mailto) and pure in-page anchors (#section)
are skipped; a relative link's optional #anchor is stripped before the
existence check.  Exits 1 listing every dangling link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links: [text](target) — images included via the ![ prefix
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(paths: list[str]):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path
        else:
            print(f"warning: skipping non-markdown argument {path}", file=sys.stderr)


def check(paths: list[str]) -> list[str]:
    failures: list[str] = []
    checked = 0
    for document in iter_markdown(paths):
        text = document.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            checked += 1
            resolved = (document.parent / relative).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                failures.append(f"{document}:{line}: dangling link -> {target}")
    print(f"checked {checked} relative link(s)")
    return failures


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_md_links.py <file-or-dir> [...]", file=sys.stderr)
        return 2
    failures = check(argv)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
