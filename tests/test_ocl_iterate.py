"""Tests for OCL ``iterate`` (the general fold) and ``closure``."""

import pytest

from repro.errors import OclSyntaxError
from repro.ocl import evaluate, parse
from repro.ocl.astnodes import IterateCall


class TestIterateParsing:
    def test_shape(self):
        ast = parse("Sequence{1,2}->iterate(x; acc = 0 | acc + x)")
        assert isinstance(ast, IterateCall)
        assert ast.variable == "x" and ast.accumulator == "acc"

    def test_type_annotations_accepted(self):
        ast = parse("Sequence{1}->iterate(x : Integer; acc : Integer = 0 | acc + x)")
        assert isinstance(ast, IterateCall)

    @pytest.mark.parametrize(
        "bad",
        [
            "Sequence{1}->iterate(x | x)",
            "Sequence{1}->iterate(x; acc | acc)",
            "Sequence{1}->iterate(x; acc = 0, y | acc)",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(OclSyntaxError):
            parse(bad)


class TestIterateEvaluation:
    def test_sum_via_iterate(self):
        assert evaluate("Sequence{1,2,3,4}->iterate(x; acc = 0 | acc + x)") == 10

    def test_product(self):
        assert evaluate("Sequence{2,3,4}->iterate(x; acc = 1 | acc * x)") == 24

    def test_string_fold(self):
        result = evaluate("Sequence{'a','b','c'}->iterate(s; out = '' | out.concat(s))")
        assert result == "abc"

    def test_max_via_iterate(self):
        result = evaluate(
            "Sequence{3,9,5}->iterate(x; best = 0 | if x > best then x else best endif)"
        )
        assert result == 9

    def test_collection_accumulator(self):
        result = evaluate(
            "Sequence{1,2,3}->iterate(x; out = Sequence{} | out->including(x * x))"
        )
        assert result == [1, 4, 9]

    def test_empty_source_yields_init(self):
        assert evaluate("Sequence{}->iterate(x; acc = 42 | acc + x)") == 42

    def test_accumulator_shadows_outer(self):
        result = evaluate(
            "let acc = 100 in Sequence{1}->iterate(x; acc = 0 | acc + x)"
        )
        assert result == 1

    def test_iterate_equals_builtin_sum(self):
        values = "Sequence{5,7,11}"
        assert evaluate(values + "->iterate(x; a = 0 | a + x)") == evaluate(
            values + "->sum()"
        )


class TestClosure:
    def test_transitive_navigation(self, library_metamodel):
        Book = library_metamodel["Book"]
        a, b, c = Book(title="a"), Book(title="b"), Book(title="c")
        a.sequel = b
        b.sequel = c
        result = evaluate("self.sequel->closure(x | x.sequel)", self_object=a)
        assert result == [b, c]

    def test_closure_handles_cycles(self, library_metamodel):
        Book = library_metamodel["Book"]
        a, b = Book(title="a"), Book(title="b")
        a.sequel = b
        b.sequel = a
        result = evaluate("self.sequel->closure(x | x.sequel)", self_object=a)
        assert result == [b, a]
