"""Elastic federation: live join/leave, shard migration, replicated failover."""

import threading

import pytest

from repro.errors import FederationError, NodeDownError
from repro.middleware.envelope import QoS
from repro.middleware.transport import InProcessTransport
from repro.runtime import (
    Federation,
    HashRing,
    ReplicaManager,
    RunConfig,
    ScenarioRunner,
    ShardManifest,
    ShardedNamingService,
)


class Counter:
    """Minimal stateful servant for migration tests."""

    def __init__(self, value=0.0):
        self.value = value

    def bump(self, amount):
        self.value += amount
        return self.value

    def read(self):
        return self.value


MODULE = type("ElasticTestModule", (), {"Counter": Counter})

RETRY = QoS(retries=2)


def build(nodes=3, partitions=12, replication=0):
    federation = Federation(latency_ms=0.0)
    for i in range(nodes):
        federation.add_node(f"node-{i}").module = MODULE
    names = []
    for k in range(partitions):
        partition = f"part-{k}"
        node = federation.node_for(partition)
        name = f"{partition}/Counter/0"
        node.bind(name, Counter(100.0))
        names.append(name)
    if replication:
        federation.enable_replication(replication)
    return federation, names


def deploy_module(node):
    node.module = MODULE


# ---------------------------------------------------------------------------
# ring rehash edge cases
# ---------------------------------------------------------------------------


class TestRingRehash:
    def test_owner_stability_after_join(self):
        """>= (n-1)/n of the keys keep their owner when a member joins."""
        ring = HashRing()
        members = ["a", "b", "c", "d"]
        for member in members:
            ring.add(member)
        keys = [f"key-{i}" for i in range(400)]
        before = {key: ring.owner(key) for key in keys}
        ring.add("e")
        moved = sum(1 for key in keys if ring.owner(key) != before[key])
        n = len(members)
        assert moved / len(keys) <= 1.0 / n, (
            f"{moved}/{len(keys)} keys moved; consistent hashing promises "
            f"at most ~1/{n + 1}"
        )
        # and every moved key moved TO the joiner, never between old members
        assert all(
            ring.owner(key) == "e" for key in keys if ring.owner(key) != before[key]
        )

    def test_preference_starts_at_owner_and_is_distinct(self):
        ring = HashRing()
        for member in ("a", "b", "c"):
            ring.add(member)
        preference = ring.preference("some-key", 3)
        assert preference[0] == ring.owner("some-key")
        assert len(preference) == len(set(preference)) == 3

    def test_preference_caps_at_member_count(self):
        ring = HashRing()
        ring.add("solo")
        assert ring.preference("k", 5) == ["solo"]

    def test_retiring_the_last_node_raises_cleanly(self):
        federation, _ = build(nodes=1, partitions=2)
        with pytest.raises(FederationError, match="last node"):
            federation.retire("node-0")
        # the federation is untouched by the refused retire
        assert sorted(federation.nodes) == ["node-0"]
        assert federation.naming.shard_names == ["node-0"]
        federation.shutdown()

    def test_rejoining_a_retired_node_name(self):
        federation, names = build(nodes=3)
        federation.retire("node-1")
        assert "node-1" not in federation.nodes
        rejoined = federation.join("node-1", deploy=deploy_module)
        assert federation.nodes["node-1"] is rejoined
        # ownership is hash-determined, so the rejoined name owns exactly
        # the partitions it owned before it retired
        for name in names:
            assert federation.call(name, "read") == 100.0
        federation.shutdown()

    def test_epoch_bumps_once_per_swap(self):
        service = ShardedNamingService()
        assert service.epoch == 0
        service.add_shard("a")
        service.add_shard("b")
        assert service.epoch == 2
        service.remove_shard("a")
        assert service.epoch == 3

    def test_preview_ring_does_not_change_ownership(self):
        service = ShardedNamingService()
        for shard in ("a", "b", "c"):
            service.add_shard(shard)
        epoch = service.epoch
        preview = service.preview_ring(add="d")
        assert "d" in preview.members
        assert service.epoch == epoch
        assert "d" not in service.ring.members


# ---------------------------------------------------------------------------
# join: live shard migration
# ---------------------------------------------------------------------------


class TestJoin:
    def test_join_moves_only_rehashed_bindings(self):
        federation, names = build()
        owners_before = {name: federation.naming.owner_of(name) for name in names}
        federation.join("node-3", deploy=deploy_module)
        moved = [
            name
            for name in names
            if federation.naming.owner_of(name) != owners_before[name]
        ]
        assert federation.last_rebalance["moved"] == len(moved)
        assert federation.last_rebalance["total"] == len(names)
        assert 0 < len(moved) < len(names)
        assert all(
            federation.naming.owner_of(name) == "node-3" for name in moved
        )
        federation.shutdown()

    def test_join_preserves_servant_state(self):
        federation, names = build()
        for name in names:
            federation.call(name, "bump", 7.0)
        federation.join("node-3", deploy=deploy_module)
        assert all(federation.call(name, "read") == 107.0 for name in names)
        federation.shutdown()

    def test_migrated_servant_is_an_instance_of_the_new_nodes_module(self):
        federation, names = build()
        federation.join("node-3", deploy=deploy_module)
        moved = [n for n in names if federation.naming.owner_of(n) == "node-3"]
        assert moved
        servant = federation.servant(moved[0])
        assert type(servant).__name__ == "Counter"
        # the old owner no longer holds the binding or the servant
        for node in federation.nodes.values():
            if node.name == "node-3":
                continue
            assert moved[0] not in node.services.naming.list()
        federation.shutdown()

    def test_join_without_application_fails_when_bindings_move(self):
        federation, _ = build()
        with pytest.raises(FederationError, match="no application deployed"):
            federation.join("node-3")
        # the failed join leaves the topology untouched
        assert "node-3" not in federation.nodes
        assert "node-3" not in federation.naming.shard_names
        federation.shutdown()

    def test_duplicate_join_rejected(self):
        federation, _ = build()
        with pytest.raises(FederationError, match="already exists"):
            federation.join("node-0")
        federation.shutdown()

    def test_join_provisions_existing_users(self):
        federation, _ = build()
        federation.add_user("alice", "pw", roles=["teller"])
        node = federation.join("node-3", deploy=deploy_module)
        credential = node.services.auth.login("alice", "pw")
        assert credential.token
        federation.shutdown()


# ---------------------------------------------------------------------------
# retire: graceful leave
# ---------------------------------------------------------------------------


class TestRetire:
    def test_retire_migrates_the_whole_shard(self):
        federation, names = build()
        for name in names:
            federation.call(name, "bump", 1.5)
        moved_names = [
            name for name in names if federation.naming.owner_of(name) == "node-1"
        ]
        summary = federation.retire("node-1")
        assert summary["moved"] == len(moved_names)
        assert "node-1" not in federation.nodes
        assert "node-1" not in federation.naming.shard_names
        assert all(federation.call(name, "read") == 101.5 for name in names)
        federation.shutdown()

    def test_retire_unknown_node(self):
        federation, _ = build()
        with pytest.raises(FederationError, match="unknown node"):
            federation.retire("ghost")
        federation.shutdown()

    def test_retire_dead_node_refused(self):
        federation, _ = build(replication=1)
        federation.kill("node-1")
        with pytest.raises(FederationError, match="fail_over"):
            federation.retire("node-1")
        federation.shutdown()

    def test_concurrent_traffic_survives_a_retire(self):
        federation, names = build(nodes=4, partitions=16)
        stop = threading.Event()
        errors = []

        def hammer():
            i = 0
            while not stop.is_set():
                try:
                    federation.call(names[i % len(names)], "bump", 1.0, qos=RETRY)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        federation.retire("node-2")
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[:1]
        # no bump was lost or duplicated across the migration
        total = sum(federation.call(name, "read") - 100.0 for name in names)
        routed = sum(federation.routed.values())
        assert total == routed - len(names)  # final read-only sweep excluded
        federation.shutdown()


# ---------------------------------------------------------------------------
# kill + replicated failover
# ---------------------------------------------------------------------------


class TestFailover:
    def test_dead_node_fault_is_pre_effect_and_typed(self):
        federation, names = build(nodes=2, partitions=8)
        federation.kill("node-1")
        victim = next(
            n for n in names if federation.naming.owner_of(n) == "node-1"
        )
        with pytest.raises(NodeDownError) as excinfo:
            federation.call(victim, "read")
        assert excinfo.value.pre_effect
        assert excinfo.value.node == "node-1"
        federation.shutdown()

    def test_failover_promotes_standby_state_under_retry_budget(self):
        federation, names = build(replication=1)
        for name in names:
            federation.call(name, "bump", 5.0)  # write-through replicates
        federation.kill("node-2")
        # the retry budget absorbs the dead-node fault: first attempt sees
        # NodeDownError, the failover element promotes, the retry lands on
        # the promoted standby with the replicated state
        assert all(
            federation.call(name, "bump", 1.0, qos=RETRY) == 106.0
            for name in names
        )
        assert federation.failovers == 1
        assert "node-2" not in federation.nodes
        assert federation.last_rebalance["action"] == "failover"
        assert federation.last_rebalance["lost"] == []
        federation.shutdown()

    def test_without_replication_callers_keep_failing(self):
        federation, names = build(replication=0)
        federation.kill("node-2")
        victim = next(
            n for n in names if federation.naming.owner_of(n) == "node-2"
        )
        with pytest.raises(NodeDownError):
            federation.call(victim, "read", qos=RETRY)
        # the dead node stays in the ring: there is nothing to promote
        assert "node-2" in federation.naming.shard_names
        federation.shutdown()

    def test_fail_over_is_idempotent(self):
        federation, _ = build(replication=1)
        federation.kill("node-0")
        assert federation.fail_over("node-0") is True
        assert federation.fail_over("node-0") is False
        federation.shutdown()

    def test_fail_over_alive_node_refused(self):
        federation, _ = build(replication=1)
        with pytest.raises(FederationError, match="alive"):
            federation.fail_over("node-0")
        federation.shutdown()

    def test_reconcile_promotes_all_dead_members(self):
        federation, names = build(nodes=4, partitions=16, replication=1)
        for name in names:
            federation.call(name, "bump", 1.0)
        federation.kill("node-1")
        assert federation.reconcile() == ["node-1"]
        assert federation.reconcile() == []
        assert all(federation.call(name, "read") == 101.0 for name in names)
        federation.shutdown()

    def test_kill_is_idempotent_and_drains(self):
        federation, _ = build(replication=1)
        federation.kill("node-0")
        federation.kill("node-0")  # second kill is a no-op
        assert not federation.nodes["node-0"].alive
        federation.shutdown()


# ---------------------------------------------------------------------------
# replication internals
# ---------------------------------------------------------------------------


class TestReplication:
    def test_standbys_are_ring_successors(self):
        federation, names = build(replication=1)
        manager = federation.replicas
        partition = "part-0"
        preference = federation.naming.ring.preference(partition, 2)
        federation.call(names[0], "bump", 1.0)
        group = manager._groups[partition]
        assert group.primary == preference[0]
        assert list(group.standbys) == preference[1:]
        federation.shutdown()

    def test_write_through_keeps_standby_current(self):
        federation, names = build(replication=1)
        name = names[0]
        partition = name.split("/")[0]
        federation.call(name, "bump", 41.0)
        standby_name = federation.naming.ring.preference(partition, 2)[1]
        copy = federation.replicas.take(partition, standby_name)[name]
        assert copy.value == 141.0
        assert copy is not federation.servant(name)
        federation.shutdown()

    def test_replica_manager_rejects_zero_standbys(self):
        federation, _ = build()
        with pytest.raises(FederationError):
            ReplicaManager(federation, count=0)
        federation.shutdown()

    def test_shard_manifest_is_json_shaped(self):
        manifest = ShardManifest(
            partition="part-1",
            source="node-0",
            entries=[("part-1/Counter/0", "Counter", {"value": 3.0})],
        )
        document = manifest.to_dict()
        assert document["format"] == "repro-shard-manifest/1"
        assert document["entries"][0]["state"] == {"value": 3.0}

    def test_enable_replication_conflicting_count_rejected(self):
        federation, _ = build(replication=1)
        with pytest.raises(FederationError, match="already enabled"):
            federation.enable_replication(2)
        federation.shutdown()


# ---------------------------------------------------------------------------
# retries re-resolve the binding
# ---------------------------------------------------------------------------


class TestRetryRerouting:
    def test_queued_envelope_lands_after_migration(self):
        """An async call submitted before a join still lands correctly:
        the handler re-resolves the binding at delivery time."""
        federation, names = build()
        future = federation.call_async(names[0], "bump", 2.0, qos=RETRY)
        assert future.result(timeout_ms=10_000.0) == 102.0
        federation.join("node-3", deploy=deploy_module)
        after = federation.call_async(names[0], "bump", 2.0, qos=RETRY)
        assert after.result(timeout_ms=10_000.0) == 104.0
        federation.shutdown()

    def test_direct_invoke_still_supported_without_binding(self):
        federation, names = build()
        node, ref = federation.resolve(names[0])
        assert federation.invoke(node, ref, "read", ()) == 100.0
        federation.shutdown()

    def test_transport_is_inprocess_by_default(self):
        federation, _ = build()
        assert isinstance(federation.transport, InProcessTransport)
        federation.shutdown()

    def test_batch_members_reroute_after_retire(self):
        """A pipelined batch queued across a graceful retire re-resolves
        its members onto the new owners instead of failing."""
        federation, names = build(nodes=3)
        moved = [n for n in names if federation.naming.owner_of(n) == "node-1"]
        assert moved
        federation.retire("node-1")
        pipe = federation.pipeline(max_batch=len(names))
        futures = [pipe.call(name, "bump", 1.0) for name in names]
        pipe.flush()
        assert all(f.result(timeout_ms=10_000.0) == 101.0 for f in futures)
        federation.shutdown()

    def test_batch_survives_kill_under_retry_budget(self):
        federation, names = build(replication=1)
        for name in names:
            federation.call(name, "bump", 1.0)
        federation.kill("node-1")
        pipe = federation.pipeline(max_batch=len(names), qos=RETRY)
        futures = [pipe.call(name, "bump", 1.0) for name in names]
        pipe.flush()
        assert all(f.result(timeout_ms=10_000.0) == 102.0 for f in futures)
        assert federation.failovers == 1
        federation.shutdown()


# ---------------------------------------------------------------------------
# the elastic scenario end to end
# ---------------------------------------------------------------------------


class TestElasticScenario:
    def _config(self, seed=1, ops=160):
        return RunConfig(
            scenario="banking_elastic",
            nodes=3,
            clients=4,
            ops=ops,
            seed=seed,
            concurrent=False,
            sim_latency_ms=0.1,
            churn=True,
        )

    def test_invariants_hold_under_kill_join_retire(self):
        result = ScenarioRunner("banking_elastic", self._config()).run()
        assert result.passed, result.invariant_violations
        elastic = result.federation_stats["elastic"]
        assert elastic["failovers"] == 1
        assert elastic["joins"] == 1
        assert elastic["retires"] == 1

    def test_digest_deterministic_across_runs(self):
        first = ScenarioRunner("banking_elastic", self._config(seed=5)).run()
        second = ScenarioRunner("banking_elastic", self._config(seed=5)).run()
        assert first.passed and second.passed
        assert first.digest() == second.digest()

    def test_churn_without_plan_is_a_scenario_error(self):
        from repro.errors import ScenarioError

        config = RunConfig(
            scenario="banking",
            nodes=2,
            clients=2,
            ops=20,
            concurrent=False,
            churn=True,
        )
        with pytest.raises(ScenarioError, match="churn plan"):
            ScenarioRunner("banking", config).run()

    def test_churn_needs_two_nodes(self):
        from repro.errors import ScenarioError

        config = self._config()
        config.nodes = 1
        with pytest.raises(ScenarioError, match=">= 2 nodes"):
            ScenarioRunner("banking_elastic", config).run()

    def test_concurrent_churn_with_faults_keeps_invariants(self):
        config = RunConfig(
            scenario="banking_elastic",
            nodes=3,
            clients=6,
            ops=240,
            seed=7,
            workers=4,
            concurrent=True,
            sim_latency_ms=0.1,
            churn=True,
            faults=True,
        )
        result = ScenarioRunner("banking_elastic", config).run()
        assert result.passed, result.invariant_violations
