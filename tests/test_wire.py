"""Sans-IO wire protocol: codec round trips, adversarial byte streams.

The frame codec is the trust boundary of the socket transport — every
test here drives it purely through bytes, no sockets anywhere.  Three
angles:

* round trips: every marshal-contract value survives encode/decode
  bit-exactly (property-style sweep over generated payloads);
* adversarial framing: split reads, interleaved frames, garbage magic,
  unknown versions/kinds, oversized lengths, truncated and trailing
  payloads all surface :class:`~repro.errors.ProtocolError` without
  crashing the decoder's owner;
* conversation rules: handshake ordering, fault encoding carrying the
  sender-side retry classification across.
"""

import random

import pytest

from repro.errors import (
    MarshallingError,
    MiddlewareError,
    NodeDownError,
    ProtocolError,
    AccessDeniedError,
)
from repro.middleware.bus import ObjectRefData, Request, marshal
from repro.middleware.envelope import Envelope, QoS
from repro.middleware.wire import (
    FAULT,
    HELLO,
    MAX_DEPTH,
    REQUEST,
    RESPONSE,
    VERSION,
    FrameDecoder,
    WireSession,
    decode_fault,
    decode_value,
    encode_fault,
    encode_frame,
    encode_value,
)


# ---------------------------------------------------------------------------
# value codec round trips
# ---------------------------------------------------------------------------


SCALARS = [
    None,
    True,
    False,
    0,
    -1,
    2**80,  # arbitrary precision survives
    -(2**80),
    3.5,
    -0.0,
    1e300,
    "",
    "text",
    "unicode é中﻿",
    b"",
    b"\x00\xffbinary",
    ObjectRefData("obj-1", "Account"),
]


@pytest.mark.parametrize("value", SCALARS, ids=repr)
def test_scalar_round_trip(value):
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert type(decoded) is type(value)


def test_container_round_trip():
    value = {
        "list": [1, "two", None, [3.0, False]],
        "tuple": (1, (2, b"x")),
        "ref": ObjectRefData("obj-9", "Bank"),
        "nested": {"deep": {"deeper": [ObjectRefData("o", "T")]}},
        "empty": {},
    }
    decoded = decode_value(encode_value(value))
    assert decoded == value
    # tuples stay tuples, lists stay lists — the distinction is encoded
    assert isinstance(decoded["tuple"], tuple)
    assert isinstance(decoded["list"], list)


def _random_value(rng, depth=0):
    """One random marshal-contract value (the property-test generator)."""
    choices = ["none", "bool", "int", "float", "str", "bytes", "ref"]
    if depth < 3:
        choices += ["list", "tuple", "dict"] * 2
    kind = rng.choice(choices)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randint(-(2**70), 2**70)
    if kind == "float":
        return rng.uniform(-1e12, 1e12)
    if kind == "str":
        return "".join(
            rng.choice("abé中 xyz0") for _ in range(rng.randint(0, 12))
        )
    if kind == "bytes":
        return bytes(rng.randint(0, 255) for _ in range(rng.randint(0, 16)))
    if kind == "ref":
        return ObjectRefData(f"obj-{rng.randint(0, 99)}", "T")
    if kind in ("list", "tuple"):
        items = [_random_value(rng, depth + 1) for _ in range(rng.randint(0, 4))]
        return tuple(items) if kind == "tuple" else items
    return {
        f"k{i}": _random_value(rng, depth + 1) for i in range(rng.randint(0, 4))
    }


def test_property_round_trip_over_marshalled_payloads():
    """Whatever marshal admits, the codec round-trips bit-exactly."""
    rng = random.Random(20260808)
    for _ in range(200):
        value = _random_value(rng)
        marshalled = marshal(value)  # the same contract, asserted
        assert decode_value(encode_value(marshalled)) == marshalled


def test_non_string_dict_keys_are_rejected():
    with pytest.raises(ProtocolError, match="keys must be strings"):
        encode_value({1: "x"})


def test_out_of_contract_value_is_rejected():
    with pytest.raises(ProtocolError, match="outside the wire contract"):
        encode_value(object())


# ---------------------------------------------------------------------------
# marshal error reporting (the path to the offending nested value)
# ---------------------------------------------------------------------------


def test_marshal_error_names_the_nested_path():
    class Opaque:
        pass

    with pytest.raises(MarshallingError) as excinfo:
        marshal({"outer": [1, {"inner": Opaque()}]}, root="args")
    message = str(excinfo.value)
    assert "args['outer'][1]['inner']" in message
    assert "Opaque" in message


def test_marshal_accepts_bytes():
    assert marshal({"blob": b"\x00\x01"}) == {"blob": b"\x00\x01"}


# ---------------------------------------------------------------------------
# adversarial framing
# ---------------------------------------------------------------------------


def _request_frame(**overrides):
    request = Request(
        object_id="obj-1",
        operation="deposit",
        args=[100],
        kwargs={},
        context={"user": "alice"},
    )
    envelope = Envelope(request=request, qos=QoS(retries=2), target="node-0")
    return encode_frame(REQUEST, envelope.to_wire())


def test_frames_survive_arbitrary_splits():
    """Bytes fed one at a time (the worst split) still yield the frame."""
    frame = _request_frame()
    decoder = FrameDecoder()
    collected = []
    for i in range(len(frame)):
        decoder.feed(frame[i:i + 1])
        collected.extend(decoder.frames())
    assert len(collected) == 1
    kind, payload = collected[0]
    assert kind == REQUEST
    assert payload["request"]["operation"] == "deposit"
    assert decoder.pending() == 0


def test_interleaved_frames_in_one_read():
    """Three frames and a tail of a fourth in a single feed."""
    frames = [
        encode_frame(HELLO, {"version": VERSION, "node": "a"}),
        _request_frame(),
        encode_frame(RESPONSE, {"correlation_id": 7, "response": {}}),
    ]
    partial = _request_frame()
    decoder = FrameDecoder()
    decoder.feed(b"".join(frames) + partial[: len(partial) // 2])
    kinds = [kind for kind, _payload in decoder.frames()]
    assert kinds == [HELLO, REQUEST, RESPONSE]
    assert decoder.pending() > 0  # the tail stays buffered
    decoder.feed(partial[len(partial) // 2:])
    assert [kind for kind, _ in decoder.frames()] == [REQUEST]


def test_garbage_magic_is_a_protocol_error():
    decoder = FrameDecoder()
    decoder.feed(b"GET / HTTP/1.1\r\n\r\n")
    with pytest.raises(ProtocolError, match="bad frame magic"):
        list(decoder.frames())


def test_unknown_version_is_refused():
    frame = bytearray(_request_frame())
    frame[2] = 99  # version byte
    decoder = FrameDecoder()
    decoder.feed(bytes(frame))
    with pytest.raises(ProtocolError, match="unsupported wire version"):
        list(decoder.frames())


def test_unknown_kind_is_refused():
    frame = bytearray(_request_frame())
    frame[3] = 42  # kind byte
    decoder = FrameDecoder()
    decoder.feed(bytes(frame))
    with pytest.raises(ProtocolError, match="unknown frame kind"):
        list(decoder.frames())


def test_oversized_frame_is_rejected_from_the_header_alone():
    """A huge length prefix is refused before any payload is buffered."""
    header = encode_frame(HELLO, {})[:4] + (2**31).to_bytes(4, "big")
    decoder = FrameDecoder(max_frame=1024)
    decoder.feed(header)
    with pytest.raises(ProtocolError, match="exceeds the 1024-byte limit"):
        list(decoder.frames())


def test_truncated_payload_is_a_protocol_error():
    frame = bytearray(_request_frame())
    # shrink the declared length so the payload decodes short
    real_length = int.from_bytes(frame[4:8], "big")
    frame[4:8] = (real_length - 3).to_bytes(4, "big")
    decoder = FrameDecoder()
    decoder.feed(bytes(frame[: len(frame) - 3]))
    with pytest.raises(ProtocolError):
        list(decoder.frames())


def test_poisoned_decoder_stays_poisoned():
    decoder = FrameDecoder()
    decoder.feed(b"XXXXXXXXXX")
    with pytest.raises(ProtocolError):
        list(decoder.frames())
    with pytest.raises(ProtocolError, match="poisoned"):
        decoder.feed(b"more")


def test_nesting_at_the_depth_limit_round_trips():
    value = "leaf"
    for _ in range(MAX_DEPTH):
        value = [value]
    assert decode_value(encode_value(value)) == value


def test_encoder_refuses_over_deep_nesting():
    value = "leaf"
    for _ in range(MAX_DEPTH + 1):
        value = [value]
    with pytest.raises(ProtocolError, match="nests deeper"):
        encode_value(value)


def test_hostile_deep_frame_is_a_protocol_error_not_recursion():
    """A ~1MB frame nesting one list per 5 bytes must poison the decoder
    with ProtocolError — never escape as RecursionError and kill the
    serving connection thread."""
    payload = (b"l" + (1).to_bytes(4, "big")) * 200_000 + b"N"
    header = encode_frame(HELLO, {})[:4] + len(payload).to_bytes(4, "big")
    decoder = FrameDecoder()
    decoder.feed(header + payload)
    with pytest.raises(ProtocolError, match="nests deeper"):
        list(decoder.frames())
    with pytest.raises(ProtocolError, match="poisoned"):
        decoder.feed(b"more")


# ---------------------------------------------------------------------------
# session handshake rules
# ---------------------------------------------------------------------------


def test_handshake_agrees_and_exchanges_node_names():
    client = WireSession("client", node="frontend")
    server = WireSession("server", node="worker-1")
    server.feed(client.greeting())
    assert server.handshaken and server.peer == "frontend"
    client.feed(server.take_outbound())
    assert client.handshaken and client.peer == "worker-1"


def test_conversation_before_handshake_is_refused():
    server = WireSession("server", node="w")
    with pytest.raises(ProtocolError, match="before handshake"):
        server.feed(_request_frame())


def test_version_mismatch_is_refused_at_hello():
    server = WireSession("server", node="w")
    with pytest.raises(ProtocolError, match="wire version"):
        server.feed(encode_frame(HELLO, {"version": VERSION + 1, "node": "c"}))


def test_double_hello_is_refused():
    server = WireSession("server", node="w")
    server.feed(encode_frame(HELLO, {"version": VERSION, "node": "c"}))
    server.take_outbound()
    with pytest.raises(ProtocolError, match="unexpected HELLO"):
        server.feed(encode_frame(HELLO, {"version": VERSION, "node": "c"}))


# ---------------------------------------------------------------------------
# fault encoding: retryability crosses the wire
# ---------------------------------------------------------------------------


def test_node_down_fault_round_trips_pre_effect_and_node():
    original = NodeDownError("node 'a' is down", node="a", pre_effect=True)
    rebuilt = decode_fault(encode_fault(original))
    assert isinstance(rebuilt, NodeDownError)
    assert rebuilt.node == "a"
    assert rebuilt.pre_effect is True


def test_retryable_middleware_fault_stays_bare():
    rebuilt = decode_fault(encode_fault(MiddlewareError("injected")))
    assert type(rebuilt) is MiddlewareError
    assert not getattr(rebuilt, "_remote_rebuilt", False)


def test_library_fault_rebuilds_by_name_and_is_marked_remote():
    rebuilt = decode_fault(encode_fault(AccessDeniedError("denied")))
    assert isinstance(rebuilt, AccessDeniedError)
    assert getattr(rebuilt, "_remote_rebuilt", False)


def test_builtin_fault_degrades_to_remote_invocation_error():
    rebuilt = decode_fault(encode_fault(ValueError("no")))
    assert "remote raised ValueError: no" in str(rebuilt)
    assert getattr(rebuilt, "_remote_rebuilt", False)


def test_fault_frames_round_trip_through_the_codec():
    session = WireSession("client", node="c")
    frame = session.send_fault(17, NodeDownError("gone", node="n", pre_effect=True))
    decoder = FrameDecoder()
    decoder.feed(frame)
    [(kind, payload)] = list(decoder.frames())
    assert kind == FAULT
    assert payload["correlation_id"] == 17
    rebuilt = decode_fault(payload["fault"])
    assert isinstance(rebuilt, NodeDownError) and rebuilt.node == "n"


def test_envelope_round_trip_preserves_correlation_and_qos():
    request = Request(
        object_id="obj-3",
        operation="transfer",
        args=[ObjectRefData("obj-1", "Account"), 25],
        kwargs={"memo": "rent"},
        context={},
    )
    envelope = Envelope(
        request=request,
        qos=QoS(retries=3, timeout_ms=500),
        target="node-2",
        binding="branch-0/Bank/0",
        label="Bank.transfer",
        attempt=2,
    )
    decoder = FrameDecoder()
    decoder.feed(encode_frame(REQUEST, envelope.to_wire()))
    [(kind, payload)] = list(decoder.frames())
    hydrated = Envelope.from_wire(payload)
    assert hydrated.correlation_id == envelope.correlation_id
    assert hydrated.attempt == 2
    assert hydrated.qos.retries == 3
    assert hydrated.binding == "branch-0/Bank/0"
    assert hydrated.request.args[0] == ObjectRefData("obj-1", "Account")
