"""Fixture: consistently ordered locks and honoured guards — no findings."""

from repro.analysis.witness import named_lock


class Tidy:
    def __init__(self):
        self._first = named_lock("fixture.first")
        self._second = named_lock("fixture.second")
        self.total = 0  # guarded_by: _second

    def both(self):
        with self._first:
            with self._second:
                self.total += 1

    def inner_only(self):
        with self._second:
            self.total -= 1
