"""Fixture: guarded_by comment + GUARDED_BY map violations and non-violations."""

import threading


class Counter:
    GUARDED_BY = {"mapped": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded_by: _lock
        self.items = []  # guarded_by: _lock
        self.mapped = 0

    def good(self):
        with self._lock:
            self.count += 1
            self.items.append(self.count)
            self.mapped = self.count

    def bad_augassign(self):
        self.count += 1

    def bad_mutator(self):
        self.items.append(0)

    def bad_mapped(self):
        self.mapped = 3

    def _helper_mutate(self):
        self.count = 0

    def bad_via_helper(self):
        self._helper_mutate()

    def good_via_helper(self):
        with self._lock:
            self._helper_mutate()
