"""Fixture: a textbook AB/BA lock-order deadlock plus a try-acquire pair."""

from repro.analysis.witness import named_lock


class Deadlocky:
    def __init__(self):
        self._a = named_lock("fixture.a")
        self._b = named_lock("fixture.b")

    def ab(self):
        with self._a:
            with self._b:
                return 1

    def ba(self):
        with self._b:
            with self._a:
                return 2


class TryOnly:
    """B->A only through a try-acquire: must NOT count as a cycle."""

    def __init__(self):
        self._a = named_lock("fixture.try_a")
        self._b = named_lock("fixture.try_b")

    def ab(self):
        with self._a:
            with self._b:
                return 1

    def ba_try(self):
        with self._b:
            if self._a.acquire(blocking=False):
                try:
                    return 2
                finally:
                    self._a.release()
        return 0
