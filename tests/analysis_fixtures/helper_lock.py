"""Fixture: locks that travel through helper calls and helper returns."""

from repro.analysis.witness import named_lock


def locked_call(lock, fn):
    with lock:
        return fn()


class ThroughHelper:
    def __init__(self):
        self._outer = named_lock("fixture.outer")
        self._inner = named_lock("fixture.inner")

    def nested(self):
        with self._outer:
            return locked_call(self._inner, lambda: 1)

    def _pick(self):
        return self._inner

    def via_return(self):
        with self._outer:
            with self._pick():
                return 2
