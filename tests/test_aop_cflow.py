"""cflow / cflowbelow pointcut tests (control-flow-sensitive advice)."""

import pytest

from repro.aop import Aspect, Weaver, parse_pointcut
from repro.aop.pointcut import CflowPointcut


class Outer:
    def __init__(self, inner):
        self.inner = inner

    def entry(self):
        return self.inner.work()

    def other(self):
        return self.inner.work()


class Inner:
    def work(self):
        return "done"


@pytest.fixture()
def stack():
    weaver = Weaver()

    class O(Outer):
        pass

    class I(Inner):
        pass

    weaver.weave_class(O, members=["entry", "other"])
    weaver.weave_class(I, members=["work"])
    return weaver, O, I


class TestCflowParsing:
    def test_parse_cflow(self):
        pc = parse_pointcut("cflow(Bank.transfer)")
        assert isinstance(pc, CflowPointcut) and not pc.below

    def test_parse_cflowbelow(self):
        pc = parse_pointcut("cflowbelow(transfer)")
        assert isinstance(pc, CflowPointcut) and pc.below
        assert pc.class_pattern == "*"


class TestCflowMatching:
    def test_advice_only_inside_flow(self, stack):
        weaver, O, I = stack
        hits = []
        aspect = Aspect("flow")

        @aspect.before("call(I.work) && cflow(O.entry)")
        def inside(jp):
            hits.append("inside")

        weaver.deploy(aspect)
        target = O(I())
        target.entry()
        assert hits == ["inside"]
        target.other()  # same call, different flow: no match
        assert hits == ["inside"]
        I().work()  # outside any O flow
        assert hits == ["inside"]

    def test_cflow_includes_matching_frame_itself(self, stack):
        weaver, O, I = stack
        hits = []
        aspect = Aspect("self-flow")

        @aspect.before("cflow(O.entry)")
        def any_in_flow(jp):
            hits.append(jp.member_name)

        weaver.deploy(aspect)
        O(I()).entry()
        assert hits == ["entry", "work"]

    def test_cflowbelow_excludes_matching_frame(self, stack):
        weaver, O, I = stack
        hits = []
        aspect = Aspect("below")

        @aspect.before("cflowbelow(O.entry)")
        def below_only(jp):
            hits.append(jp.member_name)

        weaver.deploy(aspect)
        O(I()).entry()
        assert hits == ["work"]

    def test_stack_unwinds_after_exception(self, stack):
        weaver, O, I = stack
        from repro.aop.weaver import call_stack

        aspect = Aspect("boom")

        @aspect.before("call(I.work)")
        def explode(jp):
            raise RuntimeError("boom")

        weaver.deploy(aspect)
        with pytest.raises(RuntimeError):
            O(I()).entry()
        assert call_stack() == []

    def test_negated_cflow(self, stack):
        weaver, O, I = stack
        hits = []
        aspect = Aspect("not-flow")

        @aspect.before("call(I.work) && !cflow(O.entry)")
        def outside(jp):
            hits.append("outside")

        weaver.deploy(aspect)
        target = O(I())
        target.entry()
        assert hits == []
        target.other()
        assert hits == ["outside"]
