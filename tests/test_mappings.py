"""MDA mapping-kind taxonomy and the platform PIM↔PSM transformations."""

import pytest

from repro.core import MdaLifecycle
from repro.core.registry import default_registry
from repro.errors import TransformationError
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.transform.mappings import (
    MappingKind,
    check_mapping_applicable,
    is_platform_specific,
    mark_platform_specific,
    platform_of,
    unmark_platform_specific,
)
from repro.uml import find_element, get_tag, has_stereotype

from helpers import FULL_BANK_PARAMS


@pytest.fixture()
def registry():
    return default_registry()


@pytest.fixture()
def engine(bank_resource):
    return TransformationEngine(ModelRepository(bank_resource))


class TestLevelDiscipline:
    def test_pim_marks(self, bank_model):
        _, model = bank_model
        assert not is_platform_specific(model)
        assert platform_of(model) is None
        mark_platform_specific(model, "python-inprocess")
        assert is_platform_specific(model)
        assert platform_of(model) == "python-inprocess"
        unmark_platform_specific(model)
        assert not is_platform_specific(model)

    def test_pim_mappings_rejected_on_psm(self, bank_model):
        _, model = bank_model
        mark_platform_specific(model, "python-inprocess")
        for kind in (MappingKind.PIM_TO_PIM, MappingKind.PIM_TO_PSM):
            with pytest.raises(TransformationError):
                check_mapping_applicable(kind, model)
        check_mapping_applicable(MappingKind.PSM_TO_PSM, model)
        check_mapping_applicable(MappingKind.PSM_TO_PIM, model)

    def test_psm_mappings_rejected_on_pim(self, bank_model):
        _, model = bank_model
        for kind in (MappingKind.PSM_TO_PSM, MappingKind.PSM_TO_PIM):
            with pytest.raises(TransformationError):
                check_mapping_applicable(kind, model)
        check_mapping_applicable(MappingKind.PIM_TO_PIM, model)

    def test_builtin_concerns_are_pim_to_pim(self, registry):
        for concern in ("distribution", "transactions", "security", "logging"):
            assert registry.get(concern).mapping_kind is MappingKind.PIM_TO_PIM


class TestProjection:
    def test_projection_marks_everything(self, registry, engine, bank_resource):
        cmt = registry.get("platform").specialize(module_name="bank_app")
        engine.apply(cmt)
        model = bank_resource.roots[0]
        assert is_platform_specific(model)
        account = find_element(model, "accounts.Account")
        assert get_tag(account, "PythonClass", "module") == "bank_app"
        string_type = find_element(model, "String")
        assert get_tag(string_type, "PythonType", "maps_to") == "str"

    def test_pim_refinement_blocked_after_projection(
        self, registry, engine, bank_resource
    ):
        engine.apply(registry.get("platform").specialize())
        with pytest.raises(TransformationError):
            engine.apply(
                registry.get("logging").specialize(log_patterns=["Account.*"])
            )

    def test_abstraction_recovers_pim(self, registry, engine, bank_resource):
        engine.apply(registry.get("platform").specialize())
        engine.apply(registry.get("platform-abstraction").specialize())
        model = bank_resource.roots[0]
        assert not is_platform_specific(model)
        account = find_element(model, "accounts.Account")
        assert not has_stereotype(account, "PythonClass")
        # PIM refinements possible again
        engine.apply(registry.get("logging").specialize(log_patterns=["Account.*"]))

    def test_abstraction_requires_psm(self, registry, engine):
        with pytest.raises(TransformationError):
            engine.apply(registry.get("platform-abstraction").specialize())

    def test_projection_undoable(self, registry, bank_resource):
        repo = ModelRepository(bank_resource)
        engine = TransformationEngine(repo)
        engine.apply(registry.get("platform").specialize())
        repo.undo()
        assert not is_platform_specific(bank_resource.roots[0])


class TestLifecycleIntegration:
    def test_full_stack_then_projection(self, bank_resource, services):
        lifecycle = MdaLifecycle(bank_resource, services=services)
        for concern, params in FULL_BANK_PARAMS.items():
            lifecycle.apply_concern(concern, **params)
        lifecycle.apply_concern("platform", module_name="bank_psm")
        assert is_platform_specific(bank_resource.roots[0])
        # the platform CA is inert but present, keeping Fig. 1 total
        ca = lifecycle.applied[-1][1]
        aspect = ca.build(services)
        assert aspect.advices == []
        module = lifecycle.build_application("bank_psm")
        account = module.Account(balance=1.0)
        with services.orb.call_context(credentials=None):
            assert account.getBalance() == 1.0

    def test_remaining_concerns_includes_platform(self, lifecycle):
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        remaining = lifecycle.remaining_concerns()
        assert "platform" in remaining and "platform-abstraction" in remaining
