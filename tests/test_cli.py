"""CLI tests: every subcommand end-to-end on real XMI files."""

import argparse
import json

import pytest

from repro.cli import build_parser, main
from repro.uml import UML, find_element, has_stereotype
from repro.xmi import read_xmi, write_xmi

from helpers import build_bank_model


@pytest.fixture()
def model_path(tmp_path):
    resource, _ = build_bank_model()
    path = str(tmp_path / "bank.xmi")
    write_xmi(resource, path)
    return path


class TestConcerns:
    def test_lists_all_builtin_concerns(self, capsys):
        assert main(["concerns"]) == 0
        out = capsys.readouterr().out
        for concern in ("distribution", "transactions", "security", "logging"):
            assert concern in out
        assert "server_classes" in out


class TestInfo:
    def test_summary(self, model_path, capsys):
        assert main(["info", model_path]) == 0
        out = capsys.readouterr().out
        assert "model 'bank'" in out
        assert "classes:    2" in out
        assert "class Account" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nope/missing.xmi"]) == 2
        assert "error" in capsys.readouterr().err


class TestValidate:
    def test_valid_model(self, model_path, capsys):
        assert main(["validate", model_path]) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_invalid_model(self, tmp_path, capsys):
        # a Property requires a name (lower=1); hand-craft a violating doc
        doc = (
            '<?xml version="1.0"?><XMI xmi.version="1.2">'
            '<XMI.content name="bad"><uml.Model xmi.id="m" name="bad">'
            '<ownedElements><uml.Class xmi.id="c" name="C">'
            '<attributes><uml.Property xmi.id="p"/></attributes>'
            "</uml.Class></ownedElements></uml.Model></XMI.content></XMI>"
        )
        path = tmp_path / "bad.xmi"
        path.write_text(doc)
        assert main(["validate", str(path)]) == 1
        assert "violation" in capsys.readouterr().out


class TestApply:
    def test_apply_and_write(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "refined.xmi")
        params = json.dumps(
            {"transactional_ops": ["Account.withdraw"], "state_classes": ["Account"]}
        )
        code = main(
            [
                "apply",
                model_path,
                "--concern",
                "transactions",
                "--params",
                params,
                "--out",
                out_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applied T_transactions" in out
        assert "transactions" in out
        refined = read_xmi(out_path, UML.package)
        withdraw = find_element(refined.roots[0], "accounts.Account.withdraw")
        assert has_stereotype(withdraw, "Transactional")

    def test_bad_params_json(self, model_path, capsys):
        assert (
            main(["apply", model_path, "--concern", "logging", "--params", "{bad"])
            == 2
        )
        assert "not valid JSON" in capsys.readouterr().err

    def test_precondition_failure_reported(self, model_path, capsys):
        params = json.dumps(
            {"transactional_ops": ["Ghost.op"], "state_classes": ["Account"]}
        )
        code = main(
            ["apply", model_path, "--concern", "transactions", "--params", params]
        )
        assert code == 1
        assert "precondition" in capsys.readouterr().err.lower()

    def test_unknown_concern(self, model_path, capsys):
        assert main(["apply", model_path, "--concern", "ghost"]) == 1
        assert "no generic transformation" in capsys.readouterr().err


class TestGenerate:
    def test_source_to_stdout(self, model_path, capsys):
        assert main(["generate", model_path]) == 0
        out = capsys.readouterr().out
        assert "class Account" in out and "def withdraw" in out

    def test_source_to_file_is_executable(self, model_path, tmp_path):
        out_path = tmp_path / "app.py"
        assert main(["generate", model_path, "--out", str(out_path)]) == 0
        namespace = {}
        exec(compile(out_path.read_text(), "app.py", "exec"), namespace)
        account = namespace["Account"](balance=5.0)
        assert account.deposit(1.0) == 6.0


def _subparsers(parser):
    return next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ).choices


class TestHelpAudit:
    """Docs-drift guards: every registered flag must be documented."""

    def test_every_flag_of_every_subcommand_has_help(self):
        for command, subparser in _subparsers(build_parser()).items():
            for action in subparser._actions:
                if action.dest == "help":
                    continue
                label = action.option_strings or [action.dest]
                assert action.help, f"{command} {label[0]} has no help text"
            assert subparser.description, f"{command} has no description"

    def test_simulate_help_mentions_every_registered_flag(self, capsys):
        simulate = _subparsers(build_parser())["simulate"]
        rendered = simulate.format_help()
        for action in simulate._actions:
            for option in action.option_strings:
                if option.startswith("--"):
                    assert option in rendered, f"{option} missing from help"
        # the flags the docs lean on, by name, so a rename cannot slip by
        for flag in ("--window", "--delivery-workers", "--churn"):
            assert flag in rendered

    def test_simulate_help_lists_every_scenario(self):
        from repro.runtime.scenarios import SCENARIOS

        rendered = _subparsers(build_parser())["simulate"].format_help()
        for name in SCENARIOS:
            assert name in rendered, f"scenario {name!r} missing from --scenario help"

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in _subparsers(build_parser()):
            assert command in out


class TestFingerprint:
    def test_stable_across_export(self, model_path, tmp_path, capsys):
        assert main(["fingerprint", model_path]) == 0
        first = capsys.readouterr().out
        # re-export the same model; uuids change, fingerprint must not
        resource = read_xmi(model_path, UML.package)
        second_path = str(tmp_path / "again.xmi")
        write_xmi(resource, second_path)
        assert main(["fingerprint", second_path]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "Account" in first
