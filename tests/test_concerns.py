"""Concern library tests (S11): each GMT's refinement + each GA's behaviour."""

import pytest

from repro.core.registry import default_registry
from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    PreconditionViolation,
)
from repro.metamodel import validate
from repro.ocl.evaluator import types_from_package
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.uml import UML, find_element, get_tag, has_stereotype, owned_elements

TYPES = types_from_package(UML.package)


@pytest.fixture()
def registry():
    return default_registry()


@pytest.fixture()
def engine(bank_resource):
    return TransformationEngine(ModelRepository(bank_resource))


class TestDistributionTransformation:
    def test_refinement_artifacts(self, registry, engine, bank_resource):
        cmt = registry.get("distribution").specialize(
            server_classes=["Account"], registry_prefix="bank"
        )
        engine.apply(cmt)
        model = bank_resource.roots[0]
        account = find_element(model, "accounts.Account")
        assert has_stereotype(account, "Remote")
        assert get_tag(account, "Remote", "registryName") == "bank/Account"
        interface = find_element(model, "middleware.IAccount")
        assert interface.isinstance_of(UML.Interface)
        assert {o.name for o in interface.operations} == {
            "deposit",
            "withdraw",
            "getBalance",
        }
        proxy = find_element(model, "middleware.Account_Proxy")
        assert has_stereotype(proxy, "Proxy")
        assert interface in account.interfaces
        find_element(model, "middleware.NamingServiceBroker")
        assert validate(bank_resource) == []

    def test_concern_space_matches_parameters(self, registry, bank_resource):
        cmt = registry.get("distribution").specialize(server_classes=["Account"])
        space = cmt.concern_space(bank_resource, TYPES)
        assert space.names() == ["Account"]

    def test_unknown_class_precondition(self, registry, engine):
        cmt = registry.get("distribution").specialize(server_classes=["Ghost"])
        with pytest.raises(PreconditionViolation):
            engine.apply(cmt)

    def test_double_application_precondition(self, registry, engine):
        gmt = registry.get("distribution")
        engine.apply(gmt.specialize(server_classes=["Account"]))
        with pytest.raises(PreconditionViolation):
            engine.apply(gmt.specialize(server_classes=["Account"]))

    def test_operationless_class_precondition(self, registry, engine, bank_resource):
        from repro.uml import add_class

        pkg = find_element(bank_resource.roots[0], "accounts")
        add_class(pkg, "Marker")
        cmt = registry.get("distribution").specialize(server_classes=["Marker"])
        with pytest.raises(PreconditionViolation):
            engine.apply(cmt)


class TestDistributionAspect:
    def test_calls_routed_through_orb(self, registry, services):
        ca = registry.get("distribution").specialize(
            server_classes=["Account"], registry_prefix="svc"
        ).derive_aspect()

        class Account:
            def __init__(self, balance):
                self.balance = balance

            def deposit(self, amount):
                self.balance += amount
                return self.balance

        services.weaver.weave_class(Account)
        services.weaver.deploy(ca.build(services))
        account = Account(0.0)
        assert account.deposit(10.0) == 10.0
        assert services.bus.messages_delivered == 1
        assert services.naming.list("svc")  # bound in the naming service

    def test_pass_by_value_through_weaving(self, registry, services):
        ca = registry.get("distribution").specialize(
            server_classes=["Inbox"]
        ).derive_aspect()

        class Inbox:
            def __init__(self):
                self.all = []

            def push(self, items):
                items.append("server-side")
                self.all.extend(items)
                return len(self.all)

        services.weaver.weave_class(Inbox)
        services.weaver.deploy(ca.build(services))
        inbox = Inbox()
        mine = ["a"]
        inbox.push(mine)
        assert mine == ["a"]  # caller's list untouched: marshalled copy

    def test_empty_parameters_make_noop_aspect(self, registry, services):
        ca = registry.get("distribution").specialize(server_classes=[]).derive_aspect()
        aspect = ca.build(services)
        assert aspect.advices == []


class TestTransactionsTransformation:
    def test_refinement_artifacts(self, registry, engine, bank_resource):
        cmt = registry.get("transactions").specialize(
            transactional_ops=["Account.withdraw", "Bank.transfer"],
            state_classes=["Account"],
            isolation="read-committed",
        )
        engine.apply(cmt)
        model = bank_resource.roots[0]
        withdraw = find_element(model, "accounts.Account.withdraw")
        assert get_tag(withdraw, "Transactional", "isolation") == "read-committed"
        account = find_element(model, "accounts.Account")
        assert has_stereotype(account, "TransactionalState")
        find_element(model, "middleware.TransactionManagerBroker")
        deps = [
            e
            for e in owned_elements(model)
            if e.isinstance_of(UML.Dependency) and e.kind == "uses"
        ]
        assert {d.client.name for d in deps} == {"Account", "Bank"}
        assert validate(bank_resource) == []

    def test_missing_operation_precondition(self, registry, engine):
        cmt = registry.get("transactions").specialize(
            transactional_ops=["Account.explode"], state_classes=["Account"]
        )
        with pytest.raises(PreconditionViolation):
            engine.apply(cmt)

    def test_unknown_state_class_precondition(self, registry, engine):
        cmt = registry.get("transactions").specialize(
            transactional_ops=["Account.withdraw"], state_classes=["Ghost"]
        )
        with pytest.raises(PreconditionViolation):
            engine.apply(cmt)


class TestTransactionsAspect:
    @pytest.fixture()
    def woven_counter(self, registry, services):
        ca = registry.get("transactions").specialize(
            transactional_ops=["Wallet.spend", "Wallet.transfer_all"],
            state_classes=["Wallet"],
        ).derive_aspect()

        class Wallet:
            def __init__(self, coins):
                self.coins = coins

            def spend(self, n):
                if n > self.coins:
                    raise ValueError("broke")
                self.coins -= n
                return self.coins

            def transfer_all(self, other):
                other.coins += self.coins
                self.coins = 0
                other.audit()  # does not exist -> raises AttributeError
                return True

        services.weaver.weave_class(Wallet)
        services.weaver.deploy(ca.build(services))
        return Wallet, services

    def test_commit_on_success(self, woven_counter):
        Wallet, services = woven_counter
        wallet = Wallet(10)
        assert wallet.spend(4) == 6
        assert services.transactions.commits == 1

    def test_rollback_restores_state(self, woven_counter):
        Wallet, services = woven_counter
        wallet = Wallet(3)
        with pytest.raises(ValueError):
            wallet.spend(5)
        assert wallet.coins == 3
        assert services.transactions.aborts == 1

    def test_multi_object_atomicity(self, woven_counter):
        Wallet, services = woven_counter
        a, b = Wallet(7), Wallet(1)
        with pytest.raises(AttributeError):
            a.transfer_all(b)
        # both wallets restored even though b was already credited
        assert (a.coins, b.coins) == (7, 1)


class TestSecurityTransformation:
    def test_refinement_artifacts(self, registry, engine, bank_resource):
        cmt = registry.get("security").specialize(
            protected_ops=["Bank.transfer"],
            role_grants={"teller": ["Bank.*"]},
        )
        engine.apply(cmt)
        model = bank_resource.roots[0]
        transfer = find_element(model, "accounts.Bank.transfer")
        assert get_tag(transfer, "Secured", "resource") == "Bank.transfer"
        bank = find_element(model, "accounts.Bank")
        assert has_stereotype(bank, "AccessControlled")
        find_element(model, "middleware.AccessControllerBroker")
        assert validate(bank_resource) == []

    def test_missing_operation_precondition(self, registry, engine):
        cmt = registry.get("security").specialize(protected_ops=["Ghost.nothing"])
        with pytest.raises(PreconditionViolation):
            engine.apply(cmt)


class TestSecurityAspect:
    @pytest.fixture()
    def guarded(self, registry, services):
        ca = registry.get("security").specialize(
            protected_ops=["Vault.open"],
            role_grants={"manager": ["Vault.*"]},
        ).derive_aspect()

        class Vault:
            def open(self):
                return "gold"

            def describe(self):
                return "a vault"

        services.weaver.weave_class(Vault)
        services.weaver.deploy(ca.build(services))
        services.credentials.add_user("boss", "pw", roles=["manager"])
        services.credentials.add_user("intern", "pw", roles=["visitor"])
        return Vault, services

    def test_anonymous_denied(self, guarded):
        Vault, _ = guarded
        with pytest.raises(AuthenticationError):
            Vault().open()

    def test_authorized_role_allowed(self, guarded):
        Vault, services = guarded
        cred = services.auth.login("boss", "pw")
        with services.orb.call_context(credentials=cred.token):
            assert Vault().open() == "gold"

    def test_wrong_role_denied_and_audited(self, guarded):
        Vault, services = guarded
        cred = services.auth.login("intern", "pw")
        with services.orb.call_context(credentials=cred.token):
            with pytest.raises(AccessDeniedError):
                Vault().open()
        assert services.audit.denials()

    def test_unprotected_operation_open(self, guarded):
        Vault, _ = guarded
        assert Vault().describe() == "a vault"


class TestLoggingConcern:
    def test_transformation_marks_operations(self, registry, engine, bank_resource):
        cmt = registry.get("logging").specialize(log_patterns=["Account.*"])
        engine.apply(cmt)
        withdraw = find_element(bank_resource.roots[0], "accounts.Account.withdraw")
        assert get_tag(withdraw, "Logged", "level") == "info"

    def test_no_match_postcondition_fails(self, registry, engine):
        from repro.errors import PostconditionViolation

        cmt = registry.get("logging").specialize(log_patterns=["Nothing.*"])
        with pytest.raises(PostconditionViolation):
            engine.apply(cmt)

    def test_aspect_records_entry_exit(self, registry, services):
        ca = registry.get("logging").specialize(
            log_patterns=["Greeter.*"], level="debug"
        ).derive_aspect()

        class Greeter:
            def hello(self):
                return "hi"

            def fail(self):
                raise RuntimeError("x")

        services.weaver.weave_class(Greeter)
        aspect = ca.build(services)
        services.weaver.deploy(aspect)
        greeter = Greeter()
        greeter.hello()
        with pytest.raises(RuntimeError):
            greeter.fail()
        assert aspect.records == [
            ("debug", "enter", "Greeter.hello"),
            ("debug", "return", "Greeter.hello"),
            ("debug", "enter", "Greeter.fail"),
            ("debug", "raise", "Greeter.fail"),
        ]
