"""Validator behaviour: lower bounds, conformance, opposite symmetry."""

import pytest

from repro.errors import ValidationError
from repro.metamodel import (
    STRING,
    UNBOUNDED,
    MetaClass,
    ModelResource,
    Validator,
    validate,
)


class TestLowerBounds:
    def test_missing_required_attribute_reported(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()  # title has lower=1
        diagnostics = validate(b, raise_on_error=False)
        assert any(d.feature_name == "title" for d in diagnostics)

    def test_satisfied_lower_bound_passes(self, library_metamodel):
        Book = library_metamodel["Book"]
        assert validate(Book(title="T")) == []

    def test_required_many_feature(self):
        c = MetaClass("C")
        c.add_attribute("xs", STRING, lower=2, upper=UNBOUNDED)
        obj = c()
        obj.xs.append("one")
        diagnostics = validate(obj, raise_on_error=False)
        assert any("at least 2" in d.message for d in diagnostics)
        obj.xs.append("two")
        assert validate(obj) == []

    def test_raise_on_error(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(ValidationError) as excinfo:
            validate(Book())
        assert excinfo.value.diagnostics


class TestStructuralChecks:
    def test_opposite_asymmetry_detected(self, library_metamodel):
        Book, Author = library_metamodel["Book"], library_metamodel["Author"]
        b, a = Book(title="T"), Author()
        # create an asymmetric link through the raw layer
        feature = Book.feature("authors")
        b.get("authors")._raw_insert(0, a)
        diagnostics = Validator().validate_object(b)
        assert any("does not link back" in d.message for d in diagnostics)

    def test_containment_mismatch_detected(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s, b = Shelf(), Book(title="T")
        s.get("books")._items.append(b)  # bypass container maintenance
        diagnostics = Validator().validate_object(s)
        assert any("has container" in d.message for d in diagnostics)

    def test_resource_validation_covers_tree(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s, b = Shelf(), Book()  # b misses its title
        s.books.append(b)
        res = ModelResource("r")
        res.add_root(s)
        diagnostics = validate(res, raise_on_error=False)
        assert any(d.obj is b for d in diagnostics)

    def test_diagnostic_str_is_informative(self, library_metamodel):
        Book = library_metamodel["Book"]
        diagnostics = validate(Book(), raise_on_error=False)
        assert "title" in str(diagnostics[0])
