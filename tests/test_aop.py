"""AOP substrate tests: pointcuts, weaving, advice order, precedence (S8/E4)."""

import pytest

from repro.errors import AopError, PointcutSyntaxError, WeavingError
from repro.aop import (
    AdviceKind,
    Aspect,
    JoinPoint,
    JoinPointKind,
    PrecedenceTable,
    Weaver,
    parse_pointcut,
)


def jp(cls="Account", member="withdraw", kind=JoinPointKind.EXECUTION):
    return JoinPoint(kind, None, cls, member)


class TestPointcutLanguage:
    def test_exact_match(self):
        assert parse_pointcut("call(Account.withdraw)").matches(jp())
        assert not parse_pointcut("call(Account.deposit)").matches(jp())

    def test_wildcards(self):
        assert parse_pointcut("call(Account.*)").matches(jp())
        assert parse_pointcut("call(*.withdraw)").matches(jp())
        assert parse_pointcut("call(Acc*.with*)").matches(jp())
        assert not parse_pointcut("call(Sav*.*)").matches(jp())

    def test_member_only_pattern(self):
        assert parse_pointcut("call(withdraw)").matches(jp())

    def test_call_and_execution_interchangeable(self):
        assert parse_pointcut("execution(Account.withdraw)").matches(
            jp(kind=JoinPointKind.CALL)
        )
        assert parse_pointcut("call(Account.withdraw)").matches(
            jp(kind=JoinPointKind.EXECUTION)
        )

    def test_get_set_kinds_distinct(self):
        get_jp = jp(member="balance", kind=JoinPointKind.GET)
        assert parse_pointcut("get(Account.balance)").matches(get_jp)
        assert not parse_pointcut("set(Account.balance)").matches(get_jp)
        assert not parse_pointcut("call(Account.balance)").matches(get_jp)

    def test_within(self):
        assert parse_pointcut("within(Account)").matches(jp())
        assert parse_pointcut("within(Acc*)").matches(jp())
        assert not parse_pointcut("within(Bank)").matches(jp())

    def test_boolean_composition(self):
        pc = parse_pointcut("call(Account.*) && !call(*.deposit)")
        assert pc.matches(jp())
        assert not pc.matches(jp(member="deposit"))
        pc2 = parse_pointcut("call(A.x) || call(B.y)")
        assert pc2.matches(jp("A", "x")) and pc2.matches(jp("B", "y"))
        assert not pc2.matches(jp("A", "y"))

    def test_parentheses(self):
        pc = parse_pointcut("(call(A.x) || call(B.y)) && within(A)")
        assert pc.matches(jp("A", "x"))
        assert not pc.matches(jp("B", "y"))

    def test_operator_overloads(self):
        a = parse_pointcut("call(A.x)")
        b = parse_pointcut("call(B.y)")
        assert (a | b).matches(jp("B", "y"))
        assert not (a & b).matches(jp("A", "x"))
        assert (~a).matches(jp("B", "y"))

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "call()",
            "call(A.x",
            "frobnicate(A.x)",
            "within(A.x)",
            "call(A.x) &&",
            "call(A.x) ^^ call(B.y)",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(PointcutSyntaxError):
            parse_pointcut(bad)

    def test_pointcut_passthrough(self):
        pc = parse_pointcut("call(A.x)")
        assert parse_pointcut(pc) is pc


class FakeAccount:
    def __init__(self, balance=100.0):
        self.balance = balance

    def deposit(self, amount):
        self.balance += amount
        return self.balance

    def withdraw(self, amount):
        if amount > self.balance:
            raise ValueError("insufficient")
        self.balance -= amount
        return self.balance


@pytest.fixture()
def woven():
    weaver = Weaver()

    class Account(FakeAccount):
        pass

    weaver.weave_class(Account, members=["deposit", "withdraw"])
    return weaver, Account


class TestWeaving:
    def test_no_advice_passthrough(self, woven):
        _, Account = woven
        assert Account(10).deposit(5) == 15

    def test_before_after_order(self, woven):
        weaver, Account = woven
        log = []
        aspect = Aspect("t")
        aspect.add_advice(AdviceKind.BEFORE, "call(Account.*)", lambda j: log.append("before"))
        aspect.add_advice(AdviceKind.AFTER, "call(Account.*)", lambda j: log.append("after"))
        weaver.deploy(aspect)
        Account().deposit(1)
        assert log == ["before", "after"]

    def test_after_returning_sees_result(self, woven):
        weaver, Account = woven
        seen = []
        aspect = Aspect("t")
        aspect.add_advice(
            AdviceKind.AFTER_RETURNING, "call(Account.deposit)", lambda j: seen.append(j.result)
        )
        weaver.deploy(aspect)
        Account(0).deposit(7)
        assert seen == [7.0]

    def test_after_throwing_sees_exception(self, woven):
        weaver, Account = woven
        seen = []
        aspect = Aspect("t")
        aspect.add_advice(
            AdviceKind.AFTER_THROWING,
            "call(Account.withdraw)",
            lambda j: seen.append(type(j.exception)),
        )
        weaver.deploy(aspect)
        with pytest.raises(ValueError):
            Account(0).withdraw(1)
        assert seen == [ValueError]

    def test_after_runs_on_both_paths(self, woven):
        weaver, Account = woven
        count = []
        aspect = Aspect("t")
        aspect.add_advice(AdviceKind.AFTER, "call(Account.withdraw)", lambda j: count.append(1))
        weaver.deploy(aspect)
        Account(10).withdraw(1)
        with pytest.raises(ValueError):
            Account(0).withdraw(1)
        assert len(count) == 2

    def test_around_can_replace_result(self, woven):
        weaver, Account = woven
        aspect = Aspect("t")
        aspect.add_advice(AdviceKind.AROUND, "call(Account.deposit)", lambda inv: 42)
        weaver.deploy(aspect)
        account = Account(0)
        assert account.deposit(5) == 42
        assert account.balance == 0  # proceed was never called

    def test_around_can_modify_and_proceed(self, woven):
        weaver, Account = woven
        aspect = Aspect("t")

        def double(inv):
            return inv.proceed() * 2

        aspect.add_advice(AdviceKind.AROUND, "call(Account.deposit)", double)
        weaver.deploy(aspect)
        assert Account(0).deposit(5) == 10.0

    def test_proceed_twice_rejected(self, woven):
        weaver, Account = woven
        aspect = Aspect("t")

        def bad(inv):
            inv.proceed()
            return inv.proceed()

        aspect.add_advice(AdviceKind.AROUND, "call(Account.deposit)", bad)
        weaver.deploy(aspect)
        with pytest.raises(AopError):
            Account(0).deposit(1)

    def test_undeploy_restores_behavior(self, woven):
        weaver, Account = woven
        aspect = Aspect("t")
        aspect.add_advice(AdviceKind.AROUND, "call(Account.deposit)", lambda inv: -1)
        weaver.deploy(aspect)
        assert Account(0).deposit(5) == -1
        weaver.undeploy(aspect)
        assert Account(0).deposit(5) == 5

    def test_unweave_restores_original(self, woven):
        weaver, Account = woven
        weaver.unweave_class(Account)
        assert not hasattr(Account.deposit, "__repro_woven__")
        assert Account(0).deposit(5) == 5

    def test_weave_selected_members(self):
        weaver = Weaver()

        class T:
            def a(self):
                return 1

            def b(self):
                return 2

        weaver.weave_class(T, members=["a"])
        assert hasattr(T.a, "__repro_woven__")
        assert not hasattr(T.b, "__repro_woven__")

    def test_weave_unknown_member_rejected(self):
        weaver = Weaver()

        class T:
            pass

        with pytest.raises(WeavingError):
            weaver.weave_class(T, members=["missing"])

    def test_double_weave_is_idempotent(self, woven):
        weaver, Account = woven
        count = []
        aspect = Aspect("t")
        aspect.add_advice(AdviceKind.BEFORE, "call(Account.deposit)", lambda j: count.append(1))
        weaver.deploy(aspect)
        weaver.weave_class(Account)  # second weave must not double-wrap
        Account(0).deposit(1)
        assert len(count) == 1

    def test_field_weaving_get_set(self):
        weaver = Weaver()

        class P:
            pass

        weaver.weave_field(P, "x")
        events = []
        aspect = Aspect("f")
        aspect.add_advice(AdviceKind.BEFORE, "set(P.x)", lambda j: events.append(("set", j.args[0])))
        aspect.add_advice(AdviceKind.BEFORE, "get(P.x)", lambda j: events.append(("get",)))
        weaver.deploy(aspect)
        p = P()
        p.x = 3
        assert p.x == 3
        assert events == [("set", 3), ("get",)]

    def test_field_set_advice_can_veto(self):
        weaver = Weaver()

        class P:
            pass

        weaver.weave_field(P, "x")
        aspect = Aspect("f")

        def veto(inv):
            if inv.join_point.args[0] < 0:
                raise ValueError("negative")
            return inv.proceed()

        aspect.add_advice(AdviceKind.AROUND, "set(P.x)", veto)
        weaver.deploy(aspect)
        p = P()
        p.x = 1
        with pytest.raises(ValueError):
            p.x = -1
        assert p.x == 1


class TestPrecedence:
    def _make_around(self, name, order):
        aspect = Aspect(name)

        def around(inv):
            order.append(f"{name}-in")
            result = inv.proceed()
            order.append(f"{name}-out")
            return result

        aspect.add_advice(AdviceKind.AROUND, "call(T.m)", around)
        return aspect

    def test_deploy_order_is_nesting_order(self):
        weaver = Weaver()

        class T:
            def m(self):
                return 0

        weaver.weave_class(T)
        order = []
        weaver.deploy(self._make_around("A", order))
        weaver.deploy(self._make_around("B", order))
        T().m()
        assert order == ["A-in", "B-in", "B-out", "A-out"]

    def test_explicit_ranks_override_arrival(self):
        weaver = Weaver()

        class T:
            def m(self):
                return 0

        weaver.weave_class(T)
        order = []
        weaver.deploy(self._make_around("A", order), rank=5)
        weaver.deploy(self._make_around("B", order), rank=1)
        T().m()
        assert order == ["B-in", "A-in", "A-out", "B-out"]

    def test_before_order_and_after_reversed(self):
        weaver = Weaver()

        class T:
            def m(self):
                return 0

        weaver.weave_class(T)
        log = []
        for name in ("first", "second"):
            aspect = Aspect(name)
            aspect.add_advice(
                AdviceKind.BEFORE, "call(T.m)", lambda j, n=name: log.append(f"{n}-before")
            )
            aspect.add_advice(
                AdviceKind.AFTER, "call(T.m)", lambda j, n=name: log.append(f"{n}-after")
            )
            weaver.deploy(aspect)
        T().m()
        assert log == ["first-before", "second-before", "second-after", "first-after"]

    def test_precedence_table_bookkeeping(self):
        table = PrecedenceTable()
        a, b = Aspect("a"), Aspect("b")
        assert table.deploy(a) == 0
        assert table.deploy(b) == 1
        assert table.rank_of(b) == 1
        assert [name.name for _, name in table.ordered()] == ["a", "b"]
        assert a in table and len(table) == 2
        table.undeploy(a)
        assert a not in table
        with pytest.raises(WeavingError):
            table.undeploy(a)
        with pytest.raises(WeavingError):
            table.rank_of(a)

    def test_double_deploy_rejected(self):
        table = PrecedenceTable()
        a = Aspect("a")
        table.deploy(a)
        with pytest.raises(WeavingError):
            table.deploy(a)
