"""Repository tests: undo/redo, versioning, diff, demarcation (S5 / E5 / E6)."""

import pytest

from repro.errors import (
    NoSuchVersionError,
    NothingToRedoError,
    NothingToUndoError,
    RepositoryError,
)
from repro.metamodel import validate
from repro.repository import ModelRepository, diff_snapshots
from repro.uml import (
    add_class,
    add_operation,
    apply_stereotype,
    classes_of,
    find_element,
    has_stereotype,
)


@pytest.fixture()
def repo(bank_resource):
    return ModelRepository(bank_resource)


def _class_names(resource):
    return [c.name for c in classes_of(resource.roots[0])]


class TestTransactionsAndUndo:
    def test_transaction_is_one_undo_unit(self, repo):
        model = repo.resource.roots[0]
        pkg = find_element(model, "accounts")
        with repo.transaction("add two classes"):
            add_class(pkg, "Ledger")
            add_class(pkg, "Journal")
        assert {"Ledger", "Journal"} <= set(_class_names(repo.resource))
        assert repo.undo() == "add two classes"
        assert {"Ledger", "Journal"}.isdisjoint(_class_names(repo.resource))
        assert validate(repo.resource) == []

    def test_redo_restores(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        with repo.transaction("add"):
            add_class(pkg, "Ledger")
        repo.undo()
        assert repo.redo() == "add"
        assert "Ledger" in _class_names(repo.resource)
        assert validate(repo.resource) == []

    def test_undo_redo_chain(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        for name in ("A1", "A2", "A3"):
            with repo.transaction(name):
                add_class(pkg, name)
        repo.undo()
        repo.undo()
        assert _class_names(repo.resource)[-1] == "A1"
        repo.redo()
        assert _class_names(repo.resource)[-1] == "A2"

    def test_new_transaction_clears_redo(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        with repo.transaction("one"):
            add_class(pkg, "One")
        repo.undo()
        with repo.transaction("two"):
            add_class(pkg, "Two")
        with pytest.raises(NothingToRedoError):
            repo.redo()

    def test_empty_stacks_raise(self, repo):
        with pytest.raises(NothingToUndoError):
            repo.undo()
        with pytest.raises(NothingToRedoError):
            repo.redo()

    def test_nested_transactions_rejected(self, repo):
        with pytest.raises(RepositoryError):
            with repo.transaction("outer"):
                with repo.transaction("inner"):
                    pass

    def test_failed_transaction_rolls_back(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        with pytest.raises(RuntimeError):
            with repo.transaction("bad"):
                add_class(pkg, "Junk")
                raise RuntimeError("boom")
        assert "Junk" not in _class_names(repo.resource)
        assert validate(repo.resource) == []
        with pytest.raises(NothingToUndoError):
            repo.undo()

    def test_undo_attribute_mutation(self, repo):
        acc = find_element(repo.resource.roots[0], "accounts.Account")
        with repo.transaction("rename"):
            acc.name = "Konto"
        repo.undo()
        assert acc.name == "Account"

    def test_undo_stereotype_application(self, repo):
        acc = find_element(repo.resource.roots[0], "accounts.Account")
        with repo.transaction("mark"):
            apply_stereotype(acc, "Remote", registryName="x")
        repo.undo()
        assert not has_stereotype(acc, "Remote")

    def test_undo_limit_evicts_oldest(self, bank_resource):
        repo = ModelRepository(bank_resource, undo_limit=2)
        pkg = find_element(repo.resource.roots[0], "accounts")
        for name in ("B1", "B2", "B3"):
            with repo.transaction(name):
                add_class(pkg, name)
        assert repo.undo_stack.undo_labels == ["B2", "B3"]


class TestVersioning:
    def test_commit_log(self, repo):
        v1 = repo.commit("first")
        v2 = repo.commit("second")
        assert repo.log() == [f"{v1.id}: first", f"{v2.id}: second"]
        assert v2.parent is v1

    def test_checkout_restores_state(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        v0 = repo.commit("before")
        with repo.transaction("grow"):
            add_class(pkg, "Extra")
        repo.commit("after")
        repo.checkout(v0.id)
        assert "Extra" not in _class_names(repo.resource)
        assert validate(repo.resource) == []

    def test_checkout_forward_again(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        v0 = repo.commit("before")
        with repo.transaction("grow"):
            add_class(pkg, "Extra")
        v1 = repo.commit("after")
        repo.checkout(v0.id)
        repo.checkout(v1.id)
        assert "Extra" in _class_names(repo.resource)

    def test_checkout_clears_undo(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        v0 = repo.commit("v0")
        with repo.transaction("t"):
            add_class(pkg, "X")
        repo.checkout(v0.id)
        with pytest.raises(NothingToUndoError):
            repo.undo()

    def test_unknown_version_raises(self, repo):
        with pytest.raises(NoSuchVersionError):
            repo.checkout("v999999")

    def test_snapshot_immune_to_later_edits(self, repo):
        acc = find_element(repo.resource.roots[0], "accounts.Account")
        v0 = repo.commit("clean")
        acc.name = "Changed"
        snapshot_names = [
            o.get("name")
            for o in v0.roots[0].all_contents()
            if o.meta_class.has_feature("name") and o.is_set("name")
        ]
        assert "Account" in snapshot_names and "Changed" not in snapshot_names


class TestDiff:
    def test_added_and_removed(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        v0 = repo.commit("v0")
        with repo.transaction("change"):
            add_class(pkg, "New")
            find_element(repo.resource.roots[0], "accounts.Bank").delete()
        v1 = repo.commit("v1")
        entries = repo.diff(v0.id, v1.id)
        kinds = {(e.kind, e.label) for e in entries}
        assert ("added", "Class(New)") in kinds
        assert any(k == "removed" and "Bank" in label for k, label in kinds)

    def test_modified_feature_reported(self, repo):
        acc = find_element(repo.resource.roots[0], "accounts.Account")
        v0 = repo.commit("v0")
        acc.name = "Konto"
        v1 = repo.commit("v1")
        entries = repo.diff(v0.id, v1.id)
        modified = [e for e in entries if e.kind == "modified" and e.feature == "name"]
        assert modified and modified[0].old == "Account" and modified[0].new == "Konto"

    def test_identical_versions_empty_diff(self, repo):
        v0 = repo.commit("a")
        v1 = repo.commit("b")
        assert repo.diff(v0.id, v1.id) == []

    def test_reference_retarget_reported(self, repo):
        model = repo.resource.roots[0]
        acc = find_element(model, "accounts.Account")
        bank = find_element(model, "accounts.Bank")
        v0 = repo.commit("v0")
        bank.superclasses.append(acc)
        v1 = repo.commit("v1")
        entries = diff_snapshots(repo.history.get(v0.id), repo.history.get(v1.id))
        assert any(e.feature == "superclasses" for e in entries)


class TestDemarcation:
    def test_painting_attributes_elements(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        with repo.transaction("txn concern", concern="transactions"):
            cls = add_class(pkg, "TxManager")
            add_operation(cls, "begin")
        table = repo.demarcation
        assert table.concern_of(cls) == "transactions"
        assert table.color_of(cls) == "red"
        names = {
            e.get("name")
            for e in table.elements_of("transactions")
            if e.meta_class.has_feature("name") and e.is_set("name")
        }
        assert {"TxManager", "begin"} <= names

    def test_functional_elements_unattributed(self, repo):
        acc = find_element(repo.resource.roots[0], "accounts.Account")
        assert repo.demarcation.concern_of(acc) is None
        assert repo.demarcation.color_of(acc) is None

    def test_touched_vs_added(self, repo):
        acc = find_element(repo.resource.roots[0], "accounts.Account")
        with repo.transaction("t", concern="security"):
            acc.documentation = "secured"
        table = repo.demarcation
        assert table.concern_of(acc) is None
        touched = table.touched_elements_of("security")
        assert acc in touched

    def test_covered_and_remaining(self, repo):
        with repo.transaction("a", concern="distribution"):
            pass
        with repo.transaction("b", concern="security"):
            pass
        table = repo.demarcation
        assert table.covered_concerns() == ["distribution", "security"]
        assert table.remaining_concerns(
            ["distribution", "transactions", "security"]
        ) == ["transactions"]

    def test_legend_colors_distinct(self, repo):
        for concern in ("c1", "c2", "c3"):
            with repo.transaction(concern, concern=concern):
                pass
        legend = repo.demarcation.legend()
        assert len(set(legend.values())) == 3

    def test_report_mentions_counts(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        with repo.transaction("t", concern="logging"):
            add_class(pkg, "Logger")
        report = repo.demarcation.report()
        assert "logging" in report and "added" in report

    def test_demarcation_survives_checkout(self, repo):
        pkg = find_element(repo.resource.roots[0], "accounts")
        with repo.transaction("t", concern="transactions"):
            add_class(pkg, "TxManager")
        v1 = repo.commit("with concern")
        repo.checkout(v1.id)
        elements = repo.demarcation.elements_of("transactions")
        names = {
            e.get("name") for e in elements
            if e.meta_class.has_feature("name") and e.is_set("name")
        }
        assert "TxManager" in names
