"""Workflow model, guidance, and wizard tests (S7 / E8)."""

import pytest

from repro.errors import IllegalStepError, ParameterError, WorkflowError
from repro.core.registry import default_registry
from repro.repository import ModelRepository
from repro.workflow import ConcernWizard, RefinementGuide, WorkflowModel


@pytest.fixture()
def workflow():
    wf = WorkflowModel()
    wf.add_step("distribution")
    wf.add_step("transactions", requires=["distribution"])
    wf.add_step("security", requires=["distribution"])
    wf.add_step("logging", optional=True)
    wf.validate()
    return wf


class TestWorkflowModel:
    def test_initial_steps(self, workflow):
        assert set(workflow.allowed_next([])) == {"distribution", "logging"}

    def test_prerequisites_enforced(self, workflow):
        assert not workflow.is_allowed("transactions", [])
        assert workflow.is_allowed("transactions", ["distribution"])

    def test_no_repeat(self, workflow):
        assert not workflow.is_allowed("distribution", ["distribution"])

    def test_unknown_concern_not_allowed(self, workflow):
        assert not workflow.is_allowed("ghost", [])

    def test_check_allowed_messages(self, workflow):
        with pytest.raises(IllegalStepError) as e1:
            workflow.check_allowed("transactions", [])
        assert "distribution" in str(e1.value)
        with pytest.raises(IllegalStepError):
            workflow.check_allowed("ghost", [])
        with pytest.raises(IllegalStepError):
            workflow.check_allowed("distribution", ["distribution"])

    def test_remaining_and_complete(self, workflow):
        history = ["distribution", "transactions"]
        assert workflow.remaining(history) == ["security", "logging"]
        assert not workflow.is_complete(history)
        assert workflow.is_complete(["distribution", "transactions", "security"])

    def test_complete_sequences_enumeration(self, workflow):
        sequences = workflow.complete_sequences()
        assert all(s[0] in ("distribution", "logging") for s in sequences)
        mandatory = {"distribution", "transactions", "security"}
        assert all(mandatory <= set(s) for s in sequences)
        # distribution always precedes transactions
        for seq in sequences:
            assert seq.index("distribution") < seq.index("transactions")

    def test_duplicate_step_rejected(self, workflow):
        with pytest.raises(WorkflowError):
            workflow.add_step("distribution")

    def test_validate_unknown_requirement(self):
        wf = WorkflowModel()
        wf.add_step("a", requires=["ghost"])
        with pytest.raises(WorkflowError):
            wf.validate()

    def test_validate_cycle(self):
        wf = WorkflowModel()
        wf.add_step("a", requires=["b"])
        wf.add_step("b", requires=["a"])
        with pytest.raises(WorkflowError):
            wf.validate()


class TestGuidance:
    def test_report_contents(self, workflow, bank_resource):
        repo = ModelRepository(bank_resource)
        with repo.transaction("d", concern="distribution"):
            pass
        guide = RefinementGuide(workflow, repo.demarcation)
        report = guide.report(["distribution"])
        assert "distribution" in report
        assert "transactions" in report
        assert "remaining" in report

    def test_complete_report(self, workflow, bank_resource):
        repo = ModelRepository(bank_resource)
        guide = RefinementGuide(workflow, repo.demarcation)
        history = ["distribution", "transactions", "security"]
        assert "complete" in guide.report(history)

    def test_covered_tracks_demarcation(self, workflow, bank_resource):
        repo = ModelRepository(bank_resource)
        guide = RefinementGuide(workflow, repo.demarcation)
        assert guide.covered() == []
        with repo.transaction("s", concern="security"):
            pass
        assert guide.covered() == ["security"]


class TestWizard:
    @pytest.fixture()
    def wizard(self):
        registry = default_registry()
        return ConcernWizard(registry.get("transactions"))

    def test_questions_reflect_signature(self, wizard):
        questions = {q.name: q for q in wizard.questions()}
        assert set(questions) == {"transactional_ops", "state_classes", "isolation"}
        assert questions["transactional_ops"].required
        assert questions["isolation"].choices == ("serializable", "read-committed")
        assert not questions["isolation"].required

    def test_missing_answers_reported(self, wizard):
        assert wizard.missing({}) == ["transactional_ops", "state_classes"]
        assert wizard.missing(
            {"transactional_ops": ["A.b"], "state_classes": []}
        ) == []

    def test_collect_validates(self, wizard):
        si = wizard.collect(
            {"transactional_ops": ["Account.withdraw"], "state_classes": ["Account"]}
        )
        assert si["isolation"] == "serializable"
        with pytest.raises(ParameterError):
            wizard.collect({})
        with pytest.raises(ParameterError):
            wizard.collect(
                {
                    "transactional_ops": ["A.b"],
                    "state_classes": [],
                    "isolation": "chaotic",
                }
            )

    def test_specialize_produces_cmt(self, wizard):
        cmt = wizard.specialize(
            {"transactional_ops": ["Account.withdraw"], "state_classes": ["Account"]}
        )
        assert cmt.concern == "transactions"
        assert "Account.withdraw" in cmt.name

    def test_transcript_lists_questions(self, wizard):
        text = wizard.transcript()
        assert "transactions" in text
        assert "transactional_ops" in text
        assert "isolation" in text
