"""Log-shipping replication: dirty tracking, replay equivalence, truncation.

The contract under test: a standby that only ever *replays* the
partition's append-only :class:`ReplicationLog` holds state
byte-identical to a full-state copy of the primary — through narrowed
per-servant syncs, snapshot+truncate cycles, concurrent writers,
membership churn, and failover promotion of a log-shipped tail.
"""

import random
import threading

import pytest

from repro.deploy import (
    ApplicationSpec,
    DeploymentDiff,
    DeploymentSpec,
    NodeSpec,
    ReplicationSpec,
)
from repro.errors import DeploymentError, FederationError, NodeDownError
from repro.middleware.envelope import QoS
from repro.runtime import Federation, ReplicaManager
from repro.runtime.federation import ReplicationLog


class Counter:
    """Minimal stateful servant for replication tests."""

    def __init__(self, value=0.0):
        self.value = value

    def bump(self, amount):
        self.value += amount
        return self.value

    def read(self):
        return self.value


MODULE = type("ReplicationTestModule", (), {"Counter": Counter})

RETRY = QoS(timeout_ms=30_000.0, retries=2)


def build(nodes=3, partitions=6, per_partition=3, mode="log", snapshot_every=8):
    federation = Federation(seed=7, latency_ms=0.0)
    for i in range(nodes):
        federation.add_node(f"node-{i}").module = MODULE
    names = []
    for k in range(partitions):
        partition = f"part-{k}"
        node = federation.node_for(partition)
        for j in range(per_partition):
            name = f"{partition}/Counter/{j}"
            node.bind(name, Counter(100.0))
            names.append(name)
    federation.enable_replication(1, mode=mode, snapshot_every=snapshot_every)
    return federation, names


def deploy_module(node):
    node.module = MODULE


def assert_standbys_match_primaries(federation, names):
    """Every standby copy's attribute dict equals its primary's."""
    replicas = federation.replicas
    for name in names:
        primary = federation.servant(name)
        partition = federation.naming.partition_key(name)
        group = replicas._groups[partition]
        for standby_name in group.standbys:
            copies = replicas.take(partition, standby_name)
            assert name in copies, f"{standby_name} holds no copy of {name}"
            copy = copies[name]
            assert copy is not primary
            assert copy.__dict__ == primary.__dict__, (
                f"standby {standby_name} diverged on {name}: "
                f"{copy.__dict__} != {primary.__dict__}"
            )


# ---------------------------------------------------------------------------
# ReplicationLog unit behavior
# ---------------------------------------------------------------------------


class TestReplicationLog:
    def test_appends_are_monotonically_sequenced(self):
        log = ReplicationLog("p")
        seqs = [log.append(f"p/Counter/{i}", "Counter", {"value": i}) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert log.seq == 5
        assert [entry[0] for entry in log.entries] == seqs

    def test_snapshot_folds_last_write_and_truncates(self):
        log = ReplicationLog("p")
        log.append("p/Counter/0", "Counter", {"value": 1.0})
        log.append("p/Counter/1", "Counter", {"value": 2.0})
        log.append("p/Counter/0", "Counter", {"value": 3.0})
        log.snapshot()
        assert log.entries == []
        assert log.base_seq == log.seq == 3
        # last write per name wins in the folded base
        assert log.base["p/Counter/0"] == ("Counter", {"value": 3.0})
        assert log.base["p/Counter/1"] == ("Counter", {"value": 2.0})
        assert log.truncations == 1
        # sequencing continues across the truncation
        assert log.append("p/Counter/1", "Counter", {"value": 4.0}) == 4

    def test_prune_drops_unbound_names_from_base(self):
        log = ReplicationLog("p")
        log.append("p/Counter/0", "Counter", {"value": 1.0})
        log.append("p/Counter/1", "Counter", {"value": 2.0})
        log.snapshot()
        log.prune({"p/Counter/0"})
        assert list(log.base) == ["p/Counter/0"]


# ---------------------------------------------------------------------------
# configuration guards
# ---------------------------------------------------------------------------


class TestReplicationConfig:
    def test_unknown_mode_rejected(self):
        federation, _ = build()
        with pytest.raises(FederationError, match="unknown replication mode"):
            ReplicaManager(federation, count=1, mode="paxos")
        federation.shutdown()

    def test_snapshot_threshold_must_be_positive(self):
        federation, _ = build()
        with pytest.raises(FederationError, match="snapshot_every"):
            ReplicaManager(federation, count=1, mode="log", snapshot_every=0)
        federation.shutdown()

    def test_enable_with_conflicting_mode_rejected(self):
        federation, _ = build(mode="log")
        with pytest.raises(FederationError, match="'log' mode"):
            federation.enable_replication(1, mode="full")
        federation.shutdown()

    def test_live_mode_change_refused(self):
        federation, _ = build(mode="log")
        with pytest.raises(FederationError, match="mode cannot change live"):
            federation.set_replication(1, mode="full")
        federation.shutdown()

    def test_set_replication_retunes_snapshot_threshold(self):
        federation, _ = build(mode="log", snapshot_every=8)
        federation.set_replication(1, snapshot_every=2)
        assert federation.replicas.snapshot_every == 2
        federation.shutdown()

    def test_spec_round_trip_and_legacy_default(self):
        spec = ReplicationSpec(count=2, mode="log", snapshot_every=16)
        assert ReplicationSpec.from_dict(spec.to_dict()) == spec
        # pre-log spec files carry only the count: parse as write-through
        legacy = ReplicationSpec.from_dict({"count": 1})
        assert legacy.mode == "full"
        assert legacy.snapshot_every == 64


class TestReconcileModeChanges:
    @staticmethod
    def _spec(replication):
        return DeploymentSpec(
            name="repl",
            application=ApplicationSpec(name="banking", builder="scenario:banking"),
            nodes=(NodeSpec(name="node-0"), NodeSpec(name="node-1")),
            replication=replication,
        )

    def test_diff_refuses_live_mode_change(self):
        current = self._spec(ReplicationSpec(count=1, mode="full"))
        target = self._spec(ReplicationSpec(count=1, mode="log"))
        with pytest.raises(DeploymentError, match="mode cannot be changed"):
            DeploymentDiff.between(current, target)

    def test_diff_allows_mode_choice_when_first_enabled(self):
        current = self._spec(ReplicationSpec(count=0))
        target = self._spec(ReplicationSpec(count=1, mode="log", snapshot_every=4))
        diff = DeploymentDiff.between(current, target)
        plan = diff.plan()
        (action,) = [a for a in plan.actions if a.kind == "set_replication"]
        assert action.payload["mode"] == "log"
        assert action.payload["snapshot_every"] == 4

    def test_diff_retunes_snapshot_threshold(self):
        current = self._spec(ReplicationSpec(count=1, mode="log", snapshot_every=64))
        target = self._spec(ReplicationSpec(count=1, mode="log", snapshot_every=8))
        diff = DeploymentDiff.between(current, target)
        assert not diff.empty
        (action,) = [a for a in diff.plan().actions if a.kind == "set_replication"]
        assert action.payload["count"] == 1
        assert action.payload["snapshot_every"] == 8


# ---------------------------------------------------------------------------
# stats accounting (the syncs over-count fix)
# ---------------------------------------------------------------------------


class TestStatsAccounting:
    def test_noop_sync_does_not_inflate_syncs(self):
        federation, _ = build(mode="full")
        before = federation.replicas.stats()["syncs"]
        # no such partition: the early return must not count as a sync
        federation.replicas.sync_partition("no-such-partition")
        assert federation.replicas.stats()["syncs"] == before
        federation.shutdown()

    def test_mutating_call_counts_one_refreshing_sync(self):
        federation, names = build(mode="log")
        before = federation.replicas.stats()["syncs"]
        federation.call(names[0], "bump", 1.0)
        assert federation.replicas.stats()["syncs"] == before + 1
        federation.shutdown()

    def test_stats_expose_log_counters(self):
        federation, names = build(mode="log")
        federation.call(names[0], "bump", 1.0)
        stats = federation.replicas.stats()
        assert stats["mode"] == "log"
        assert stats["log_appends"] > 0
        assert stats["replica_lag"] == 0
        assert stats["max_replica_lag"] >= 1
        for key in ("syncs", "skipped_syncs", "snapshots"):
            assert key in stats
        federation.shutdown()

    def test_full_mode_reports_zero_log_activity(self):
        federation, names = build(mode="full")
        federation.call(names[0], "bump", 1.0)
        stats = federation.replicas.stats()
        assert stats["mode"] == "full"
        assert stats["log_appends"] == 0
        assert stats["snapshots"] == 0
        federation.shutdown()

    def test_lag_is_measurable_for_an_unreachable_standby(self):
        federation, names = build(mode="log")
        name = names[0]
        partition = federation.naming.partition_key(name)
        group = federation.replicas._groups[partition]
        (standby_name,) = list(group.standbys)
        # an undeployed standby cannot apply the shipped tail: its
        # watermark freezes and the lag becomes visible in stats()
        module, federation.nodes[standby_name].module = (
            federation.nodes[standby_name].module,
            None,
        )
        try:
            federation.call(name, "bump", 1.0)
            assert federation.replicas.stats()["replica_lag"] >= 1
        finally:
            federation.nodes[standby_name].module = module
        # the next write catches the standby back up through the log
        federation.call(name, "bump", 1.0)
        assert federation.replicas.stats()["replica_lag"] == 0
        assert_standbys_match_primaries(federation, [name])
        federation.shutdown()


# ---------------------------------------------------------------------------
# replay equivalence
# ---------------------------------------------------------------------------


class TestReplayEquivalence:
    def test_sequential_writes_replay_identically(self):
        federation, names = build(mode="log", snapshot_every=8)
        rng = random.Random(11)
        for _ in range(200):
            federation.call(rng.choice(names), "bump", rng.choice((1.0, 2.5)))
        assert_standbys_match_primaries(federation, names)
        federation.shutdown()

    def test_truncation_preserves_equivalence(self):
        # snapshot_every=1 folds+truncates after every single append —
        # every standby refresh goes through the reseed-from-base path
        federation, names = build(mode="log", snapshot_every=1)
        rng = random.Random(13)
        for _ in range(120):
            federation.call(rng.choice(names), "bump", 1.0)
        stats = federation.replicas.stats()
        assert stats["snapshots"] > 0
        assert_standbys_match_primaries(federation, names)
        federation.shutdown()

    def test_log_and_full_modes_converge_to_identical_state(self):
        ops = [(i % 18, float(1 + i % 5)) for i in range(90)]
        finals = []
        for mode in ("full", "log"):
            federation, names = build(mode=mode)
            for index, amount in ops:
                federation.call(names[index], "bump", amount)
            finals.append(
                {name: federation.servant(name).__dict__.copy() for name in names}
            )
            assert_standbys_match_primaries(federation, names)
            federation.shutdown()
        assert finals[0] == finals[1]

    def test_join_reseeds_new_standbys_through_the_log(self):
        federation, names = build(nodes=3, mode="log", snapshot_every=4)
        rng = random.Random(17)
        for _ in range(60):
            federation.call(rng.choice(names), "bump", 1.0)
        federation.join("node-joiner", deploy=deploy_module)
        # the joiner is now a ring successor for some partitions: the
        # rebuild seeded its copies by replaying snapshot + tail
        assert_standbys_match_primaries(federation, names)
        federation.shutdown()

    def test_kill_after_log_tail_promotes_last_write(self):
        federation, names = build(mode="log", snapshot_every=4)
        name = names[0]
        victim = federation.naming.owner_of(name)
        expected = federation.call(name, "bump", 41.0)
        federation.kill(victim)
        # the promoted standby must hold the log-shipped tail, last
        # write included — the QoS budget absorbs the dead-node fault
        assert federation.call(name, "read", qos=RETRY) == expected
        assert federation.failovers == 1
        federation.shutdown()


# ---------------------------------------------------------------------------
# seeded multi-threaded stress: writers + churn
# ---------------------------------------------------------------------------


class TestReplayStress:
    def _run_stress(self, snapshot_every):
        federation = Federation(seed=23, latency_ms=0.0)
        for i in range(4):
            federation.add_node(f"node-{i}", workers=2).module = MODULE
        names = []
        for k in range(8):
            partition = f"part-{k}"
            node = federation.node_for(partition)
            for j in range(3):
                name = f"{partition}/Counter/{j}"
                node.bind(name, Counter(100.0))
                names.append(name)
        federation.enable_replication(
            1, mode="log", snapshot_every=snapshot_every
        )

        successes = []
        unexpected = []

        def writer(seed):
            rng = random.Random(seed)
            done = 0
            for _ in range(80):
                try:
                    federation.call(rng.choice(names), "bump", 1.0, qos=RETRY)
                    done += 1
                except NodeDownError:
                    # a kill window can outlast the retry budget under
                    # heavy concurrency; dead-node refusals are
                    # pre-effect, so the bump left no mark — money
                    # conservation below still holds exactly
                    pass
                except Exception as exc:  # pragma: no cover - fails the test
                    unexpected.append(exc)
            successes.append(done)

        threads = [
            threading.Thread(target=writer, args=(100 + i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        # membership churn while the writers hammer the partitions
        federation.join("node-churn", deploy=deploy_module)
        federation.kill("node-1")
        federation.retire("node-2")
        for thread in threads:
            thread.join()

        assert not unexpected, f"writer calls failed: {unexpected[:3]}"
        # money conserved: every successful bump left exactly one mark
        total = sum(federation.call(name, "read", qos=RETRY) for name in names)
        assert total == 100.0 * len(names) + sum(successes)
        # replay equivalence after the dust settles: every standby copy
        # byte-identical to its primary, and no standby left behind
        assert_standbys_match_primaries(federation, names)
        assert federation.replicas.replica_lag() == 0
        stats = federation.replicas.stats()
        federation.shutdown()
        return stats

    def test_concurrent_writers_with_churn(self):
        stats = self._run_stress(snapshot_every=8)
        assert stats["log_appends"] > 0
        assert stats["snapshots"] > 0

    def test_concurrent_writers_with_aggressive_truncation(self):
        stats = self._run_stress(snapshot_every=1)
        assert stats["snapshots"] >= stats["log_appends"] // 2
