"""The configuration pipeline: plan IR, DAG scheduler, batch executor."""

import pytest

from helpers import FULL_BANK_PARAMS, build_bank_model

from repro.core import Concern, GenericTransformation, MdaLifecycle
from repro.core.registry import default_registry
from repro.errors import (
    BatchExecutionError,
    ParameterError,
    PipelineError,
    PlanError,
    SchedulingError,
    TransformationError,
    WorkflowError,
)
from repro.pipeline import (
    ConfigurationPlan,
    PipelineExecutor,
    Scheduler,
)
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.uml import find_element, has_stereotype
from repro.workflow import PlanWizard, WorkflowModel


def bank_plan():
    plan = ConfigurationPlan()
    for concern, params in FULL_BANK_PARAMS.items():
        plan.select(concern, **params)
    return plan


def bank_workflow():
    workflow = WorkflowModel()
    workflow.add_step("distribution")
    workflow.add_step("transactions")
    workflow.add_step("security", requires=["distribution"])
    return workflow


class TestConfigurationPlan:
    def test_duplicate_concern_rejected(self):
        plan = ConfigurationPlan().select("logging", log_patterns=["*"])
        with pytest.raises(PlanError, match="already selects"):
            plan.select("logging", log_patterns=["*.deposit"])

    def test_after_must_reference_plan_members_or_history(self):
        plan = ConfigurationPlan().select(
            "logging", after=["distribution"], log_patterns=["*"]
        )
        with pytest.raises(PlanError, match="neither present in the plan"):
            plan.validate()

    def test_after_may_reference_satisfied_history(self):
        plan = ConfigurationPlan().select(
            "logging", after=["distribution"], log_patterns=["*"]
        )
        plan.validate(satisfied=["distribution"])  # already applied: fine
        steps = plan.bind(default_registry(), satisfied=["distribution"])
        assert [s.concern for s in steps] == ["logging"]

    def test_satisfied_history_does_not_admit_unknown_edges(self):
        plan = ConfigurationPlan().select(
            "logging", after=["distribution", "ghost"], log_patterns=["*"]
        )
        with pytest.raises(PlanError, match=r"\['ghost'\]"):
            plan.validate(satisfied=["distribution"])

    def test_bind_specializes_each_selection(self):
        steps = bank_plan().bind(default_registry())
        assert [s.concern for s in steps] == list(FULL_BANK_PARAMS)
        assert steps[0].concrete.name.startswith("T_distribution")

    def test_bind_surfaces_unknown_concern(self):
        plan = ConfigurationPlan().select("ghost")
        with pytest.raises(TransformationError, match="no generic transformation"):
            plan.bind(default_registry())

    def test_bind_surfaces_bad_parameters_before_any_mutation(self):
        plan = ConfigurationPlan().select("logging")  # log_patterns missing
        with pytest.raises(ParameterError):
            plan.bind(default_registry())

    def test_from_config_round_trip(self):
        config = [
            {"concern": "distribution", "params": FULL_BANK_PARAMS["distribution"]},
            {
                "concern": "security",
                "params": FULL_BANK_PARAMS["security"],
                "after": ["distribution"],
            },
        ]
        plan = ConfigurationPlan.from_config(config)
        assert plan.concerns == ["distribution", "security"]
        assert plan.selections[1].after == ("distribution",)

    def test_from_config_rejects_garbage(self):
        with pytest.raises(PlanError):
            ConfigurationPlan.from_config({"not": "a plan"})

    def test_after_accepts_a_bare_string(self):
        plan = ConfigurationPlan.from_config(
            [
                {"concern": "distribution", "params": FULL_BANK_PARAMS["distribution"]},
                {
                    "concern": "security",
                    "params": FULL_BANK_PARAMS["security"],
                    "after": "distribution",
                },
            ]
        )
        assert plan.selections[1].after == ("distribution",)
        plan.validate()


class TestScheduler:
    def test_independent_concerns_share_one_batch(self):
        steps = bank_plan().bind(default_registry())
        schedule = Scheduler().schedule(steps)
        assert len(schedule.batches) == 1
        assert [s.concern for s in schedule.batches[0]] == list(FULL_BANK_PARAMS)

    def test_explicit_after_splits_batches(self):
        plan = ConfigurationPlan()
        plan.select("distribution", **FULL_BANK_PARAMS["distribution"])
        plan.select("transactions", **FULL_BANK_PARAMS["transactions"])
        plan.select(
            "security", after=["distribution"], **FULL_BANK_PARAMS["security"]
        )
        schedule = Scheduler().schedule(plan.bind(default_registry()))
        assert [[s.concern for s in b] for b in schedule.batches] == [
            ["distribution", "transactions"],
            ["security"],
        ]

    def test_satisfied_after_edges_impose_no_dependency(self):
        # an `after` edge naming an already-applied concern is dropped by
        # the scheduler's satisfied-history filter: everything schedules
        # in one batch because no in-plan predecessor remains
        plan = ConfigurationPlan()
        plan.select(
            "transactions", after=["distribution"], **FULL_BANK_PARAMS["transactions"]
        )
        plan.select("security", **FULL_BANK_PARAMS["security"])
        steps = plan.bind(default_registry(), satisfied=["distribution"])
        schedule = Scheduler(satisfied=["distribution"]).schedule(steps)
        assert [[s.concern for s in b] for b in schedule.batches] == [
            ["transactions", "security"]
        ]
        assert schedule.dependencies["transactions"] == []

    def test_workflow_requires_become_edges(self):
        steps = bank_plan().bind(default_registry())
        schedule = Scheduler(workflow=bank_workflow()).schedule(steps)
        assert [[s.concern for s in b] for b in schedule.batches] == [
            ["distribution", "transactions"],
            ["security"],
        ]
        assert schedule.dependencies["security"] == ["distribution"]

    def test_precedence_cycle_raises_pipeline_error(self):
        plan = ConfigurationPlan()
        plan.select(
            "distribution", after=["security"], **FULL_BANK_PARAMS["distribution"]
        )
        plan.select(
            "security", after=["distribution"], **FULL_BANK_PARAMS["security"]
        )
        with pytest.raises(SchedulingError, match="cycle") as excinfo:
            Scheduler().schedule(plan.bind(default_registry()))
        assert isinstance(excinfo.value, PipelineError)
        assert "distribution" in str(excinfo.value)
        assert "security" in str(excinfo.value)

    def test_workflow_prereq_missing_from_plan_rejected(self):
        plan = ConfigurationPlan().select(
            "security", **FULL_BANK_PARAMS["security"]
        )
        with pytest.raises(SchedulingError, match="does not select"):
            Scheduler(workflow=bank_workflow()).schedule(
                plan.bind(default_registry())
            )

    def test_satisfied_history_waives_workflow_prereq(self):
        plan = ConfigurationPlan().select(
            "security", **FULL_BANK_PARAMS["security"]
        )
        schedule = Scheduler(
            workflow=bank_workflow(), satisfied={"distribution"}
        ).schedule(plan.bind(default_registry()))
        assert len(schedule.batches) == 1

    def test_flattened_order_is_aspect_precedence_order(self):
        steps = bank_plan().bind(default_registry())
        schedule = Scheduler(workflow=bank_workflow()).schedule(steps)
        assert [s.concern for s in schedule.order()] == [
            "distribution",
            "transactions",
            "security",
        ]


def failing_rule_transformation(when="rules"):
    """A minimal GMT whose application fails in the requested phase."""
    gmt = GenericTransformation("T_broken", Concern("broken"))
    if when == "postcondition":
        gmt.postcondition(
            "never-true", "Class.allInstances()->exists(c | c.name = 'Nope')"
        )

        @gmt.rule("noop")
        def _noop(ctx):
            pass

    else:

        @gmt.rule("explode")
        def _explode(ctx):
            from repro.uml.model import add_class, find_element

            pkg = find_element(ctx.model, "accounts")
            add_class(pkg, "Partial")
            raise RuntimeError("boom")

    return gmt


class TestExecutor:
    def run_bank(self, plan, workflow=None):
        resource, _ = build_bank_model()
        repository = ModelRepository(resource)
        repository.commit("initial PIM")
        steps = plan.bind(default_registry())
        schedule = Scheduler(workflow=workflow).schedule(steps)
        executor = PipelineExecutor(repository)
        return repository, executor.run(schedule)

    def test_batched_run_produces_refined_model(self):
        repository, result = self.run_bank(bank_plan())
        withdraw = find_element(
            repository.resource.roots[0], "accounts.Account.withdraw"
        )
        assert has_stereotype(withdraw, "Transactional")
        assert len(result.applications) == 3
        assert result.stats.batches == 1

    def test_one_savepoint_per_batch(self):
        plan = ConfigurationPlan()
        plan.select("distribution", **FULL_BANK_PARAMS["distribution"])
        plan.select(
            "security", after=["distribution"], **FULL_BANK_PARAMS["security"]
        )
        repository, result = self.run_bank(plan)
        assert result.stats.savepoints == 2
        # initial PIM + one version per batch
        assert len(repository.history.versions) == 3

    def test_stats_expose_cache_hit_counts(self):
        _, result = self.run_bank(bank_plan())
        stats = result.stats
        assert stats.steps == 3
        assert stats.ocl_extents.hits > 0  # shared allInstances extents
        assert stats.ocl_compile.hits >= 0  # counters wired through
        assert "OCL compile cache" in stats.report()

    def test_trace_aggregates_in_one_log(self):
        resource, _ = build_bank_model()
        repository = ModelRepository(resource)
        repository.commit("initial PIM")
        engine = TransformationEngine(repository)
        executor = PipelineExecutor(repository, engine=engine)
        schedule = Scheduler().schedule(bank_plan().bind(default_registry()))
        result = executor.run(schedule)
        assert len(engine.trace) == sum(r.trace_links for r in result.applications)

    def test_failing_rule_rolls_back_only_its_batch(self):
        resource, _ = build_bank_model()
        repository = ModelRepository(resource)
        repository.commit("initial PIM")
        registry = default_registry()
        registry.register(failing_rule_transformation("rules"))

        plan = ConfigurationPlan()
        plan.select("distribution", **FULL_BANK_PARAMS["distribution"])
        plan.select("broken", after=["distribution"])
        plan.select("transactions", after=["distribution"], **FULL_BANK_PARAMS["transactions"])
        schedule = Scheduler().schedule(plan.bind(registry))
        assert [[s.concern for s in b] for b in schedule.batches] == [
            ["distribution"],
            ["broken", "transactions"],
        ]

        executor = PipelineExecutor(repository)
        with pytest.raises(BatchExecutionError, match="batch 1") as excinfo:
            executor.run(schedule)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

        model = repository.resource.roots[0]
        # batch 0 survived: the distribution refinement is still there
        assert find_element(model, "accounts.Account") is not None
        assert len(repository.demarcation.elements_of("distribution")) > 0
        # batch 1 rolled back: neither the partial class nor the
        # transactions refinement made it into the model
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            find_element(model, "accounts.Partial")
        withdraw = find_element(model, "accounts.Account.withdraw")
        assert not has_stereotype(withdraw, "Transactional")
        # the savepoint chain stops after batch 0
        assert len(repository.history.versions) == 2

    def test_postcondition_violation_rolls_back_batch(self):
        resource, _ = build_bank_model()
        repository = ModelRepository(resource)
        repository.commit("initial PIM")
        registry = default_registry()
        registry.register(failing_rule_transformation("postcondition"))

        plan = ConfigurationPlan().select("broken")
        schedule = Scheduler().schedule(plan.bind(registry))
        before = sum(1 for _ in repository.resource.all_contents())
        with pytest.raises(BatchExecutionError):
            PipelineExecutor(repository).run(schedule)
        assert sum(1 for _ in repository.resource.all_contents()) == before

    def test_precondition_violation_reports_failing_step(self):
        resource, _ = build_bank_model()
        repository = ModelRepository(resource)
        repository.commit("initial PIM")
        plan = ConfigurationPlan().select(
            "transactions",
            transactional_ops=["Ghost.op"],
            state_classes=["Account"],
        )
        schedule = Scheduler().schedule(plan.bind(default_registry()))
        with pytest.raises(BatchExecutionError, match="T_transactions"):
            PipelineExecutor(repository).run(schedule)


class TestLifecycleIntegration:
    def test_apply_plan_queues_aspects_in_schedule_order(self, bank_resource, services):
        lifecycle = MdaLifecycle(bank_resource, services=services)
        result = lifecycle.apply_plan(bank_plan())
        assert len(result.applications) == 3
        names = lifecycle.plan.order()
        assert names[0].startswith("A_distribution")
        assert names[1].startswith("A_transactions")
        assert names[2].startswith("A_security")
        assert lifecycle.last_pipeline_stats is result.stats

    def test_after_edge_into_lifecycle_history_is_accepted(
        self, bank_resource, services
    ):
        # the lifecycle threads its applied history into plan validation,
        # so a later plan may order itself after an earlier application
        lifecycle = MdaLifecycle(bank_resource, services=services)
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        follow_up = ConfigurationPlan().select(
            "security", after=["distribution"], **FULL_BANK_PARAMS["security"]
        )
        result = lifecycle.apply_plan(follow_up)
        assert [a.concern for a in result.applications] == ["security"]
        assert lifecycle.applied_concerns == ["distribution", "security"]

    def test_apply_plan_then_build_application_works(self, bank_resource, services):
        lifecycle = MdaLifecycle(bank_resource, services=services)
        lifecycle.apply_plan(bank_plan())
        module = lifecycle.build_application("pipeline_bank_app")
        services.credentials.add_user("alice", "pw", roles=["teller"])
        credential = services.auth.login("alice", "pw")
        source = module.Account(balance=10.0)
        target = module.Account(balance=0.0)
        with services.orb.call_context(credentials=credential.token):
            assert module.Bank().transfer(source, target, 4.0) is True
        assert target.balance == 4.0

    def test_apply_plan_respects_workflow_gate(self, bank_resource, services):
        workflow = WorkflowModel()
        workflow.add_step("distribution")
        workflow.add_step("transactions", requires=["distribution"])
        lifecycle = MdaLifecycle(
            bank_resource, services=services, workflow=workflow
        )
        plan = ConfigurationPlan().select(
            "security", **FULL_BANK_PARAMS["security"]
        )
        with pytest.raises(WorkflowError):
            lifecycle.apply_plan(plan)

    def test_apply_plan_rejects_already_applied_concern(self, lifecycle):
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        plan = ConfigurationPlan().select(
            "distribution", **FULL_BANK_PARAMS["distribution"]
        )
        with pytest.raises(WorkflowError, match="already applied"):
            lifecycle.apply_plan(plan)

    def test_partial_failure_keeps_lifecycle_consistent_with_model(
        self, bank_resource, services
    ):
        lifecycle = MdaLifecycle(bank_resource, services=services)
        lifecycle.registry.register(failing_rule_transformation("rules"))
        plan = ConfigurationPlan()
        plan.select("distribution", **FULL_BANK_PARAMS["distribution"])
        plan.select("broken", after=["distribution"])
        with pytest.raises(BatchExecutionError):
            lifecycle.apply_plan(plan)
        # batch 0 (distribution) was committed: lifecycle state mirrors it
        assert lifecycle.applied_concerns == ["distribution"]
        assert lifecycle.plan.order()[0].startswith("A_distribution")
        # a retry of the failed concern alone is not blocked by stale state
        assert "broken" in lifecycle.remaining_concerns()

    def test_step_durations_sum_within_batch_duration(self, bank_resource, services):
        lifecycle = MdaLifecycle(bank_resource, services=services)
        result = lifecycle.apply_plan(bank_plan())
        total = result.stats.duration_s
        assert sum(r.duration_s for r in result.applications) <= total

    def test_apply_concern_still_commits_per_application(self, lifecycle):
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        log = lifecycle.repository.log()
        assert len(log) == 2
        assert "T_distribution" in log[1]


class TestPlanWizard:
    def test_answers_validated_through_concern_wizard(self):
        wizard = PlanWizard(default_registry())
        with pytest.raises(ParameterError):
            wizard.answer("logging")  # log_patterns is required

    def test_build_plan_preserves_answer_order(self):
        wizard = PlanWizard(default_registry())
        wizard.answer("distribution", **FULL_BANK_PARAMS["distribution"])
        wizard.answer(
            "security", after=("distribution",), **FULL_BANK_PARAMS["security"]
        )
        plan = wizard.build_plan()
        assert plan.concerns == ["distribution", "security"]
        assert plan.selections[1].after == ("distribution",)

    def test_duplicate_answer_rejected(self):
        wizard = PlanWizard(default_registry())
        wizard.answer("distribution", **FULL_BANK_PARAMS["distribution"])
        with pytest.raises(PlanError, match="already configured"):
            wizard.answer("distribution", **FULL_BANK_PARAMS["distribution"])

    def test_workflow_enforced_at_configuration_time(self):
        workflow = bank_workflow()
        wizard = PlanWizard(default_registry(), workflow=workflow)
        with pytest.raises(PlanError, match="no step"):
            wizard.answer("logging", log_patterns=["*"])
        wizard.answer("security", **FULL_BANK_PARAMS["security"])
        with pytest.raises(PlanError, match="requires"):
            wizard.build_plan()  # distribution prerequisite not configured
        wizard.answer("distribution", **FULL_BANK_PARAMS["distribution"])
        assert wizard.build_plan().concerns == ["security", "distribution"]

    def test_wizard_plan_drives_lifecycle(self, bank_resource, services):
        wizard = PlanWizard(default_registry())
        for concern, params in FULL_BANK_PARAMS.items():
            wizard.answer(concern, **params)
        lifecycle = MdaLifecycle(bank_resource, services=services)
        result = lifecycle.apply_plan(wizard.build_plan())
        assert result.application_order[0].startswith("T_distribution")


class TestWeaverPointcutMemo:
    def build_weaver(self):
        from repro.aop import Aspect, Weaver

        class Target:
            def ping(self):
                return "pong"

            def helper(self):
                return self.ping()

        weaver = Weaver()
        weaver.weave_class(Target)
        return weaver, Target

    def test_repeat_dispatch_hits_memo(self):
        from repro.aop import Aspect

        weaver, Target = self.build_weaver()
        calls = []
        aspect = Aspect("obs")

        @aspect.before("execution(Target.ping)")
        def _observe(jp):
            calls.append("b")

        weaver.deploy(aspect)

        t = Target()
        t.ping()
        assert weaver.pointcut_memo_misses == 1
        t.ping()
        t.ping()
        assert weaver.pointcut_memo_hits == 2
        assert calls == ["b", "b", "b"]

    def test_deploy_invalidates_memo(self):
        from repro.aop import Aspect

        weaver, Target = self.build_weaver()
        first = Aspect("first")

        @first.before("execution(Target.ping)")
        def _noop(jp):
            pass

        weaver.deploy(first)
        t = Target()
        t.ping()

        calls = []
        second = Aspect("second")

        @second.before("execution(Target.ping)")
        def _mark(jp):
            calls.append("x")

        weaver.deploy(second)
        t.ping()
        assert calls == ["x"]  # memo did not serve the stale entry

    def test_advice_added_after_deploy_is_seen(self):
        from repro.aop import Aspect, AdviceKind

        weaver, Target = self.build_weaver()
        aspect = Aspect("grows")

        @aspect.before("execution(Target.ping)")
        def _first(jp):
            pass

        weaver.deploy(aspect)
        t = Target()
        t.ping()  # memo populated for this signature

        calls = []
        aspect.add_advice(
            AdviceKind.BEFORE, "execution(Target.ping)", lambda jp: calls.append("late")
        )
        t.ping()
        assert calls == ["late"]

    def test_epoch_bumps_on_deploy_undeploy_and_advice_mutation(self):
        from repro.aop import Aspect, AdviceKind

        weaver, Target = self.build_weaver()
        aspect = Aspect("obs")
        epoch0 = weaver._epoch
        weaver.deploy(aspect)
        assert weaver._epoch > epoch0
        epoch1 = weaver._epoch
        aspect.add_advice(AdviceKind.BEFORE, "execution(Target.ping)", lambda jp: None)
        assert weaver._epoch > epoch1
        epoch2 = weaver._epoch
        weaver.undeploy(aspect)
        assert weaver._epoch > epoch2
        # undeploy unsubscribes: mutations of a detached aspect are free
        epoch3 = weaver._epoch
        aspect.add_advice(AdviceKind.BEFORE, "execution(Target.ping)", lambda jp: None)
        assert weaver._epoch == epoch3

    def test_advice_removed_after_deploy_stops_firing(self):
        from repro.aop import Aspect

        weaver, Target = self.build_weaver()
        calls = []
        aspect = Aspect("shrinks")

        @aspect.before("execution(Target.ping)")
        def _mark(jp):
            calls.append("x")

        weaver.deploy(aspect)
        t = Target()
        t.ping()  # memo populated with the advice
        assert calls == ["x"]
        aspect.advices.clear()  # direct mutation of the public list
        t.ping()
        assert calls == ["x"], "removed advice must not be served from the memo"

    def test_steady_state_dispatch_never_invalidates(self):
        from repro.aop import Aspect

        weaver, Target = self.build_weaver()
        aspect = Aspect("obs")

        @aspect.before("execution(Target.ping)")
        def _noop(jp):
            pass

        weaver.deploy(aspect)
        t = Target()
        t.ping()
        assert weaver.pointcut_memo_misses == 1
        for _ in range(50):
            t.ping()
        # one integer comparison per dispatch: the memo never rebuilt
        assert weaver.pointcut_memo_misses == 1
        assert weaver.pointcut_memo_hits == 50

    def test_cflow_advice_stays_dynamic(self):
        from repro.aop import Aspect

        weaver, Target = self.build_weaver()
        calls = []
        aspect = Aspect("cf")

        @aspect.before("execution(Target.ping) && cflow(Target.helper)")
        def _in_flow(jp):
            calls.append("in-flow")

        weaver.deploy(aspect)

        t = Target()
        t.ping()  # outside the helper flow: must not fire
        assert calls == []
        t.helper()  # ping inside helper's control flow: must fire
        assert calls == ["in-flow"]
        t.ping()  # memoized signature, but still outside the flow
        assert calls == ["in-flow"]
