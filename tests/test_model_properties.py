"""Property-based whole-model tests: random UML models survive every
structural pipeline (validation, XMI round-trip, cloning, undo) unchanged."""

from hypothesis import given, settings, strategies as st

from repro.core.shipping import model_fingerprint
from repro.metamodel import validate
from repro.metamodel.instances import ModelResource, deep_clone
from repro.repository import ModelRepository
from repro.uml import (
    UML,
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)
from repro.xmi import parse_xmi, xmi_string

_name = st.from_regex(r"[A-Z][a-z]{1,6}", fullmatch=True)


@st.composite
def random_models(draw):
    """A random, well-formed UML model with classes, features, marks."""
    resource, model = new_model("random")
    prims = ensure_primitives(model)
    prim_list = list(prims.values())
    n_packages = draw(st.integers(1, 2))
    classes = []
    used_names = set()

    def fresh(prefix):
        base = draw(_name)
        name = f"{prefix}{base}"
        suffix = 0
        while name in used_names:
            suffix += 1
            name = f"{prefix}{base}{suffix}"
        used_names.add(name)
        return name

    for p in range(n_packages):
        pkg = add_package(model, f"pkg{p}")
        for _ in range(draw(st.integers(1, 4))):
            cls = add_class(pkg, fresh("C"))
            classes.append(cls)
            for _ in range(draw(st.integers(0, 3))):
                add_attribute(
                    cls,
                    fresh("attr").lower(),
                    draw(st.sampled_from(prim_list)),
                    lower=draw(st.integers(0, 1)),
                )
            for _ in range(draw(st.integers(0, 2))):
                op = add_operation(
                    cls,
                    fresh("op").lower(),
                    return_type=draw(st.sampled_from(prim_list)),
                )
                if draw(st.booleans()):
                    apply_stereotype(
                        op, "Marked", weight=draw(st.integers(0, 100))
                    )
    # random single inheritance among earlier classes (acyclic by order)
    for i, cls in enumerate(classes[1:], start=1):
        if draw(st.booleans()):
            parent = classes[draw(st.integers(0, i - 1))]
            cls.superclasses.append(parent)
    return resource


@given(random_models())
@settings(max_examples=25, deadline=None)
def test_random_models_are_well_formed(resource):
    assert validate(resource) == []


@given(random_models())
@settings(max_examples=25, deadline=None)
def test_xmi_roundtrip_preserves_fingerprint(resource):
    restored = parse_xmi(xmi_string(resource), UML.package)
    assert validate(restored) == []
    assert model_fingerprint(restored) == model_fingerprint(resource)


@given(random_models())
@settings(max_examples=25, deadline=None)
def test_double_roundtrip_is_stable(resource):
    once = parse_xmi(xmi_string(resource), UML.package)
    twice = parse_xmi(xmi_string(once), UML.package)
    assert model_fingerprint(once) == model_fingerprint(twice)


@given(random_models())
@settings(max_examples=25, deadline=None)
def test_deep_clone_preserves_fingerprint(resource):
    clones, _ = deep_clone(resource.roots)
    clone_resource = ModelResource(resource.name)
    for clone in clones:
        clone_resource.add_root(clone)
    assert model_fingerprint(clone_resource) == model_fingerprint(resource)
    assert validate(clone_resource) == []


@given(random_models())
@settings(max_examples=20, deadline=None)
def test_commit_checkout_preserves_fingerprint(resource):
    before = model_fingerprint(resource)
    repo = ModelRepository(resource)
    version = repo.commit("state")
    # mutate arbitrarily, then restore
    model = resource.roots[0]
    pkg = add_package(model, "scratch")
    add_class(pkg, "Scratch")
    repo.checkout(version.id)
    assert model_fingerprint(resource) == before


@given(random_models())
@settings(max_examples=20, deadline=None)
def test_transformation_undo_preserves_fingerprint(resource):
    from hypothesis import assume

    from repro.core.registry import default_registry
    from repro.transform import TransformationEngine
    from repro.uml import classes_of

    # logging's postcondition needs at least one operation to mark
    assume(any(list(c.operations) for c in classes_of(resource.roots[0])))
    before = model_fingerprint(resource)
    repo = ModelRepository(resource)
    engine = TransformationEngine(repo)
    engine.apply(default_registry().get("logging").specialize(log_patterns=["*.*"]))
    assert model_fingerprint(resource) != before
    repo.undo()
    assert model_fingerprint(resource) == before
