"""Shared fixtures: a banking PIM (the paper's running-example domain),
a library metamodel for kernel tests, and wired middleware services.

The model builders live in :mod:`helpers`; test modules import them
explicitly (``from helpers import build_bank_model``) instead of
reaching into ``conftest``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from helpers import FULL_BANK_PARAMS, build_bank_model

from repro.core import MdaLifecycle, MiddlewareServices
from repro.metamodel import STRING, UNBOUNDED, MetamodelBuilder


@pytest.fixture()
def library_metamodel():
    """A small non-UML metamodel exercising every kernel feature."""
    b = MetamodelBuilder("library")
    book = b.metaclass("Book")
    author = b.metaclass("Author")
    shelf = b.metaclass("Shelf")
    novel = b.metaclass("Novel", superclasses=[book])
    b.attribute(book, "title", STRING, lower=1)
    b.attribute(book, "tags", STRING, upper=UNBOUNDED)
    b.attribute(author, "name", STRING)
    b.reference(book, "authors", author, upper=UNBOUNDED, opposite="books")
    b.reference(author, "books", book, upper=UNBOUNDED)
    b.reference(shelf, "books", book, upper=UNBOUNDED, containment=True)
    b.reference(book, "sequel", book)
    genre = b.enum("Genre", ["fiction", "science", "history"])
    b.attribute(book, "genre", genre, default="fiction")
    pkg = b.build()
    return {
        "package": pkg,
        "Book": book,
        "Author": author,
        "Shelf": shelf,
        "Novel": novel,
        "Genre": genre,
    }


@pytest.fixture()
def bank_model():
    return build_bank_model()


@pytest.fixture()
def bank_resource(bank_model):
    return bank_model[0]


@pytest.fixture()
def services():
    return MiddlewareServices.create(seed=42)


@pytest.fixture()
def lifecycle(bank_resource, services):
    return MdaLifecycle(bank_resource, services=services)


@pytest.fixture()
def woven_bank(lifecycle):
    """The fully refined, generated, and woven banking application."""
    for concern, params in FULL_BANK_PARAMS.items():
        lifecycle.apply_concern(concern, **params)
    module = lifecycle.build_application("bank_app_test")
    services = lifecycle.services
    services.credentials.add_user("alice", "pw", roles=["teller"])
    credential = services.auth.login("alice", "pw")
    return {
        "lifecycle": lifecycle,
        "module": module,
        "services": services,
        "credential": credential,
    }


@pytest.fixture(scope="session", autouse=True)
def lock_witness_session():
    """Turn a witnessed run into a hierarchy check.

    When ``REPRO_LOCK_WITNESS`` is set the named-lock factories already
    produce witnessed primitives (raising on the first inversion in
    ``=1`` mode); this fixture additionally validates, at session end,
    that the acquisition-order graph the run actually observed is
    consistent with the documented hierarchy in
    ``tools/concurrency_baseline.json`` — recorded inversions, rank
    violations, and unapproved same-name nesting all fail the session.
    """
    from repro.analysis import witness

    if not witness.enabled():
        yield
        return
    witness.reset()
    yield
    snapshot = witness.registry().snapshot()
    problems = [
        f"inversion: {r['first']} vs {r['second']}"
        for r in snapshot["inversions"]
    ]
    baseline_path = (
        Path(__file__).resolve().parents[1] / "tools" / "concurrency_baseline.json"
    )
    if baseline_path.exists():
        from repro.analysis.baseline import Baseline, check_witness_edges

        baseline = Baseline.load(baseline_path)
        problems.extend(
            finding.message
            for finding in check_witness_edges(
                [(src, dst) for src, dst, _count in snapshot["edges"]],
                baseline,
                list(snapshot["self_nests"]),
            )
        )
    if problems:
        pytest.fail(
            "lock witness observed hierarchy violations:\n"
            + "\n".join(problems),
            pytrace=False,
        )
