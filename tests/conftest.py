"""Shared fixtures: a banking PIM (the paper's running-example domain),
a library metamodel for kernel tests, and wired middleware services."""

from __future__ import annotations

import pytest

from repro.core import MdaLifecycle, MiddlewareServices
from repro.metamodel import (
    STRING,
    UNBOUNDED,
    MetamodelBuilder,
    ModelResource,
)
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)


@pytest.fixture()
def library_metamodel():
    """A small non-UML metamodel exercising every kernel feature."""
    b = MetamodelBuilder("library")
    book = b.metaclass("Book")
    author = b.metaclass("Author")
    shelf = b.metaclass("Shelf")
    novel = b.metaclass("Novel", superclasses=[book])
    b.attribute(book, "title", STRING, lower=1)
    b.attribute(book, "tags", STRING, upper=UNBOUNDED)
    b.attribute(author, "name", STRING)
    b.reference(book, "authors", author, upper=UNBOUNDED, opposite="books")
    b.reference(author, "books", book, upper=UNBOUNDED)
    b.reference(shelf, "books", book, upper=UNBOUNDED, containment=True)
    b.reference(book, "sequel", book)
    genre = b.enum("Genre", ["fiction", "science", "history"])
    b.attribute(book, "genre", genre, default="fiction")
    pkg = b.build()
    return {
        "package": pkg,
        "Book": book,
        "Author": author,
        "Shelf": shelf,
        "Novel": novel,
        "Genre": genre,
    }


def build_bank_model():
    """The functional banking PIM with executable operation bodies."""
    resource, model = new_model("bank")
    prims = ensure_primitives(model)
    pkg = add_package(model, "accounts")

    account = add_class(pkg, "Account")
    add_attribute(account, "number", prims["String"])
    add_attribute(account, "balance", prims["Real"])
    deposit = add_operation(
        account, "deposit", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        deposit, "PythonBody", body="self.balance += amount\nreturn self.balance"
    )
    withdraw = add_operation(
        account, "withdraw", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        withdraw,
        "PythonBody",
        body=(
            "if amount > self.balance:\n"
            "    raise ValueError('insufficient funds')\n"
            "self.balance -= amount\n"
            "return self.balance"
        ),
    )
    get_balance = add_operation(account, "getBalance", return_type=prims["Real"])
    apply_stereotype(get_balance, "PythonBody", body="return self.balance")

    bank = add_class(pkg, "Bank")
    transfer = add_operation(
        bank,
        "transfer",
        [("source", None), ("target", None), ("amount", prims["Real"])],
        return_type=prims["Boolean"],
    )
    apply_stereotype(
        transfer,
        "PythonBody",
        body="source.withdraw(amount)\ntarget.deposit(amount)\nreturn True",
    )
    return resource, model


@pytest.fixture()
def bank_model():
    return build_bank_model()


@pytest.fixture()
def bank_resource(bank_model):
    return bank_model[0]


@pytest.fixture()
def services():
    return MiddlewareServices.create(seed=42)


@pytest.fixture()
def lifecycle(bank_resource, services):
    return MdaLifecycle(bank_resource, services=services)


FULL_BANK_PARAMS = {
    "distribution": dict(server_classes=["Account"], registry_prefix="bank"),
    "transactions": dict(
        transactional_ops=["Bank.transfer", "Account.withdraw", "Account.deposit"],
        state_classes=["Account"],
    ),
    "security": dict(
        protected_ops=["Bank.transfer"], role_grants={"teller": ["Bank.*"]}
    ),
}


@pytest.fixture()
def woven_bank(lifecycle):
    """The fully refined, generated, and woven banking application."""
    for concern, params in FULL_BANK_PARAMS.items():
        lifecycle.apply_concern(concern, **params)
    module = lifecycle.build_application("bank_app_test")
    services = lifecycle.services
    services.credentials.add_user("alice", "pw", roles=["teller"])
    credential = services.auth.login("alice", "pw")
    return {
        "lifecycle": lifecycle,
        "module": module,
        "services": services,
        "credential": credential,
    }
