"""Evaluator tests: scalar semantics, collections, and model navigation."""

import pytest

from repro.errors import (
    OclEvaluationError,
    OclNameError,
    OclTypeError,
)
from repro.ocl import OclContext, UNDEFINED, evaluate
from repro.ocl.evaluator import types_from_package
from repro.uml import (
    UML,
    add_attribute,
    add_class,
    add_operation,
    add_package,
    ensure_primitives,
    new_model,
)


class TestArithmeticAndLogic:
    def test_basic_arithmetic(self):
        assert evaluate("1 + 2 * 3 - 4") == 3
        assert evaluate("10 / 4") == 2.5
        assert evaluate("7 div 2") == 3
        assert evaluate("7 mod 2") == 1

    def test_division_by_zero(self):
        with pytest.raises(OclEvaluationError):
            evaluate("1 / 0")
        with pytest.raises(OclEvaluationError):
            evaluate("1 div 0")

    def test_comparisons(self):
        assert evaluate("1 < 2") and evaluate("2 <= 2")
        assert evaluate("3 > 2") and evaluate("3 >= 3")
        assert evaluate("'a' < 'b'")

    def test_incomparable_types_raise(self):
        with pytest.raises(OclTypeError):
            evaluate("1 < 'a'")

    def test_equality_semantics(self):
        assert evaluate("1 = 1") and evaluate("1 <> 2")
        assert evaluate("'a' = 'a'")
        assert not evaluate("1 = true")
        assert evaluate("Sequence{1,2} = Sequence{1,2}")
        assert not evaluate("Sequence{1,2} = Sequence{2,1}")

    def test_boolean_connectives(self):
        assert evaluate("true and true")
        assert not evaluate("true and false")
        assert evaluate("false or true")
        assert evaluate("false implies false")
        assert evaluate("true xor false")
        assert not evaluate("true xor true")
        assert evaluate("not false")

    def test_short_circuit(self):
        # right side would fail if evaluated
        assert evaluate("false and (1 / 0 = 1)") is False
        assert evaluate("true or (1 / 0 = 1)") is True
        assert evaluate("false implies (1 / 0 = 1)") is True

    def test_non_boolean_condition_rejected(self):
        with pytest.raises(OclTypeError):
            evaluate("1 and true")
        with pytest.raises(OclTypeError):
            evaluate("if 3 then 1 else 2 endif")

    def test_if_and_let(self):
        assert evaluate("if 2 > 1 then 'y' else 'n' endif") == "y"
        assert evaluate("let x = 5 in x * x") == 25
        assert evaluate("let x = 2 in let y = 3 in x * y") == 6

    def test_unary_minus(self):
        assert evaluate("-3 + 5") == 2
        with pytest.raises(OclTypeError):
            evaluate("-'a'")


class TestStringsAndNumbers:
    def test_string_operations(self):
        assert evaluate("'ab'.concat('cd')") == "abcd"
        assert evaluate("'ab' + 'cd'") == "abcd"
        assert evaluate("'Hello'.toUpper()") == "HELLO"
        assert evaluate("'Hello'.toLower()") == "hello"
        assert evaluate("'hello'.size()") == 5
        assert evaluate("'hello'.substring(2, 4)") == "ell"
        assert evaluate("'hello'.indexOf('ll')") == 3
        assert evaluate("'hello'.indexOf('z')") == 0
        assert evaluate("'hello'.startsWith('he')")
        assert evaluate("'hello'.endsWith('lo')")
        assert evaluate("'hello'.contains('ell')")
        assert evaluate("'42'.toInteger()") == 42
        assert evaluate("'2.5'.toReal()") == 2.5

    def test_substring_bounds(self):
        with pytest.raises(OclEvaluationError):
            evaluate("'abc'.substring(0, 2)")
        with pytest.raises(OclEvaluationError):
            evaluate("'abc'.substring(2, 9)")

    def test_to_integer_failure(self):
        with pytest.raises(OclEvaluationError):
            evaluate("'xx'.toInteger()")

    def test_number_operations(self):
        assert evaluate("(-3).abs()") == 3
        assert evaluate("(2.7).floor()") == 2
        assert evaluate("(2.5).round()") == 3
        assert evaluate("(2).max(5)") == 5
        assert evaluate("(2).min(5)") == 2
        assert evaluate("(2).toString()") == "2"

    def test_unknown_operation_raises(self):
        with pytest.raises(OclNameError):
            evaluate("'x'.frobnicate()")


class TestCollections:
    def test_size_and_emptiness(self):
        assert evaluate("Sequence{1,2,3}->size()") == 3
        assert evaluate("Sequence{}->isEmpty()")
        assert evaluate("Sequence{1}->notEmpty()")

    def test_membership(self):
        assert evaluate("Sequence{1,2}->includes(2)")
        assert evaluate("Sequence{1,2}->excludes(3)")
        assert evaluate("Sequence{1,2,3}->includesAll(Sequence{1,3})")
        assert evaluate("Sequence{1,2}->excludesAll(Sequence{3,4})")
        assert evaluate("Sequence{1,2,2}->count(2)") == 2

    def test_positional(self):
        assert evaluate("Sequence{'a','b'}->first()") == "a"
        assert evaluate("Sequence{'a','b'}->last()") == "b"
        assert evaluate("Sequence{'a','b'}->at(2)") == "b"
        assert evaluate("Sequence{'a','b'}->indexOf('b')") == 2
        assert evaluate("Sequence{}->first()") is UNDEFINED

    def test_at_out_of_bounds(self):
        with pytest.raises(OclEvaluationError):
            evaluate("Sequence{1}->at(0)")
        with pytest.raises(OclEvaluationError):
            evaluate("Sequence{1}->at(2)")

    def test_set_semantics(self):
        assert evaluate("Set{1,1,2}->size()") == 2
        assert evaluate("Sequence{1,1,2}->asSet()->size()") == 2
        assert evaluate("Set{2,1}->asSequence()") == [2, 1]

    def test_construction_operations(self):
        assert evaluate("Sequence{1}->including(2)") == [1, 2]
        assert evaluate("Sequence{1,2,1}->excluding(1)") == [2]
        assert evaluate("Sequence{1}->union(Sequence{2})") == [1, 2]
        assert evaluate("Sequence{1,2,3}->intersection(Sequence{2,3,4})") == [2, 3]
        assert evaluate("Sequence{1,2}->reverse()") == [2, 1]
        assert evaluate("Sequence{2}->prepend(1)") == [1, 2]
        assert evaluate("Sequence{1}->append(2)") == [1, 2]

    def test_flatten(self):
        assert evaluate("Sequence{Sequence{1,2}, Sequence{3}}->flatten()") == [1, 2, 3]

    def test_sum(self):
        assert evaluate("Sequence{1,2,3}->sum()") == 6
        assert evaluate("Sequence{}->sum()") == 0
        with pytest.raises(OclTypeError):
            evaluate("Sequence{'a'}->sum()")

    def test_singleton_wrapping(self):
        assert evaluate("5->size()") == 1
        assert evaluate("null->size()") == 0

    def test_unknown_collection_op(self):
        with pytest.raises(OclNameError):
            evaluate("Sequence{1}->transmogrify()")


class TestIterators:
    def test_select_reject_collect(self):
        assert evaluate("Sequence{1,2,3,4}->select(x | x > 2)") == [3, 4]
        assert evaluate("Sequence{1,2,3,4}->reject(x | x > 2)") == [1, 2]
        assert evaluate("Sequence{1,2}->collect(x | x * 10)") == [10, 20]

    def test_collect_flattens(self):
        assert evaluate(
            "Sequence{1,2}->collect(x | Sequence{x, x})"
        ) == [1, 1, 2, 2]

    def test_quantifiers(self):
        assert evaluate("Sequence{1,2}->forAll(x | x > 0)")
        assert not evaluate("Sequence{1,-1}->forAll(x | x > 0)")
        assert evaluate("Sequence{1,2}->exists(x | x = 2)")
        assert not evaluate("Sequence{}->exists(x | true)")
        assert evaluate("Sequence{}->forAll(x | false)")

    def test_one_and_any(self):
        assert evaluate("Sequence{1,2,3}->one(x | x = 2)")
        assert not evaluate("Sequence{2,2}->one(x | x = 2)")
        assert evaluate("Sequence{1,2,3}->any(x | x > 1)") == 2
        assert evaluate("Sequence{1}->any(x | x > 9)") is UNDEFINED

    def test_is_unique(self):
        assert evaluate("Sequence{1,2,3}->isUnique(x | x)")
        assert not evaluate("Sequence{1,2,1}->isUnique(x | x)")

    def test_sorted_by(self):
        assert evaluate("Sequence{3,1,2}->sortedBy(x | x)") == [1, 2, 3]
        assert evaluate("Sequence{'bb','a'}->sortedBy(s | s.size())") == ["a", "bb"]

    def test_sorted_by_incomparable(self):
        with pytest.raises(OclTypeError):
            evaluate("Sequence{1,'a'}->sortedBy(x | x)")

    def test_two_variable_forall(self):
        assert evaluate("Sequence{1,2,3}->forAll(a, b | a + b > 1)")
        assert not evaluate("Sequence{1,2}->forAll(a, b | a <> b)")

    def test_nested_iterators(self):
        result = evaluate(
            "Sequence{1,2}->collect(x | Sequence{10,20}->select(y | y > 10 * x))"
        )
        assert result == [20]

    def test_non_boolean_body_rejected(self):
        with pytest.raises(OclTypeError):
            evaluate("Sequence{1}->select(x | x)")


@pytest.fixture()
def zoo():
    res, model = new_model("zoo")
    prims = ensure_primitives(model)
    pkg = add_package(model, "animals")
    animal = add_class(pkg, "Animal", abstract=True)
    add_attribute(animal, "legs", prims["Integer"])
    lion = add_class(pkg, "Lion", superclasses=[animal])
    add_operation(lion, "roar")
    snake = add_class(pkg, "Snake", superclasses=[animal])
    ctx = OclContext(resource=res, types=types_from_package(UML.package))
    return {"res": res, "ctx": ctx, "lion": lion, "snake": snake, "animal": animal}


class TestModelNavigation:
    def test_all_instances(self, zoo):
        assert evaluate("Class.allInstances()->size()", zoo["ctx"]) == 3

    def test_all_instances_unknown_type(self, zoo):
        with pytest.raises(OclNameError):
            evaluate("Nothing.allInstances()", zoo["ctx"])

    def test_all_instances_without_resource(self):
        with pytest.raises(OclEvaluationError):
            evaluate("Class.allInstances()", OclContext(types=types_from_package(UML.package)))

    def test_navigation_and_implicit_collect(self, zoo):
        names = evaluate(
            "Class.allInstances()->collect(c | c.superclasses)->collect(s | s.name)",
            zoo["ctx"],
        )
        assert names == ["Animal", "Animal"]
        # implicit collect through navigation on a collection
        names2 = evaluate("Class.allInstances().superclasses.name", zoo["ctx"])
        assert names2 == ["Animal", "Animal"]

    def test_self_binding(self, zoo):
        assert evaluate("self.name", zoo["ctx"], self_object=zoo["lion"]) == "Lion"

    def test_self_unbound_raises(self, zoo):
        with pytest.raises(OclNameError):
            evaluate("self.name", zoo["ctx"])

    def test_implicit_self_feature(self, zoo):
        assert evaluate("name", zoo["ctx"], self_object=zoo["lion"]) == "Lion"

    def test_unknown_feature_raises(self, zoo):
        with pytest.raises(OclNameError):
            evaluate("self.wings", zoo["ctx"], self_object=zoo["lion"])

    def test_undefined_navigation(self, zoo):
        # lion has no documentation -> undefined; navigating further stays undefined
        assert evaluate(
            "self.documentation.oclIsUndefined()", zoo["ctx"], self_object=zoo["lion"]
        )

    def test_equality_with_null(self, zoo):
        assert evaluate("self.documentation = null", zoo["ctx"], self_object=zoo["lion"])

    def test_type_reflection(self, zoo):
        ctx, lion = zoo["ctx"], zoo["lion"]
        assert evaluate("self.oclIsKindOf(Classifier)", ctx, self_object=lion)
        assert evaluate("self.oclIsTypeOf(Class)", ctx, self_object=lion)
        assert not evaluate("self.oclIsTypeOf(Classifier)", ctx, self_object=lion)
        assert evaluate("self.oclAsType(Classifier).name", ctx, self_object=lion) == "Lion"

    def test_ocl_as_type_invalid_cast(self, zoo):
        with pytest.raises(OclTypeError):
            evaluate("self.oclAsType(Operation)", zoo["ctx"], self_object=zoo["lion"])

    def test_ocl_container(self, zoo):
        assert (
            evaluate("self.oclContainer().name", zoo["ctx"], self_object=zoo["lion"])
            == "animals"
        )

    def test_variables_injected(self, zoo):
        result = evaluate(
            "Class.allInstances()->select(c | wanted->includes(c.name))->size()",
            zoo["ctx"],
            wanted=["Lion", "Snake"],
        )
        assert result == 2

    def test_unknown_variable(self, zoo):
        with pytest.raises(OclNameError):
            evaluate("mystery + 1", zoo["ctx"])

    def test_condition_shaped_query(self, zoo):
        ok = evaluate(
            "Class.allInstances()->forAll(c | c.isAbstract or "
            "c.superclasses->notEmpty())",
            zoo["ctx"],
        )
        assert ok
