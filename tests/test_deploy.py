"""Declarative deployment: spec round-trip, compile, diff/apply, narrowing."""

import json
import threading

import pytest

from repro.deploy import (
    ApplicationSpec,
    ConcernSpec,
    DeploymentCompiler,
    DeploymentDiff,
    DeploymentSpec,
    FaultCampaignSpec,
    FaultSiteSpec,
    NodeSpec,
    PartitionSpec,
    QoSProfile,
    ReplicationSpec,
    ServantSpec,
    UserSpec,
    apply as apply_spec,
    register_application,
)
from repro.errors import DeploymentError, ReproError
from repro.middleware.envelope import QoS
from repro.runtime import FederationClient, RunConfig, ScenarioRunner
from repro.runtime.scenarios import get_scenario


def run_config(**overrides) -> RunConfig:
    defaults = dict(
        scenario="banking",
        nodes=2,
        clients=2,
        ops=40,
        seed=1,
        workers=2,
        concurrent=True,
        sim_latency_ms=0.0,
        real_latency_ms=0.0,
        entities_per_node=1,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


def banking_spec(**overrides) -> DeploymentSpec:
    """The banking scenario's declared spec (the canonical test spec)."""
    from dataclasses import replace

    config = run_config(
        **{
            k: overrides.pop(k)
            for k in ("nodes", "entities_per_node", "seed", "faults", "workers")
            if k in overrides
        }
    )
    spec = get_scenario("banking").deployment_spec(config)
    return replace(spec, **overrides) if overrides else spec


def tiny_spec(**overrides) -> DeploymentSpec:
    """A small hand-authored spec (no scenario involved)."""
    fields = dict(
        name="tiny",
        application=ApplicationSpec(
            name="bank",
            builder="scenario:banking",
            concerns=(
                ConcernSpec(
                    concern="distribution",
                    params={
                        "server_classes": ["Account", "Bank"],
                        "registry_prefix": "bank",
                    },
                ),
            ),
        ),
        nodes=(NodeSpec("node-0"), NodeSpec("node-1")),
        partitions=(
            PartitionSpec(
                key="p-0",
                servants=(
                    ServantSpec(
                        name="p-0/Account/0",
                        type_name="Account",
                        state={"number": "p-0/Account/0", "balance": 100.0},
                        read_only_ops=("getBalance",),
                    ),
                ),
            ),
            PartitionSpec(
                key="p-1",
                servants=(
                    ServantSpec(
                        name="p-1/Account/0",
                        type_name="Account",
                        state={"number": "p-1/Account/0", "balance": 100.0},
                        read_only_ops=("getBalance",),
                    ),
                ),
            ),
        ),
    )
    fields.update(overrides)
    return DeploymentSpec(**fields)


# ---------------------------------------------------------------------------
# spec layer: round-trip, digest, validation
# ---------------------------------------------------------------------------


class TestSpecRoundTrip:
    def test_json_round_trip_is_lossless(self):
        spec = banking_spec(
            replication=ReplicationSpec(count=1),
            qos_profiles=(QoSProfile("fast", timeout_ms=100.0, retries=2),),
            client_qos="fast",
        )
        wire = json.loads(json.dumps(spec.to_dict()))
        restored = DeploymentSpec.from_dict(wire)
        assert restored == spec

    def test_round_trip_through_json_text(self):
        spec = tiny_spec()
        assert DeploymentSpec.from_json(spec.to_json()) == spec

    def test_digest_is_stable_across_round_trip(self):
        spec = banking_spec()
        restored = DeploymentSpec.from_dict(spec.to_dict())
        assert restored.digest() == spec.digest()

    def test_digest_reacts_to_topology_changes(self):
        base = banking_spec(nodes=2)
        grown = banking_spec(nodes=3)
        assert base.digest() != grown.digest()

    def test_digest_ignores_advisory_owner_hint(self):
        from dataclasses import replace

        spec = tiny_spec()
        hinted = replace(
            spec,
            partitions=tuple(
                replace(partition, node="node-0")
                for partition in spec.partitions
            ),
        )
        assert hinted.digest() == spec.digest()
        # but the hint round-trips losslessly all the same
        assert DeploymentSpec.from_dict(hinted.to_dict()) == hinted

    def test_unsupported_format_rejected(self):
        data = tiny_spec().to_dict()
        data["format"] = "repro-deployment-spec/999"
        with pytest.raises(DeploymentError, match="unsupported spec format"):
            DeploymentSpec.from_dict(data)

    def test_scenario_specs_are_deterministic_per_config(self):
        first = get_scenario("banking_elastic").deployment_spec(run_config(nodes=3))
        second = get_scenario("banking_elastic").deployment_spec(run_config(nodes=3))
        assert first == second
        assert first.digest() == second.digest()


class TestSpecValidation:
    def test_valid_spec_passes(self):
        assert tiny_spec().problems() == []

    def test_unknown_node_in_partition(self):
        from dataclasses import replace

        spec = tiny_spec()
        spec = replace(
            spec,
            partitions=(replace(spec.partitions[0], node="node-99"),)
            + spec.partitions[1:],
        )
        with pytest.raises(DeploymentError, match="unknown node 'node-99'"):
            spec.validate()

    def test_replica_count_must_be_below_node_count(self):
        spec = tiny_spec(replication=ReplicationSpec(count=2))
        with pytest.raises(DeploymentError, match="smaller than the node count"):
            spec.validate()

    def test_duplicate_servant_names(self):
        from dataclasses import replace

        spec = tiny_spec()
        clash = replace(
            spec.partitions[1],
            servants=(
                replace(spec.partitions[1].servants[0], name="p-0/Account/0"),
            ),
        )
        # keep it under its own key too, so only the duplication fires
        bad = replace(
            spec,
            partitions=(
                spec.partitions[0],
                replace(clash, key="p-0"),
            ),
        )
        problems = "\n".join(bad.problems())
        assert "duplicate servant name 'p-0/Account/0'" in problems

    def test_duplicate_nodes_partitions_and_users(self):
        spec = tiny_spec(
            nodes=(NodeSpec("node-0"), NodeSpec("node-0")),
            users=(UserSpec("u", "pw"), UserSpec("u", "pw2")),
        )
        problems = "\n".join(spec.problems())
        assert "duplicate node name 'node-0'" in problems
        assert "duplicate user 'u'" in problems

    def test_servant_must_live_under_its_partition(self):
        from dataclasses import replace

        spec = tiny_spec()
        stray = replace(
            spec.partitions[0],
            servants=(
                replace(spec.partitions[0].servants[0], name="elsewhere/Account/0"),
            ),
        )
        bad = replace(spec, partitions=(stray,) + spec.partitions[1:])
        assert any("not under its partition" in p for p in bad.problems())

    def test_application_needs_exactly_one_source(self):
        spec = tiny_spec(
            application=ApplicationSpec(name="both", builder="x", model_xmi="y.xmi")
        )
        assert any("exactly one" in p for p in spec.problems())
        spec = tiny_spec(application=ApplicationSpec(name="neither"))
        assert any("exactly one" in p for p in spec.problems())

    def test_fault_probability_range_and_qos_references(self):
        spec = tiny_spec(
            faults=FaultCampaignSpec(
                sites=(FaultSiteSpec("bus.*", 1.5),), armed=True
            ),
            client_qos="missing",
        )
        problems = "\n".join(spec.problems())
        assert "out of [0, 1]" in problems
        assert "unknown QoS profile 'missing'" in problems

    def test_state_must_be_json_shaped(self):
        from dataclasses import replace

        spec = tiny_spec()
        bad_servant = replace(
            spec.partitions[0].servants[0], state={"balance": {1, 2}}
        )
        bad = replace(
            spec,
            partitions=(
                replace(spec.partitions[0], servants=(bad_servant,)),
            )
            + spec.partitions[1:],
        )
        assert any("not JSON-shaped" in p for p in bad.problems())


# ---------------------------------------------------------------------------
# compile layer
# ---------------------------------------------------------------------------


class TestCompiler:
    def test_compile_is_side_effect_free_and_ordered(self):
        spec = banking_spec(nodes=2)
        plan = DeploymentCompiler().compile(spec)
        kinds = [step.kind for step in plan.steps]
        assert kinds[0] == "application"
        assert kinds.index("node") < kinds.index("partition")
        assert "bootstrap plan" in plan.describe()

    def test_compile_rejects_invalid_spec(self):
        with pytest.raises(DeploymentError):
            DeploymentCompiler().compile(
                tiny_spec(replication=ReplicationSpec(count=5))
            )

    def test_compile_rejects_unknown_builder(self):
        spec = tiny_spec(
            application=ApplicationSpec(name="x", builder="no-such-builder")
        )
        with pytest.raises(DeploymentError, match="unknown application builder"):
            DeploymentCompiler().compile(spec)

    def test_registered_builder_is_resolved(self):
        register_application(
            "test:banking-pim", get_scenario("banking").build_pim
        )
        spec = tiny_spec(
            application=ApplicationSpec(
                name="bank",
                builder="test:banking-pim",
                concerns=tiny_spec().application.concerns,
            )
        )
        plan = DeploymentCompiler().compile(spec)
        assert plan.steps[0].kind == "application"

    def test_deploy_materializes_the_spec(self):
        spec = banking_spec(nodes=2, replication=ReplicationSpec(count=1))
        federation = DeploymentCompiler().deploy(spec)
        try:
            assert sorted(federation.nodes) == ["node-0", "node-1"]
            assert federation.spec is spec
            assert federation.app_package is not None
            # every declared servant is live and resolvable
            for _key, servant_spec in spec.servants():
                servant = federation.servant(servant_spec.name)
                assert type(servant).__name__ == servant_spec.type_name
            # initial state came from the spec
            account = spec.partitions[0].servants[1]
            assert federation.servant(account.name).balance == 1000.0
            # read-only classification reached every node's bus
            for node in federation.nodes.values():
                assert "getBalance" in node.services.bus.read_only_ops["Account"]
            # replication live
            assert federation.replicas is not None
            assert federation.replicas.count == 1
            # a routed transactional call works (app + users deployed)
            client = FederationClient(federation, "alice", "pw")
            source = federation.ref(spec.partitions[0].servants[1].name)
            target = federation.ref(spec.partitions[0].servants[2].name)
            assert (
                client.call(
                    spec.partitions[0].servants[0].name,
                    "transfer",
                    source,
                    target,
                    25.0,
                )
                is True
            )
        finally:
            federation.shutdown()

    def test_deploy_binding_qos_default_applies(self):
        from dataclasses import replace

        spec = tiny_spec(
            qos_profiles=(QoSProfile("sturdy", retries=2),),
        )
        sturdy = replace(
            spec.partitions[0].servants[0], qos="sturdy"
        )
        spec = replace(
            spec,
            partitions=(
                replace(spec.partitions[0], servants=(sturdy,)),
            )
            + spec.partitions[1:],
        )
        federation = DeploymentCompiler().deploy(spec)
        try:
            declared = federation.qos_for(sturdy.name)
            assert declared == QoS(retries=2)
            assert federation.qos_for(spec.partitions[1].servants[0].name) is None
            # the declared retry budget absorbs a transport fault the
            # caller never opted into handling
            federation.faults.fail_next("federation.route")
            assert federation.call(sturdy.name, "getBalance") == 100.0
        finally:
            federation.shutdown()

    def test_current_spec_converges_with_deployed_spec(self):
        spec = banking_spec(nodes=2)
        federation = DeploymentCompiler().deploy(spec)
        try:
            extracted = federation.current_spec()
            assert DeploymentDiff.between(extracted, spec).empty
            # and the extraction itself is a valid, serializable spec
            extracted.validate()
            DeploymentSpec.from_dict(extracted.to_dict())
        finally:
            federation.shutdown()

    def test_runner_builds_through_the_compiler(self):
        config = run_config(nodes=2, concurrent=False, workers=2)
        runner = ScenarioRunner("banking", config)
        assert config.spec_digest == runner.deployment.digest()
        federation = runner.build()
        try:
            assert federation.spec == runner.deployment
        finally:
            federation.shutdown()

    def test_result_digest_detects_topology_drift(self):
        # identical workloads on different topologies must not collide
        small = ScenarioRunner(
            "banking", run_config(nodes=1, concurrent=False)
        ).run()
        large = ScenarioRunner(
            "banking", run_config(nodes=3, concurrent=False)
        ).run()
        assert small.config["spec_digest"] != large.config["spec_digest"]
        assert small.to_dict()["config"]["spec_digest"] == small.config["spec_digest"]


# ---------------------------------------------------------------------------
# reconcile layer: diff -> ordered migration plan -> live apply
# ---------------------------------------------------------------------------


class TestDiffAndPlan:
    def test_converged_specs_produce_empty_plan(self):
        spec = banking_spec()
        diff = DeploymentDiff.between(spec, spec)
        assert diff.empty
        assert diff.plan().empty

    def test_join_is_ordered_before_retire(self):
        """A node swap must never strand a partition: additions first."""
        from dataclasses import replace

        base = tiny_spec()
        swapped = replace(
            base, nodes=(NodeSpec("node-1"), NodeSpec("node-2"))
        )
        plan = DeploymentDiff.between(base, swapped).plan()
        kinds = [action.kind for action in plan.actions]
        assert kinds.index("join") < kinds.index("retire")

    def test_replication_raise_ordered_after_join(self):
        from dataclasses import replace

        base = tiny_spec(replication=ReplicationSpec(count=1))
        target = replace(
            base,
            nodes=base.nodes + (NodeSpec("node-2"),),
            replication=ReplicationSpec(count=2),
        )
        plan = DeploymentDiff.between(base, target).plan()
        kinds = [action.kind for action in plan.actions]
        assert kinds.index("join") < kinds.index("set_replication")

    def test_single_node_swap_executes_live(self):
        """Retire-before-join would hit 'last node'; the plan must not."""
        from dataclasses import replace

        base = tiny_spec(nodes=(NodeSpec("node-0"),))
        federation = DeploymentCompiler().deploy(base)
        try:
            target = replace(base, nodes=(NodeSpec("node-1"),))
            plan = apply_spec(federation, target)
            assert [a.kind for a in plan.actions] == ["join", "retire"]
            assert sorted(federation.nodes) == ["node-1"]
            # state survived the double migration
            assert federation.call("p-0/Account/0", "getBalance") == 100.0
        finally:
            federation.shutdown()

    def test_changed_application_is_not_migratable(self):
        from dataclasses import replace

        base = tiny_spec()
        changed = replace(
            base,
            application=replace(base.application, builder="scenario:auction"),
        )
        with pytest.raises(DeploymentError, match="redeploy"):
            DeploymentDiff.between(base, changed)

    def test_changed_workers_is_not_migratable(self):
        from dataclasses import replace

        base = tiny_spec()
        changed = replace(base, nodes=(NodeSpec("node-0", workers=4),) + base.nodes[1:])
        with pytest.raises(DeploymentError, match="workers"):
            DeploymentDiff.between(base, changed)

    def test_replication_cannot_be_lowered(self):
        from dataclasses import replace

        base = tiny_spec(replication=ReplicationSpec(count=1))
        lowered = replace(base, replication=ReplicationSpec(count=0))
        with pytest.raises(DeploymentError, match="cannot be lowered"):
            DeploymentDiff.between(base, lowered)

    def test_servant_type_change_is_not_migratable(self):
        from dataclasses import replace

        base = tiny_spec()
        mutated = replace(
            base,
            partitions=(
                replace(
                    base.partitions[0],
                    servants=(
                        replace(
                            base.partitions[0].servants[0], type_name="Bank"
                        ),
                    ),
                ),
            )
            + base.partitions[1:],
        )
        with pytest.raises(DeploymentError, match="changed type"):
            DeploymentDiff.between(base, mutated)

    def test_servant_addition_binds_on_the_live_federation(self):
        from dataclasses import replace

        base = tiny_spec()
        federation = DeploymentCompiler().deploy(base)
        try:
            grown = replace(
                base,
                partitions=base.partitions
                + (
                    PartitionSpec(
                        key="p-9",
                        servants=(
                            ServantSpec(
                                name="p-9/Account/0",
                                type_name="Account",
                                state={"number": "p-9/Account/0", "balance": 7.0},
                            ),
                        ),
                    ),
                ),
            )
            plan = apply_spec(federation, grown)
            assert any(a.kind == "bind_servants" for a in plan.actions)
            assert federation.call("p-9/Account/0", "getBalance") == 7.0
            # removal unbinds again
            plan = apply_spec(federation, base)
            assert any(a.kind == "unbind_servants" for a in plan.actions)
            with pytest.raises(ReproError):
                federation.call("p-9/Account/0", "getBalance")
        finally:
            federation.shutdown()

    def test_narrowed_read_only_classification_takes_effect(self):
        """Reclassifying an op as mutating must actually clear it (a
        merge would keep skipping its replication syncs) and converge."""
        from dataclasses import replace

        base = tiny_spec(replication=ReplicationSpec(count=1))
        federation = DeploymentCompiler().deploy(base)
        try:
            narrowed = replace(
                base,
                partitions=tuple(
                    replace(
                        partition,
                        servants=tuple(
                            replace(servant, read_only_ops=())
                            for servant in partition.servants
                        ),
                    )
                    for partition in base.partitions
                ),
            )
            plan = apply_spec(federation, narrowed)
            marks = [a for a in plan.actions if a.kind == "mark_read_only"]
            assert len(marks) == 1  # one per changed *type*, deduped
            assert federation.read_only_ops["Account"] == frozenset()
            for node in federation.nodes.values():
                assert node.services.bus.read_only_ops["Account"] == frozenset()
            # the reclassified op now syncs again
            synced_before = federation.replicas.stats()["syncs"]
            federation.call("p-0/Account/0", "getBalance")
            assert federation.replicas.stats()["syncs"] > synced_before
            assert DeploymentDiff.between(
                federation.current_spec(), narrowed
            ).empty
        finally:
            federation.shutdown()

    def test_qos_change_is_diffed_and_applied(self):
        from dataclasses import replace

        base = tiny_spec(qos_profiles=(QoSProfile("plan", retries=1),))
        base = replace(
            base,
            partitions=(
                replace(
                    base.partitions[0],
                    servants=(
                        replace(base.partitions[0].servants[0], qos="plan"),
                    ),
                ),
            )
            + base.partitions[1:],
        )
        federation = DeploymentCompiler().deploy(base)
        try:
            assert federation.qos_for("p-0/Account/0") == QoS(retries=1)
            raised = replace(
                base, qos_profiles=(QoSProfile("plan", retries=5),)
            )
            diff = DeploymentDiff.between(federation.current_spec(), raised)
            assert diff.qos_changed and not diff.empty
            plan = apply_spec(federation, raised)
            assert any(a.kind == "set_binding_qos" for a in plan.actions)
            assert federation.qos_for("p-0/Account/0") == QoS(retries=5)
            assert DeploymentDiff.between(
                federation.current_spec(), raised
            ).empty
        finally:
            federation.shutdown()

    def test_added_user_is_provisioned_and_removal_is_refused(self):
        from dataclasses import replace

        base = tiny_spec(users=(UserSpec("alice", "pw", ("teller",)),))
        federation = DeploymentCompiler().deploy(base)
        try:
            grown = replace(
                base,
                users=base.users + (UserSpec("bob", "pw2", ("teller",)),),
            )
            plan = apply_spec(federation, grown)
            assert any(a.kind == "add_user" for a in plan.actions)
            bob = FederationClient(federation, "bob", "pw2")
            assert bob.call("p-0/Account/0", "getBalance") == 100.0
            with pytest.raises(DeploymentError, match="redeploy"):
                apply_spec(federation, base)  # user removal refused
        finally:
            federation.shutdown()

    def test_transport_parameter_changes_are_refused(self):
        from dataclasses import replace

        base = tiny_spec()
        with pytest.raises(DeploymentError, match="sim_latency_ms"):
            DeploymentDiff.between(base, replace(base, sim_latency_ms=9.0))

    def test_extracted_spec_stays_valid_after_fault_reconfiguration(self):
        from dataclasses import replace

        base = tiny_spec(
            faults=FaultCampaignSpec(
                sites=(FaultSiteSpec("bus.*", 0.02),), armed=True
            )
        )
        federation = DeploymentCompiler().deploy(base)
        try:
            louder = replace(
                base,
                faults=FaultCampaignSpec(
                    sites=(FaultSiteSpec("bus.*", 0.05),), armed=True
                ),
            )
            apply_spec(federation, louder)
            extracted = federation.current_spec()
            extracted.validate()  # no duplicate fault sites (last wins)
            assert DeploymentDiff.between(extracted, louder).empty
        finally:
            federation.shutdown()

    def test_fault_site_changes_apply(self):
        from dataclasses import replace

        base = tiny_spec()
        federation = DeploymentCompiler().deploy(base)
        try:
            noisy = replace(
                base,
                faults=FaultCampaignSpec(
                    sites=(FaultSiteSpec("federation.route", 0.25),), armed=True
                ),
            )
            apply_spec(federation, noisy)
            assert ("federation.route", 0.25, {}) in [
                (site, probability, kwargs)
                for site, probability, kwargs in federation._fault_sites
            ]
        finally:
            federation.shutdown()


class TestLiveReconcileUnderLoad:
    def test_add_node_and_raise_replicas_with_zero_failed_calls(self):
        """The acceptance bar: a spec diff (add node + raise replica
        count) applied to a live federation converges with zero failed
        in-flight calls."""
        from dataclasses import replace

        spec = banking_spec(
            nodes=3,
            entities_per_node=2,
            replication=ReplicationSpec(count=1),
        )
        federation = DeploymentCompiler().deploy(spec)
        errors = []
        stop = threading.Event()

        accounts = [
            servant.name
            for _key, servant in spec.servants()
            if "/Account/" in servant.name
        ]

        def hammer(index: int) -> None:
            client = FederationClient(federation, "alice", "pw")
            i = 0
            try:
                while not stop.is_set():
                    name = accounts[(index + i) % len(accounts)]
                    client.call(name, "deposit", 1.0)
                    client.call(name, "getBalance")
                    i += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,), name=f"load-{i}")
            for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            target = replace(
                spec,
                name="banking-grown",
                nodes=spec.nodes + (NodeSpec("node-3", workers=2, seed=99),),
                replication=ReplicationSpec(count=2),
            )
            plan = apply_spec(federation, target)
            assert [a.kind for a in plan.actions] == ["join", "set_replication"]
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors, f"in-flight calls failed during reconcile: {errors!r}"
            assert sorted(federation.nodes) == [
                "node-0",
                "node-1",
                "node-2",
                "node-3",
            ]
            assert federation.replicas.count == 2
            drift = DeploymentDiff.between(federation.current_spec(), target)
            assert drift.empty, drift.describe()
        finally:
            stop.set()
            for thread in threads:
                if thread.is_alive():
                    thread.join()
            federation.shutdown()


# ---------------------------------------------------------------------------
# mutation narrowing: read-only routed calls skip the write-through sync
# ---------------------------------------------------------------------------


class TestWriteThroughNarrowing:
    def _deploy(self, **overrides):
        spec = tiny_spec(
            replication=ReplicationSpec(count=1), **overrides
        )
        return spec, DeploymentCompiler().deploy(spec)

    def test_read_only_calls_skip_sync(self):
        _spec, federation = self._deploy()
        try:
            replicas = federation.replicas
            synced_before = replicas.stats()["syncs"]
            for _ in range(5):
                federation.call("p-0/Account/0", "getBalance")
            stats = replicas.stats()
            assert stats["syncs"] == synced_before
            assert stats["skipped_syncs"] >= 5
        finally:
            federation.shutdown()

    def test_mutating_calls_still_sync(self):
        _spec, federation = self._deploy()
        try:
            replicas = federation.replicas
            synced_before = replicas.stats()["syncs"]
            federation.call("p-0/Account/0", "deposit", 10.0)
            assert replicas.stats()["syncs"] > synced_before
        finally:
            federation.shutdown()

    def test_unclassified_types_always_sync(self):
        from dataclasses import replace

        spec = tiny_spec(replication=ReplicationSpec(count=1))
        spec = replace(
            spec,
            partitions=tuple(
                replace(
                    partition,
                    servants=tuple(
                        replace(servant, read_only_ops=())
                        for servant in partition.servants
                    ),
                )
                for partition in spec.partitions
            ),
        )
        federation = DeploymentCompiler().deploy(spec)
        try:
            synced_before = federation.replicas.stats()["syncs"]
            federation.call("p-0/Account/0", "getBalance")
            # no classification -> reads count as potential mutations
            assert federation.replicas.stats()["syncs"] > synced_before
        finally:
            federation.shutdown()

    def test_kill_after_read_only_tail_still_captures_last_write(self):
        """The narrowing regression bar: a standby promoted after a kill
        must hold the last write even when every call after that write
        was read-only (and therefore skipped its sync)."""
        _spec, federation = self._deploy()
        try:
            name = "p-0/Account/0"
            owner = federation.naming.owner_of("p-0")
            federation.call(name, "deposit", 41.0)  # the last write
            for _ in range(8):  # read-only tail: all syncs skipped
                federation.call(name, "getBalance")
            federation.kill(owner)
            federation.reconcile()
            assert federation.call(name, "getBalance") == 141.0
        finally:
            federation.shutdown()

    def test_kill_race_with_concurrent_writers_loses_no_effects(self):
        """Writers racing the kill: every deposit that *returned* must be
        present on the promoted standby (drain covers the final sync)."""
        spec = tiny_spec(replication=ReplicationSpec(count=1))
        federation = DeploymentCompiler().deploy(spec)
        try:
            name = "p-0/Account/0"
            victim = federation.naming.owner_of("p-0")
            applied = []
            applied_lock = threading.Lock()
            retry = QoS(retries=3)

            def writer(stop: threading.Event) -> None:
                while not stop.is_set():
                    try:
                        federation.call(name, "deposit", 1.0, qos=retry)
                    except ReproError:
                        continue
                    with applied_lock:
                        applied.append(1.0)

            stop = threading.Event()
            threads = [
                threading.Thread(target=writer, args=(stop,)) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            federation.kill(victim)
            federation.reconcile()
            stop.set()
            for thread in threads:
                thread.join()
            balance = federation.call(name, "getBalance")
            assert balance >= 100.0 + sum(applied), (
                f"promoted standby lost writes: balance {balance}, "
                f"acknowledged deposits {sum(applied)}"
            )
        finally:
            federation.shutdown()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestDeployCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(banking_spec(nodes=2).to_json())
        return str(path)

    def test_check_validates_and_prints_digest(self, spec_path, capsys):
        from repro.cli import main

        assert main(["deploy", "--spec", spec_path, "--check"]) == 0
        out = capsys.readouterr().out
        assert "spec is valid" in out
        assert banking_spec(nodes=2).digest() in out

    def test_check_rejects_invalid_spec(self, tmp_path, capsys):
        from repro.cli import main

        bad = banking_spec(nodes=2, replication=ReplicationSpec(count=9))
        path = tmp_path / "bad.json"
        path.write_text(bad.to_json())
        assert main(["deploy", "--spec", str(path), "--check"]) == 1
        assert "smaller than the node count" in capsys.readouterr().err

    def test_dry_run_prints_bootstrap_plan(self, spec_path, capsys):
        from repro.cli import main

        assert main(["deploy", "--spec", spec_path]) == 0
        assert "bootstrap plan" in capsys.readouterr().out

    def test_diff_prints_migration_plan(self, spec_path, tmp_path, capsys):
        from dataclasses import replace

        from repro.cli import main

        base = banking_spec(nodes=2)
        target = replace(
            base, nodes=base.nodes + (NodeSpec("node-2", workers=2),)
        )
        target_path = tmp_path / "target.json"
        target_path.write_text(target.to_json())
        assert main(["deploy", "--spec", spec_path, "--diff", str(target_path)]) == 0
        out = capsys.readouterr().out
        assert "+ node node-2" in out
        assert "join: join node 'node-2'" in out

    def test_apply_reconciles_and_converges(self, spec_path, tmp_path, capsys):
        from dataclasses import replace

        from repro.cli import main

        base = banking_spec(nodes=2)
        target = replace(
            base,
            name="grown",
            nodes=base.nodes + (NodeSpec("node-2", workers=2),),
            replication=ReplicationSpec(count=1),
        )
        target_path = tmp_path / "target.json"
        target_path.write_text(target.to_json())
        assert main(["deploy", "--spec", spec_path, "--apply", str(target_path)]) == 0
        assert "converged" in capsys.readouterr().out

    def test_simulate_describe_prints_spec_digest(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "simulate",
                    "--scenario",
                    "banking",
                    "--serial",
                    "--describe",
                ]
            )
            == 0
        )
        described = json.loads(capsys.readouterr().out)
        assert described["scenario"] == "banking"
        assert described["spec_digest"]
