"""Concern and ConcernSpace behaviour (the viewpoint side of Fig. 1)."""

import pytest

from repro.core import Concern
from repro.errors import TransformationError
from repro.ocl.evaluator import types_from_package
from repro.uml import UML, find_element

TYPES = types_from_package(UML.package)


class TestConcernSpace:
    def test_no_viewpoint_yields_empty_space(self, bank_resource):
        concern = Concern("blank")
        space = concern.concern_space(bank_resource, TYPES)
        assert len(space) == 0
        assert space.names() == []

    def test_viewpoint_selects_elements(self, bank_resource):
        concern = Concern(
            "ops",
            viewpoint="Class.allInstances()->collect(c | c.operations)",
        )
        space = concern.concern_space(bank_resource, TYPES)
        assert "withdraw" in space.names()
        assert len(space) == 4  # deposit, withdraw, getBalance, transfer

    def test_viewpoint_with_parameters(self, bank_resource):
        concern = Concern(
            "subset",
            viewpoint="Class.allInstances()->select(c | picks->includes(c.name))",
        )
        space = concern.concern_space(bank_resource, TYPES, {"picks": ["Bank"]})
        bank = find_element(bank_resource.roots[0], "accounts.Bank")
        assert bank in space
        account = find_element(bank_resource.roots[0], "accounts.Account")
        assert account not in space

    def test_scalar_viewpoint_rejected(self, bank_resource):
        concern = Concern("bad", viewpoint="1 + 1")
        with pytest.raises(TransformationError):
            concern.concern_space(bank_resource, TYPES)

    def test_non_object_results_filtered(self, bank_resource):
        concern = Concern(
            "names", viewpoint="Class.allInstances()->collect(c | c.name)"
        )
        space = concern.concern_space(bank_resource, TYPES)
        assert len(space) == 0  # strings are not model elements

    def test_iteration_protocol(self, bank_resource):
        concern = Concern("all", viewpoint="Class.allInstances()")
        space = concern.concern_space(bank_resource, TYPES)
        assert [e.name for e in space] == ["Account", "Bank"]
