"""Unit tests for dynamic instances: slots, MList, resources, delete."""

import pytest

from repro.errors import (
    ContainmentError,
    ModelError,
    MultiplicityError,
    TypeConformanceError,
)
from repro.metamodel import INTEGER, MetaClass, ModelResource
from repro.metamodel.notifications import NotificationKind


class TestScalarSlots:
    def test_set_get_unset(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        assert not b.is_set("title")
        b.set("title", "T")
        assert b.get("title") == "T" and b.is_set("title")
        b.unset("title")
        assert b.get("title") is None

    def test_attribute_style_access(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.title = "T"
        assert b.title == "T"

    def test_type_conformance_enforced(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(TypeConformanceError):
            Book().set("title", 42)

    def test_enum_values_validated(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book(title="T")
        b.genre = "science"
        with pytest.raises(TypeConformanceError):
            b.genre = "cooking"

    def test_enum_default_applied(self, library_metamodel):
        Book = library_metamodel["Book"]
        assert Book(title="T").genre == "fiction"

    def test_set_none_means_unset(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book(title="T")
        b.set("title", None)
        assert not b.is_set("title")

    def test_unknown_feature_raises(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(AttributeError):
            Book().nonexistent
        with pytest.raises(AttributeError):
            Book().nonexistent = 1

    def test_set_on_many_feature_rejected(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(ModelError):
            Book().set("tags", ["a"])

    def test_uuid_unique_and_stable(self, library_metamodel):
        Book = library_metamodel["Book"]
        a, b = Book(), Book()
        assert a.uuid != b.uuid
        assert a.uuid == a.uuid


class TestMList:
    def test_append_iter_len(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.append("x")
        b.tags.append("y")
        assert list(b.tags) == ["x", "y"]
        assert len(b.tags) == 2

    def test_insert_and_index(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.extend(["a", "c"])
        b.tags.insert(1, "b")
        assert list(b.tags) == ["a", "b", "c"]
        assert b.tags.index("b") == 1

    def test_remove_and_pop_and_clear(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.extend(["a", "b", "c"])
        b.tags.remove("b")
        assert list(b.tags) == ["a", "c"]
        assert b.tags.pop() == "c"
        b.tags.clear()
        assert len(b.tags) == 0

    def test_remove_missing_raises(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(ModelError):
            Book().tags.remove("nope")

    def test_pop_empty_raises(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(ModelError):
            Book().tags.pop()

    def test_setitem_replaces(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.extend(["a", "b"])
        b.tags[1] = "z"
        assert list(b.tags) == ["a", "z"]
        b.tags[-1] = "w"
        assert list(b.tags) == ["a", "w"]
        with pytest.raises(ModelError):
            b.tags[5] = "x"

    def test_slice_read(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.extend(["a", "b", "c"])
        assert b.tags[0] == "a"
        assert b.tags[1:] == ["b", "c"]

    def test_attribute_assignment_replaces_content(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags = ["a", "b"]
        b.tags = ["c"]
        assert list(b.tags) == ["c"]

    def test_type_checked_on_insert(self, library_metamodel):
        Book = library_metamodel["Book"]
        with pytest.raises(TypeConformanceError):
            Book().tags.append(42)

    def test_reference_collections_unique(self, library_metamodel):
        Book, Author = library_metamodel["Book"], library_metamodel["Author"]
        b, a = Book(), Author()
        b.authors.append(a)
        with pytest.raises(ModelError):
            b.authors.append(a)

    def test_attribute_collections_allow_duplicates(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.extend(["x", "x"])
        assert list(b.tags) == ["x", "x"]

    def test_upper_bound_enforced(self):
        c = MetaClass("C")
        c.add_attribute("pair", INTEGER, upper=2)
        obj = c()
        obj.pair.extend([1, 2])
        with pytest.raises(MultiplicityError):
            obj.pair.append(3)

    def test_equality_with_plain_lists(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        b.tags.extend(["a"])
        assert b.tags == ["a"]
        assert b.tags != ["b"]


class TestResource:
    def test_roots_and_all_contents(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s, b = Shelf(), Book(title="T")
        s.books.append(b)
        res = ModelResource("r")
        res.add_root(s)
        assert res.roots == (s,)
        assert list(res.all_contents()) == [s, b]
        assert b.resource is res

    def test_contained_object_cannot_be_root(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s, b = Shelf(), Book(title="T")
        s.books.append(b)
        res = ModelResource("r")
        with pytest.raises(ContainmentError):
            res.add_root(b)

    def test_remove_root(self, library_metamodel):
        Shelf = library_metamodel["Shelf"]
        s = Shelf()
        res = ModelResource("r")
        res.add_root(s)
        res.remove_root(s)
        assert res.roots == ()
        assert s.resource is None
        with pytest.raises(ModelError):
            res.remove_root(s)

    def test_root_moves_between_resources(self, library_metamodel):
        Shelf = library_metamodel["Shelf"]
        s = Shelf()
        r1, r2 = ModelResource("a"), ModelResource("b")
        r1.add_root(s)
        r2.add_root(s)
        assert r1.roots == () and r2.roots == (s,)

    def test_objects_of_and_find(self, library_metamodel):
        Shelf, Book, Novel = (
            library_metamodel["Shelf"],
            library_metamodel["Book"],
            library_metamodel["Novel"],
        )
        s = Shelf()
        b1, b2 = Book(title="A"), Novel(title="B")
        s.books.extend([b1, b2])
        res = ModelResource("r")
        res.add_root(s)
        assert list(res.objects_of(Book)) == [b1, b2]  # Novel conforms to Book
        assert list(res.objects_of(Novel)) == [b2]
        assert res.find(Book, title="B") is b2
        assert res.find(Book, title="Z") is None

    def test_by_uuid(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s, b = Shelf(), Book(title="T")
        s.books.append(b)
        res = ModelResource("r")
        res.add_root(s)
        assert res.by_uuid(b.uuid) is b
        assert res.by_uuid("nope") is None

    def test_purge_scrubs_dangling_references(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s = Shelf()
        b1, b2 = Book(title="A"), Book(title="B")
        s.books.extend([b1, b2])
        b1.sequel = b2  # unidirectional reference
        res = ModelResource("r")
        res.add_root(s)
        res.purge(b2)
        assert b1.sequel is None
        assert list(s.books) == [b1]


class TestDelete:
    def test_delete_detaches_and_severs_opposites(self, library_metamodel):
        Shelf, Book, Author = (
            library_metamodel["Shelf"],
            library_metamodel["Author"],
            library_metamodel["Author"],
        )
        Shelf = library_metamodel["Shelf"]
        Book = library_metamodel["Book"]
        Author = library_metamodel["Author"]
        s, b, a = Shelf(), Book(title="T"), Author(name="A")
        s.books.append(b)
        b.authors.append(a)
        b.delete()
        assert list(s.books) == []
        assert list(a.books) == []
        assert b.container is None

    def test_delete_root_leaves_resource(self, library_metamodel):
        Shelf = library_metamodel["Shelf"]
        s = Shelf()
        res = ModelResource("r")
        res.add_root(s)
        s.delete()
        assert res.roots == ()

    def test_delete_recurses_into_children(self, library_metamodel):
        Shelf, Book, Author = (
            library_metamodel["Shelf"],
            library_metamodel["Book"],
            library_metamodel["Author"],
        )
        s, b, a = Shelf(), Book(title="T"), Author(name="A")
        s.books.append(b)
        b.authors.append(a)
        s.delete()
        assert list(a.books) == []


class TestNotifications:
    def test_set_notification_payload(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book(title="old")
        events = []
        b.subscribe(events.append)
        b.title = "new"
        assert len(events) == 1
        n = events[0]
        assert n.kind is NotificationKind.SET
        assert (n.old, n.new) == ("old", "new")
        assert "old" in n.describe() and "new" in n.describe()

    def test_add_remove_notifications_carry_index(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        events = []
        b.subscribe(events.append)
        b.tags.append("x")
        b.tags.pop()
        kinds = [e.kind for e in events]
        assert kinds == [NotificationKind.ADD, NotificationKind.REMOVE]
        assert events[0].index == 0 and events[1].index == 0

    def test_resource_receives_nested_notifications(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s, b = Shelf(), Book(title="T")
        s.books.append(b)
        res = ModelResource("r")
        res.add_root(s)
        events = []
        res.subscribe(events.append)
        b.title = "U"
        assert len(events) == 1 and events[0].obj is b

    def test_unsubscribe_stops_delivery(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book()
        events = []
        observer = b.subscribe(events.append)
        b.unsubscribe(observer)
        b.title = "T"
        assert events == []

    def test_opposite_maintenance_emits_both_sides(self, library_metamodel):
        Book, Author = library_metamodel["Book"], library_metamodel["Author"]
        b, a = Book(), Author()
        events = []
        b.subscribe(events.append)
        a.subscribe(events.append)
        b.authors.append(a)
        touched = {id(e.obj) for e in events}
        assert touched == {id(b), id(a)}
