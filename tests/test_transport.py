"""Envelope/transport layer: futures, oneway, QoS, chains, pipelining."""

import threading

import pytest

from repro.errors import (
    InvocationTimeout,
    MiddlewareError,
    PipelineError,
    RemoteInvocationError,
    TransportError,
)
from repro.middleware import (
    DEFAULT_QOS,
    Envelope,
    FaultInjector,
    InProcessTransport,
    InterceptorChain,
    MessageBus,
    Orb,
    QoS,
    QueuedTransport,
    ReplyFuture,
    Request,
    SimClock,
    SimulatedNetworkTransport,
)
from repro.middleware.envelope import is_retryable


def make_envelope(qos=DEFAULT_QOS, **context):
    request = Request(
        object_id="obj-1", operation="op", args=[], kwargs={}, context=dict(context)
    )
    return Envelope(request=request, qos=qos)


# ---------------------------------------------------------------------------
# QoS + retry policy
# ---------------------------------------------------------------------------


class TestQoS:
    def test_defaults_are_synchronous_exactly_once(self):
        assert DEFAULT_QOS.oneway is False
        assert DEFAULT_QOS.retries == 0
        assert DEFAULT_QOS.timeout_ms is None

    def test_with_builds_variants(self):
        qos = DEFAULT_QOS.with_(retries=3, timeout_ms=100.0)
        assert (qos.retries, qos.timeout_ms) == (3, 100.0)
        assert DEFAULT_QOS.retries == 0  # frozen original untouched

    def test_only_bare_transport_faults_are_retryable(self):
        assert is_retryable(MiddlewareError("injected fault"))
        assert not is_retryable(RemoteInvocationError("app-level"))
        assert not is_retryable(ValueError("not ours"))

    def test_wire_rebuilt_bare_faults_are_not_retryable(self):
        # a bare MiddlewareError that crossed the wire-error conversion
        # means a servant dispatch was underway: never re-deliver
        from repro.middleware.bus import Response, _rebuild_exception

        rebuilt = _rebuild_exception(
            Response(1, error_type="MiddlewareError", error_message="nested fault")
        )
        assert type(rebuilt) is MiddlewareError
        assert not is_retryable(rebuilt)

    def test_retry_never_duplicates_effects_of_nested_faults(self):
        # servant mutates state, then a nested remote call hits a
        # transport fault: the outer retry budget must NOT re-run it
        from repro.runtime import Federation

        federation = Federation(seed=0)
        node = federation.add_node("node-x")
        key = next(
            f"k{i}" for i in range(100)
            if federation.node_for(f"k{i}").name == "node-x"
        )
        orb = node.services.orb

        class Inner:
            def ping(self):
                return "pong"

        faults = node.services.faults

        class Outer:
            def __init__(self):
                self.effects = 0

            def act(self):
                self.effects += 1  # effect BEFORE the nested hop
                faults.fail_next("bus.deliver")  # kill only the nested hop
                return orb.proxy("inner").ping()

        outer = Outer()
        node.bind(f"{key}/Outer/0", outer)
        orb.register(Inner(), name="inner")
        try:
            future = federation.call_async(
                f"{key}/Outer/0", "act", qos=QoS(retries=3)
            )
            # the outer delivery reaches the servant (effect applied),
            # then the *nested* hop faults — the error comes back
            # wire-rebuilt and must NOT consume the retry budget
            with pytest.raises(MiddlewareError):
                future.result(timeout_ms=5000)
            assert outer.effects == 1
        finally:
            federation.shutdown()


# ---------------------------------------------------------------------------
# ReplyFuture
# ---------------------------------------------------------------------------


class TestReplyFuture:
    def test_result_waits_for_completion(self):
        future = ReplyFuture()
        threading.Timer(0.02, lambda: future._complete(41)).start()
        assert future.result(timeout_ms=5000) == 41
        assert future.done()

    def test_timeout_raises_invocation_timeout(self):
        future = ReplyFuture(make_envelope())
        with pytest.raises(InvocationTimeout):
            future.result(timeout_ms=10)

    def test_qos_timeout_is_the_default(self):
        future = ReplyFuture(make_envelope(qos=QoS(timeout_ms=10.0)))
        with pytest.raises(InvocationTimeout):
            future.result()

    def test_failure_re_raised(self):
        future = ReplyFuture()
        future._fail(MiddlewareError("boom"))
        with pytest.raises(MiddlewareError, match="boom"):
            future.result(timeout_ms=100)

    def test_decode_runs_on_result(self):
        future = ReplyFuture(decode=lambda v: v * 2)
        future._complete(21)
        assert future.result(timeout_ms=100) == 42

    def test_done_callback_fires_once_even_if_registered_late(self):
        future = ReplyFuture()
        seen = []
        future.add_done_callback(lambda f: seen.append("early"))
        future._complete("x")
        future.add_done_callback(lambda f: seen.append("late"))
        assert seen == ["early", "late"]

    def test_double_completion_keeps_first_value(self):
        future = ReplyFuture()
        future._complete(1)
        future._complete(2)
        future._fail(MiddlewareError("ignored"))
        assert future.result(timeout_ms=100) == 1


# ---------------------------------------------------------------------------
# InterceptorChain
# ---------------------------------------------------------------------------


class TestInterceptorChain:
    def test_elements_run_in_order_around_terminal(self):
        chain = InterceptorChain()
        trace = []

        def element(tag):
            def run(envelope, proceed):
                trace.append(f"{tag}>")
                value = proceed()
                trace.append(f"<{tag}")
                return value

            return run

        chain.add("outer", element("a")).add("inner", element("b"))
        result = chain.execute(make_envelope(), lambda: trace.append("T") or "r")
        assert result == "r"
        assert trace == ["a>", "b>", "T", "<b", "<a"]

    def test_before_after_placement(self):
        chain = InterceptorChain()
        chain.add("b", lambda e, p: p())
        chain.add("a", lambda e, p: p(), before="b")
        chain.add("c", lambda e, p: p(), after="b")
        assert chain.names() == ["a", "b", "c"]

    def test_duplicate_and_unknown_names_rejected(self):
        chain = InterceptorChain()
        chain.add("x", lambda e, p: p())
        with pytest.raises(PipelineError, match="already"):
            chain.add("x", lambda e, p: p())
        with pytest.raises(PipelineError, match="no interceptor"):
            chain.remove("ghost")

    def test_remove_returns_element(self):
        chain = InterceptorChain()
        marker = lambda e, p: p()  # noqa: E731
        chain.add("x", marker)
        assert chain.remove("x") is marker
        assert not chain.has("x")

    def test_element_can_short_circuit(self):
        chain = InterceptorChain()
        chain.add("gate", lambda e, p: "cached")
        assert chain.execute(make_envelope(), lambda: "never") == "cached"


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class TestTransports:
    def test_in_process_runs_on_caller_thread(self):
        transport = InProcessTransport()
        caller = threading.current_thread().name
        future = transport.submit(
            make_envelope(), lambda env: threading.current_thread().name
        )
        assert future.result(timeout_ms=100) == caller

    def test_queued_runs_on_delivery_thread(self):
        transport = QueuedTransport(workers=1, name="t")
        try:
            future = transport.submit(
                make_envelope(), lambda env: threading.current_thread().name
            )
            name = future.result(timeout_ms=5000)
            assert name != threading.current_thread().name
            assert name.startswith("deliver-t")
        finally:
            transport.shutdown()

    def test_queued_preserves_fifo_order_with_one_worker(self):
        transport = QueuedTransport(workers=1)
        seen = []
        try:
            futures = [
                transport.submit(make_envelope(), lambda env, i=i: seen.append(i))
                for i in range(10)
            ]
            for future in futures:
                future.result(timeout_ms=5000)
            assert seen == list(range(10))
        finally:
            transport.shutdown()

    def test_drain_waits_for_in_flight_deliveries(self):
        transport = QueuedTransport(workers=2)
        gate = threading.Event()
        try:
            transport.submit(make_envelope(), lambda env: gate.wait(5))
            assert not transport.drain(timeout_s=0.05)
            gate.set()
            assert transport.drain(timeout_s=5)
            assert transport.stats()["delivered"] == 1
        finally:
            transport.shutdown()

    def test_shutdown_rejects_new_submissions(self):
        transport = QueuedTransport(workers=1)
        transport.shutdown()
        with pytest.raises(TransportError, match="shut down"):
            transport.submit(make_envelope(), lambda env: None)

    def test_retry_budget_retries_bare_transport_faults(self):
        transport = InProcessTransport()
        attempts = []

        def flaky(env):
            attempts.append(env.attempt)
            if len(attempts) < 3:
                raise MiddlewareError("injected fault")
            return "ok"

        future = transport.submit(make_envelope(qos=QoS(retries=2)), flaky)
        assert future.result(timeout_ms=100) == "ok"
        assert attempts == [0, 1, 2]

    def test_retry_budget_exhaustion_surfaces_fault(self):
        transport = InProcessTransport()

        def always_fails(env):
            raise MiddlewareError("injected fault")

        future = transport.submit(make_envelope(qos=QoS(retries=1)), always_fails)
        with pytest.raises(MiddlewareError):
            future.result(timeout_ms=100)

    def test_application_errors_never_retried(self):
        transport = InProcessTransport()
        attempts = []

        def app_error(env):
            attempts.append(1)
            raise RemoteInvocationError("no such operation")

        future = transport.submit(make_envelope(qos=QoS(retries=5)), app_error)
        with pytest.raises(RemoteInvocationError):
            future.result(timeout_ms=100)
        assert len(attempts) == 1

    def test_simulated_network_charges_clock_both_hops(self):
        clock = SimClock()
        transport = SimulatedNetworkTransport(
            InProcessTransport(), clock, sim_latency_ms=2.0
        )
        future = transport.submit(make_envelope(), lambda env: clock.now())
        at_delivery = future.result(timeout_ms=100)
        assert at_delivery == 2.0  # request hop charged before the handler
        assert clock.now() == 4.0  # reply hop charged after


# ---------------------------------------------------------------------------
# Bus + ORB on the envelope path
# ---------------------------------------------------------------------------


class TestBusEnvelopePath:
    def test_bus_chain_has_the_unified_elements(self):
        orb = Orb()
        assert orb.bus.chain.names() == ["faults", "latency", "stats"]

    def test_client_interceptors_run_once_per_logical_call_caller_thread(self):
        orb = Orb()

        class S:
            def op(self):
                return "ok"

        orb.register(S(), name="s")
        seen = []
        orb.client_interceptors.append(
            lambda req: seen.append(threading.current_thread().name)
        )
        orb.bus.faults.fail_next("bus.deliver", count=2)
        future = orb.proxy("s").op.async_(qos=QoS(retries=2))
        assert future.result(timeout_ms=5000) == "ok"
        # two faulted attempts + one success, but ONE interceptor run,
        # on the issuing thread
        assert seen == [threading.current_thread().name]
        orb.bus.shutdown()

    def test_client_interceptors_do_not_cross_orbs_on_a_shared_bus(self):
        bus = MessageBus()
        orb_a = Orb(bus)
        orb_b = Orb(bus)

        class S:
            def op(self):
                return "ok"

        servant = S()
        ref = orb_a.register(servant)
        orb_b._refs_by_identity[id(servant)] = ref  # share the servant
        tagged = []
        orb_a.client_interceptors.append(lambda req: tagged.append("a"))
        orb_b.invoke(ref, "op", (), {})
        assert tagged == []  # b's calls never run a's interceptors
        orb_a.invoke(ref, "op", (), {})
        assert tagged == ["a"]

    def test_latency_charged_per_delivery_two_hops(self):
        orb = Orb()

        class S:
            def op(self):
                return 1

        orb.register(S(), name="s")
        before = orb.bus.clock.now()
        orb.proxy("s").op()
        assert orb.bus.clock.now() == before + 2 * orb.bus.latency_ms

    def test_transport_fault_raises_while_servant_error_is_wire_error(self):
        orb = Orb()

        class S:
            def op(self):
                raise ValueError("app boom")

        orb.register(S(), name="s")
        proxy = orb.proxy("s")
        with pytest.raises(RemoteInvocationError, match="app boom"):
            proxy.op()
        orb.bus.faults.fail_next("bus.deliver")
        with pytest.raises(MiddlewareError):
            proxy.op()

    def test_async_invocation_with_retries_survives_scripted_fault(self):
        orb = Orb()

        class S:
            def op(self):
                return "fine"

        orb.register(S(), name="s")
        orb.bus.faults.fail_next("bus.deliver", count=2)
        future = orb.proxy("s").op.async_(qos=QoS(retries=2))
        assert future.result(timeout_ms=5000) == "fine"
        orb.bus.shutdown()

    def test_oneway_is_at_most_once_under_faults(self):
        orb = Orb()
        effects = []

        class S:
            def op(self):
                effects.append(1)

        orb.register(S(), name="s")
        proxy = orb.proxy("s")
        orb.bus.faults.fail_next("bus.deliver", count=1)
        proxy.op.oneway()  # killed by the fault: no effect, no error
        proxy.op.oneway()  # delivered
        assert orb.bus.drain(timeout_s=5)
        assert effects == [1]
        orb.bus.shutdown()

    def test_pluggable_transport_on_the_bus(self):
        clock = SimClock()
        faults = FaultInjector()
        bus = MessageBus(
            clock,
            faults,
            latency_ms=0.0,
            transport=SimulatedNetworkTransport(
                InProcessTransport(), clock, sim_latency_ms=5.0
            ),
        )
        orb = Orb(bus)

        class S:
            def op(self):
                return "ok"

        orb.register(S(), name="s")
        assert orb.proxy("s").op() == "ok"
        assert clock.now() == 10.0  # the network transport charged both hops


# ---------------------------------------------------------------------------
# Federation pipelining
# ---------------------------------------------------------------------------


class TestFederationPipeline:
    def _federation(self):
        from repro.runtime import Federation

        federation = Federation(seed=3)
        federation.add_node("node-0", workers=2)
        federation.add_node("node-1", workers=2)

        class Counter:
            def __init__(self):
                self.value = 0

            def add(self, n):
                self.value += n
                return self.value

        servants = {}
        for k in range(6):
            partition = f"c-{k}"
            node = federation.node_for(partition)
            name = f"{partition}/Counter/0"
            servant = Counter()
            node.bind(name, servant)
            servants[name] = servant
        return federation, servants

    def test_batch_pays_one_route_check_per_node_group(self):
        federation, servants = self._federation()
        try:
            # grouping is by *consecutive* target node: order by owner so
            # each node's calls collapse into a single batch
            ordered = sorted(
                servants, key=lambda n: (federation.node_for(n).name, n)
            )
            with federation.pipeline(max_batch=16) as pipe:
                futures = [pipe.call(name, "add", 1) for name in ordered]
            for future in futures:
                assert future.result(timeout_ms=5000) == 1
            # 6 calls collapsed into one batch per distinct node
            n_nodes_used = len(
                {federation.node_for(name).name for name in servants}
            )
            assert sum(federation.batches.values()) == n_nodes_used
            assert all(s.value == 1 for s in servants.values())
        finally:
            federation.shutdown()

    def test_auto_flush_at_max_batch(self):
        federation, servants = self._federation()
        try:
            names = sorted(servants)
            one_node = [n for n in names if federation.node_for(n) is federation.node_for(names[0])]
            pipe = federation.pipeline(max_batch=1)
            future = pipe.call(one_node[0], "add", 5)
            # max_batch=1 flushes inside call(): no explicit flush needed
            assert future.result(timeout_ms=5000) == 5
        finally:
            federation.shutdown()

    def test_batch_transport_fault_fails_every_member(self):
        federation, servants = self._federation()
        try:
            names = sorted(servants)
            target_node = federation.node_for(names[0])
            group = [n for n in names if federation.node_for(n) is target_node]
            federation.faults.fail_next("federation.route")
            pipe = federation.pipeline(max_batch=len(group))
            futures = [pipe.call(name, "add", 1) for name in group]
            pipe.flush()
            for future in futures:
                with pytest.raises(MiddlewareError):
                    future.result(timeout_ms=5000)
            assert all(servants[name].value == 0 for name in group)
        finally:
            federation.shutdown()

    def test_nested_async_from_servant_cannot_deadlock(self):
        # a servant blocking on a nested async future must not queue it
        # behind the single delivery thread it is running on: nested
        # submissions from serving threads deliver inline
        from repro.runtime import Federation

        federation = Federation(seed=0, delivery_workers=1)
        node = federation.add_node("node-x", workers=1)
        key = next(
            f"k{i}" for i in range(100)
            if federation.node_for(f"k{i}").name == "node-x"
        )

        class Probe:
            def who(self):
                return "inner"

        class Relay:
            def relay(self):
                return federation.call_async(f"{key}/Probe/0", "who").result(
                    timeout_ms=5000
                )

        node.bind(f"{key}/Relay/0", Relay())
        node.bind(f"{key}/Probe/0", Probe())
        outer = federation.call_async(f"{key}/Relay/0", "relay")
        try:
            assert outer.result(timeout_ms=10_000) == "inner"
        finally:
            federation.shutdown()

    def test_member_error_does_not_poison_the_batch(self):
        federation, servants = self._federation()
        try:
            names = sorted(servants)
            target_node = federation.node_for(names[0])
            group = [n for n in names if federation.node_for(n) is target_node]
            assert len(group) >= 2
            pipe = federation.pipeline(max_batch=len(group) + 1)
            bad = pipe.call(group[0], "no_such_operation")
            good = pipe.call(group[1], "add", 3)
            pipe.flush()
            with pytest.raises(RemoteInvocationError):
                bad.result(timeout_ms=5000)
            assert good.result(timeout_ms=5000) == 3
        finally:
            federation.shutdown()


# ---------------------------------------------------------------------------
# banking_async scenario wiring
# ---------------------------------------------------------------------------


class TestAsyncScenario:
    def test_registered_and_described(self):
        from repro.runtime import SCENARIOS

        assert "banking_async" in SCENARIOS
        assert "oneway" in SCENARIOS["banking_async"].description

    def test_invariants_hold_with_and_without_faults(self):
        from repro.runtime import run_scenario

        quiet = run_scenario(
            "banking_async", nodes=2, clients=3, ops=60, seed=5, workers=2
        )
        assert quiet.passed, quiet.invariant_violations
        faulted = run_scenario(
            "banking_async", nodes=2, clients=3, ops=60, seed=5, workers=2, faults=True
        )
        assert faulted.passed, faulted.invariant_violations
        assert faulted.faults_injected, "campaign should have injected something"

    def test_sequential_mode_also_settles(self):
        from repro.runtime import run_scenario

        result = run_scenario(
            "banking_async",
            nodes=2,
            clients=2,
            ops=40,
            seed=9,
            concurrent=False,
            window=2,
        )
        assert result.passed, result.invariant_violations
