"""Middleware substrate tests: bus/RPC, naming, locks, txn, security, faults (S10)."""

import pytest

from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    DeadlockError,
    LockTimeoutError,
    MarshallingError,
    MiddlewareError,
    NamingError,
    NoTransactionError,
    RemoteInvocationError,
    SecurityError,
    TransactionAborted,
    TransactionError,
)
from repro.middleware import (
    Acl,
    AccessController,
    AuthenticationService,
    CredentialStore,
    FaultInjector,
    LockManager,
    LockMode,
    NamingService,
    ObjectSnapshotResource,
    Orb,
    SimClock,
    TransactionManager,
)
from repro.middleware.bus import ObjectRefData, marshal, wire_size
from repro.middleware.txn import Resource


class TestClock:
    def test_monotonic_advance(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_negative_rejected(self):
        with pytest.raises(MiddlewareError):
            SimClock().advance(-1)


class TestFaultInjector:
    def test_scripted_faults(self):
        faults = FaultInjector()
        faults.fail_next("x", 2)
        with pytest.raises(MiddlewareError):
            faults.check("x")
        with pytest.raises(MiddlewareError):
            faults.check("x")
        faults.check("x")  # exhausted
        assert faults.injected["x"] == 2

    def test_probability_deterministic_per_seed(self):
        def run(seed):
            faults = FaultInjector(seed)
            faults.configure("y", 0.5)
            outcomes = []
            for _ in range(40):
                try:
                    faults.check("y")
                    outcomes.append(0)
                except MiddlewareError:
                    outcomes.append(1)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_configure_validation(self):
        with pytest.raises(MiddlewareError):
            FaultInjector().configure("z", 1.5)
        with pytest.raises(MiddlewareError):
            FaultInjector().fail_next("z", 0)

    def test_clear(self):
        faults = FaultInjector()
        faults.fail_next("x")
        faults.clear("x")
        faults.check("x")

    def test_custom_exception_type(self):
        faults = FaultInjector()
        faults.configure("s", 1.0, exception=SecurityError, message="no")
        with pytest.raises(SecurityError):
            faults.check("s")


class TestMarshalling:
    def test_primitives_pass(self):
        for value in (1, 2.5, "s", True, None, b"raw"):
            assert marshal(value) == value

    def test_containers_deep_copied(self):
        original = {"xs": [1, {"y": 2}]}
        wire = marshal(original)
        wire["xs"].append(99)
        assert original == {"xs": [1, {"y": 2}]}

    def test_tuples_round_trip_as_tuples(self):
        # wire-type contract: containers keep their concrete type, so a
        # servant returning a tuple is observed as a tuple by the caller
        wire = marshal((1, [2, 3], {"k": (4,)}))
        assert wire == (1, [2, 3], {"k": (4,)})
        assert isinstance(wire, tuple)
        assert isinstance(wire[1], list)
        assert isinstance(wire[2]["k"], tuple)

    def test_lists_stay_lists(self):
        wire = marshal([1, (2, 3)])
        assert isinstance(wire, list)
        assert isinstance(wire[1], tuple)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(MarshallingError):
            marshal({1: "x"})

    def test_arbitrary_objects_rejected(self):
        with pytest.raises(MarshallingError):
            marshal(object())

    def test_registered_objects_become_refs(self):
        sentinel = object()
        ref = ObjectRefData("obj-1", "T")
        assert marshal(sentinel, lambda o: ref if o is sentinel else None) is ref

    def test_wire_size_positive(self):
        assert wire_size(["abc", 1, {"k": 2.0}]) > 0


class TestNaming:
    def test_bind_resolve_unbind(self):
        naming = NamingService()
        ref = ObjectRefData("obj-1", "T")
        naming.bind("services/a", ref)
        assert naming.resolve("services/a") is ref
        naming.unbind("services/a")
        with pytest.raises(NamingError):
            naming.resolve("services/a")

    def test_double_bind_rejected_rebind_allowed(self):
        naming = NamingService()
        r1, r2 = ObjectRefData("o1", "T"), ObjectRefData("o2", "T")
        naming.bind("x", r1)
        with pytest.raises(NamingError):
            naming.bind("x", r2)
        naming.rebind("x", r2)
        assert naming.resolve("x") is r2

    def test_name_normalization(self):
        naming = NamingService()
        naming.bind("a//b/", ObjectRefData("o", "T"))
        assert naming.resolve("/a/b") is not None

    def test_invalid_names(self):
        naming = NamingService()
        for bad in ("", "///", None):
            with pytest.raises(NamingError):
                naming.bind(bad, ObjectRefData("o", "T"))

    def test_list_with_prefix(self):
        naming = NamingService()
        naming.bind("svc/a", ObjectRefData("1", "T"))
        naming.bind("svc/b", ObjectRefData("2", "T"))
        naming.bind("other", ObjectRefData("3", "T"))
        assert naming.list("svc") == ["svc/a", "svc/b"]
        assert len(naming.list()) == 3

    def test_unbind_missing(self):
        with pytest.raises(NamingError):
            NamingService().unbind("ghost")


class Counter:
    def __init__(self):
        self.n = 0

    def incr(self, by=1):
        self.n += by
        return self.n

    def mutate(self, values):
        values.append(99)
        return values

    def boom(self):
        raise AccessDeniedError("nope")

    def _hidden(self):
        return "secret"


class TestRpc:
    def test_basic_invocation(self):
        orb = Orb()
        orb.register(Counter(), name="c")
        proxy = orb.proxy("c")
        assert proxy.incr() == 1
        assert proxy.incr(by=4) == 5

    def test_pass_by_value(self):
        orb = Orb()
        orb.register(Counter(), name="c")
        mine = [1]
        out = orb.proxy("c").mutate(mine)
        assert mine == [1] and out == [1, 99]

    def test_register_idempotent_per_object(self):
        orb = Orb()
        counter = Counter()
        r1 = orb.register(counter)
        r2 = orb.register(counter, name="alias")
        assert r1 is r2
        assert orb.proxy("alias").incr() == 1

    def test_library_exceptions_preserved(self):
        orb = Orb()
        orb.register(Counter(), name="c")
        with pytest.raises(AccessDeniedError):
            orb.proxy("c").boom()

    def test_unknown_operation(self):
        orb = Orb()
        orb.register(Counter(), name="c")
        with pytest.raises(RemoteInvocationError):
            orb.proxy("c").nothing()

    def test_private_operations_blocked(self):
        orb = Orb()
        ref = orb.register(Counter())
        with pytest.raises(RemoteInvocationError):
            orb.invoke(ref, "_hidden", (), {})

    def test_unregistered_object_id(self):
        orb = Orb()
        with pytest.raises(RemoteInvocationError):
            orb.proxy(ObjectRefData("ghost", "T")).anything()

    def test_latency_charged_to_clock(self):
        orb = Orb()
        orb.bus.latency_ms = 2.0
        orb.register(Counter(), name="c")
        orb.proxy("c").incr()
        assert orb.bus.clock.now() == 4.0  # request + reply

    def test_bus_statistics(self):
        orb = Orb()
        orb.register(Counter(), name="c")
        orb.proxy("c").incr()
        assert orb.bus.messages_delivered == 1
        assert orb.bus.bytes_transferred > 0

    def test_call_context_propagates_to_server(self):
        orb = Orb()
        seen = {}

        class Svc:
            def who(self):
                seen.update(orb.current_context())
                return True

        orb.register(Svc(), name="svc")
        with orb.call_context(credentials="tok-1"):
            orb.proxy("svc").who()
        assert seen.get("credentials") == "tok-1"
        assert seen.get("__dispatching__") is True
        assert orb.current_context() == {}

    def test_interceptors_run(self):
        orb = Orb()
        calls = []
        orb.client_interceptors.append(lambda req: calls.append(("client", req.operation)))
        orb.server_interceptors.append(lambda req, s: calls.append(("server", req.operation)))
        orb.register(Counter(), name="c")
        orb.proxy("c").incr()
        assert calls == [("client", "incr"), ("server", "incr")]

    def test_server_interceptor_can_deny(self):
        orb = Orb()

        def deny(request, servant):
            raise AccessDeniedError("blocked")

        orb.server_interceptors.append(deny)
        orb.register(Counter(), name="c")
        with pytest.raises(AccessDeniedError):
            orb.proxy("c").incr()

    def test_references_hydrate_to_proxies(self):
        orb = Orb()

        class Factory:
            def make(self):
                counter = Counter()
                orb.register(counter)
                return counter

        orb.register(Factory(), name="f")
        remote_counter = orb.proxy("f").make()
        assert remote_counter.incr() == 1

    def test_transport_fault_surfaces(self):
        orb = Orb()
        orb.register(Counter(), name="c")
        orb.bus.faults.fail_next("bus.deliver")
        with pytest.raises(MiddlewareError):
            orb.proxy("c").incr()


class TestLocks:
    def test_read_sharing(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.READ)
        locks.acquire("t2", "k", LockMode.READ)
        assert locks.holders_of("k") == {"t1", "t2"}

    def test_write_exclusive(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.WRITE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "k", LockMode.WRITE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "k", LockMode.READ)

    def test_reentrant_and_upgrade(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.READ)
        locks.acquire("t1", "k", LockMode.READ)
        locks.acquire("t1", "k", LockMode.WRITE)  # sole holder upgrade
        assert locks.mode_of("k") is LockMode.WRITE

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.READ)
        locks.acquire("t2", "k", LockMode.READ)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t1", "k", LockMode.WRITE)

    def test_release_all_frees(self):
        locks = LockManager()
        locks.acquire("t1", "a", LockMode.WRITE)
        locks.acquire("t1", "b", LockMode.WRITE)
        assert locks.release_all("t1") == 2
        locks.acquire("t2", "a", LockMode.WRITE)

    def test_deadlock_detected(self):
        locks = LockManager()
        locks.acquire("t1", "x", LockMode.WRITE)
        locks.acquire("t2", "y", LockMode.WRITE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "x", LockMode.WRITE)
        with pytest.raises(DeadlockError):
            locks.acquire("t1", "y", LockMode.WRITE)
        assert locks.deadlocks == 1

    def test_statistics(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.WRITE)
        try:
            locks.acquire("t2", "k", LockMode.WRITE)
        except LockTimeoutError:
            pass
        assert locks.grants >= 1 and locks.conflicts == 1


class Box:
    def __init__(self, value):
        self.value = value


class TestTransactions:
    def test_commit_applies(self):
        manager = TransactionManager()
        box = Box(1)
        with manager.transaction():
            manager.enlist_object(box)
            box.value = 2
        assert box.value == 2 and manager.commits == 1

    def test_rollback_restores_snapshot(self):
        manager = TransactionManager()
        box = Box(1)
        with pytest.raises(ValueError):
            with manager.transaction():
                manager.enlist_object(box)
                box.value = 99
                raise ValueError("fail")
        assert box.value == 1 and manager.aborts == 1

    def test_join_nesting_commits_once(self):
        manager = TransactionManager()
        box = Box(0)
        with manager.transaction():
            manager.enlist_object(box)
            box.value += 1
            with manager.transaction():
                box.value += 1
        assert box.value == 2 and manager.commits == 1

    def test_inner_failure_aborts_outer(self):
        manager = TransactionManager()
        box = Box(0)
        with pytest.raises(ValueError):
            with manager.transaction():
                manager.enlist_object(box)
                box.value = 5
                with manager.transaction():
                    raise ValueError("inner")
        assert box.value == 0
        assert manager.aborts == 1 and manager.commits == 0

    def test_rollback_only_marks(self):
        manager = TransactionManager()
        tx = manager.begin()
        tx.set_rollback_only("because")
        with pytest.raises(TransactionAborted):
            manager.commit(tx)
        assert manager.aborts == 1

    def test_enlist_outside_transaction(self):
        manager = TransactionManager()
        with pytest.raises(NoTransactionError):
            manager.enlist_object(Box(1))

    def test_prepare_vote_no_aborts_all(self):
        manager = TransactionManager()

        class VetoResource(Resource):
            def prepare(self):
                raise RuntimeError("vote no")

        box = Box(1)
        with pytest.raises(TransactionAborted):
            with manager.transaction() as tx:
                manager.enlist_object(box)
                box.value = 7
                tx.enlist(VetoResource())
        assert box.value == 1

    def test_injected_prepare_fault(self):
        manager = TransactionManager()
        manager.faults.fail_next("txn.prepare")
        box = Box(1)
        with pytest.raises(TransactionAborted):
            with manager.transaction():
                manager.enlist_object(box)
                box.value = 3
        assert box.value == 1

    def test_locks_released_after_commit(self):
        manager = TransactionManager()
        box = Box(1)
        with manager.transaction():
            manager.enlist_object(box)
        with manager.transaction():
            manager.enlist_object(box)  # would deadlock if locks leaked
        assert manager.commits == 2

    def test_write_lock_conflict_between_transactions(self):
        manager = TransactionManager()
        box = Box(1)
        outer = manager.begin()
        manager.enlist_object(box, outer)
        sibling = manager.begin(join=False)
        with pytest.raises(LockTimeoutError):
            manager.enlist_object(box, sibling)
        manager.rollback(sibling)
        manager.commit(outer)

    def test_commit_wrong_transaction_rejected(self):
        manager = TransactionManager()
        tx = manager.begin()
        manager.begin(join=False)
        with pytest.raises(TransactionError):
            manager.commit(tx)

    def test_enlist_idempotent_snapshot(self):
        manager = TransactionManager()
        box = Box(1)
        with pytest.raises(ValueError):
            with manager.transaction():
                manager.enlist_object(box)
                box.value = 2
                manager.enlist_object(box)  # must not re-snapshot mutated state
                box.value = 3
                raise ValueError()
        assert box.value == 1

    def test_snapshot_resource_direct(self):
        box = Box({"a": 1})
        resource = ObjectSnapshotResource(box)
        box.value = None
        resource.rollback()
        assert box.value == {"a": 1}


class TestSecurity:
    @pytest.fixture()
    def security(self):
        clock = SimClock()
        store = CredentialStore()
        store.add_user("alice", "pw", roles=["teller"])
        store.add_user("bob", "pw2", roles=["customer"])
        auth = AuthenticationService(store, clock, ttl_ms=1000)
        acl = Acl()
        acl.allow_role("teller", "Account.*", ["invoke"])
        acl.allow_user("bob", "Account.getBalance", ["invoke"])
        controller = AccessController(auth, acl)
        return {"clock": clock, "store": store, "auth": auth, "acl": acl, "ac": controller}

    def test_login_and_validate(self, security):
        cred = security["auth"].login("alice", "pw")
        assert security["auth"].validate(cred.token).principal.name == "alice"

    def test_bad_password(self, security):
        with pytest.raises(AuthenticationError):
            security["auth"].login("alice", "wrong")

    def test_unknown_user(self, security):
        with pytest.raises(AuthenticationError):
            security["auth"].login("eve", "x")

    def test_duplicate_user_rejected(self, security):
        with pytest.raises(SecurityError):
            security["store"].add_user("alice", "again")

    def test_token_expiry(self, security):
        cred = security["auth"].login("alice", "pw")
        security["clock"].advance(1001)
        with pytest.raises(AuthenticationError):
            security["auth"].validate(cred.token)

    def test_logout_revokes(self, security):
        cred = security["auth"].login("alice", "pw")
        security["auth"].logout(cred.token)
        with pytest.raises(AuthenticationError):
            security["auth"].validate(cred.token)

    def test_role_grant_allows(self, security):
        cred = security["auth"].login("alice", "pw")
        principal = security["ac"].check_access(cred.token, "Account.withdraw", "invoke")
        assert principal.name == "alice"

    def test_user_grant_allows(self, security):
        cred = security["auth"].login("bob", "pw2")
        security["ac"].check_access(cred.token, "Account.getBalance", "invoke")

    def test_deny_by_default(self, security):
        cred = security["auth"].login("bob", "pw2")
        with pytest.raises(AccessDeniedError):
            security["ac"].check_access(cred.token, "Account.withdraw", "invoke")

    def test_missing_token(self, security):
        with pytest.raises(AuthenticationError):
            security["ac"].check_access(None, "Account.withdraw", "invoke")

    def test_audit_trail(self, security):
        cred = security["auth"].login("bob", "pw2")
        security["ac"].check_access(cred.token, "Account.getBalance", "invoke")
        try:
            security["ac"].check_access(cred.token, "Account.withdraw", "invoke")
        except AccessDeniedError:
            pass
        try:
            security["ac"].check_access("bogus", "Account.withdraw", "invoke")
        except AuthenticationError:
            pass
        audit = security["ac"].audit
        assert len(audit.records) == 3
        assert [r.outcome for r in audit.records] == ["allow", "deny", "auth-failure"]
        assert len(audit.denials()) == 2
        assert len(audit.for_principal("bob")) == 2

    def test_wildcard_actions(self, security):
        security["acl"].allow_role("customer", "Report.*", ["*"])
        cred = security["auth"].login("bob", "pw2")
        security["ac"].check_access(cred.token, "Report.daily", "generate")
