"""Integration: the generated source artifacts alone rebuild the system.

The paper's §2 pipeline produces two kinds of code artifacts — the
functional module and one concrete-aspect module per concern.  This test
reconstructs the running application using ONLY those generated sources
(no live CMT/CA objects), proving the artifacts are self-contained: a
deployment site that received just the generated code gets the same
remote/atomic/secure behaviour.
"""

import pytest

from repro.codegen import compile_aspect
from repro.core import MdaLifecycle, MiddlewareServices
from repro.errors import AuthenticationError

from helpers import FULL_BANK_PARAMS, build_bank_model


@pytest.fixture()
def artifacts():
    """Run the lifecycle once, keep only the emitted sources."""
    resource, _ = build_bank_model()
    lifecycle = MdaLifecycle(resource, services=MiddlewareServices.create())
    for concern, params in FULL_BANK_PARAMS.items():
        lifecycle.apply_concern(concern, **params)
    functional_source = lifecycle.generate_functional_code("artifact_app").__source__
    aspect_modules = [
        compile_aspect(ca, f"artifact_aspect_{i}")
        for i, (_, ca) in enumerate(lifecycle.applied)
    ]
    return functional_source, aspect_modules


def _boot(functional_source, aspect_modules):
    """A fresh deployment site: new services, woven from sources only."""
    import types

    module = types.ModuleType("artifact_boot")
    exec(compile(functional_source, "<artifact>", "exec"), module.__dict__)
    services = MiddlewareServices.create()
    services.weaver.weave_class(module.Account)
    services.weaver.weave_class(module.Bank)
    for rank, aspect_module in enumerate(aspect_modules):
        services.weaver.deploy(aspect_module.build_aspect(services), rank)
    services.credentials.add_user("alice", "pw", roles=["teller"])
    credential = services.auth.login("alice", "pw")
    return module, services, credential


class TestArtifactsAreSelfContained:
    def test_behaviour_reconstructed_from_sources(self, artifacts):
        module, services, credential = _boot(*artifacts)
        bank = module.Bank()
        a = module.Account(balance=50.0)
        b = module.Account(balance=0.0)
        with services.orb.call_context(credentials=credential.token):
            assert bank.transfer(a, b, 20.0) is True
        assert (a.balance, b.balance) == (30.0, 20.0)
        assert services.bus.messages_delivered > 0
        assert services.transactions.commits >= 1

    def test_security_still_enforced(self, artifacts):
        module, services, _ = _boot(*artifacts)
        bank = module.Bank()
        a, b = module.Account(balance=5.0), module.Account()
        with pytest.raises(AuthenticationError):
            bank.transfer(a, b, 1.0)

    def test_rollback_still_atomic(self, artifacts):
        module, services, credential = _boot(*artifacts)
        bank = module.Bank()
        a = module.Account(balance=5.0)
        b = module.Account(balance=5.0)
        with services.orb.call_context(credentials=credential.token):
            with pytest.raises(Exception):
                bank.transfer(a, b, 999.0)
        assert (a.balance, b.balance) == (5.0, 5.0)

    def test_two_sites_are_independent(self, artifacts):
        site1 = _boot(*artifacts)
        site2 = _boot(*artifacts)
        module1, services1, cred1 = site1
        module2, services2, cred2 = site2
        a1 = module1.Account(balance=10.0)
        with services1.orb.call_context(credentials=cred1.token):
            a1.deposit(1.0)
        assert services1.bus.messages_delivered >= 1
        assert services2.bus.messages_delivered == 0

    def test_parameters_baked_into_artifacts(self, artifacts):
        _, aspect_modules = artifacts
        params = [m.PARAMETERS for m in aspect_modules]
        assert params[0]["server_classes"] == ["Account"]
        assert "Bank.transfer" in params[1]["transactional_ops"]
        assert params[2]["protected_ops"] == ["Bank.transfer"]
