"""Unit tests for the meta-level definitions (S1 kernel)."""

import pytest

from repro.errors import MetamodelError
from repro.metamodel import (
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    UNBOUNDED,
    MetaAttribute,
    MetaClass,
    MetaDataType,
    MetaEnum,
    MetaPackage,
    MetaReference,
)


class TestMetaPackage:
    def test_qualified_name_walks_ownership(self):
        root = MetaPackage("root")
        sub = MetaPackage("sub")
        root.add_subpackage(sub)
        cls = MetaClass("C", package=sub)
        assert cls.qualified_name == "root.sub.C"

    def test_duplicate_classifier_rejected(self):
        pkg = MetaPackage("p")
        MetaClass("C", package=pkg)
        with pytest.raises(MetamodelError):
            pkg.add_classifier(MetaClass("C"))

    def test_duplicate_subpackage_rejected(self):
        pkg = MetaPackage("p")
        pkg.add_subpackage(MetaPackage("s"))
        with pytest.raises(MetamodelError):
            pkg.add_subpackage(MetaPackage("s"))

    def test_resolve_descends_subpackages(self):
        root = MetaPackage("root")
        sub = MetaPackage("sub")
        root.add_subpackage(sub)
        cls = MetaClass("C", package=sub)
        assert root.resolve("sub.C") is cls

    def test_resolve_unknown_raises(self):
        root = MetaPackage("root")
        with pytest.raises(MetamodelError):
            root.resolve("nope.C")

    def test_all_classifiers_covers_subpackages(self):
        root = MetaPackage("root")
        sub = MetaPackage("sub")
        root.add_subpackage(sub)
        a = MetaClass("A", package=root)
        b = MetaClass("B", package=sub)
        assert set(root.all_classifiers()) == {a, b}

    def test_classifier_lookup_unknown_raises(self):
        with pytest.raises(MetamodelError):
            MetaPackage("p").classifier("X")


class TestPrimitiveTypes:
    def test_string(self):
        assert STRING.is_instance("x")
        assert not STRING.is_instance(3)

    def test_integer_excludes_bool(self):
        assert INTEGER.is_instance(3)
        assert not INTEGER.is_instance(True)

    def test_real_accepts_int(self):
        assert REAL.is_instance(1.5)
        assert REAL.is_instance(2)
        assert not REAL.is_instance(True)

    def test_boolean(self):
        assert BOOLEAN.is_instance(False)
        assert not BOOLEAN.is_instance(0)

    def test_custom_datatype(self):
        dt = MetaDataType("Bytes", (bytes,))
        assert dt.is_instance(b"x")
        assert not dt.is_instance("x")


class TestMetaEnum:
    def test_literal_membership(self):
        e = MetaEnum("Color", ["red", "green"])
        assert e.is_instance("red")
        assert not e.is_instance("blue")
        assert not e.is_instance(3)

    def test_duplicate_literal_rejected(self):
        e = MetaEnum("Color", ["red"])
        with pytest.raises(MetamodelError):
            e.add_literal("red")

    def test_default_is_first_literal(self):
        assert MetaEnum("E", ["a", "b"]).default == "a"
        assert MetaEnum("E2").default is None


class TestMetaClass:
    def test_inheritance_cycle_rejected(self):
        a = MetaClass("A")
        b = MetaClass("B", superclasses=[a])
        with pytest.raises(MetamodelError):
            a.add_superclass(b)
        with pytest.raises(MetamodelError):
            a.add_superclass(a)

    def test_conforms_to_transitively(self):
        a = MetaClass("A")
        b = MetaClass("B", superclasses=[a])
        c = MetaClass("C", superclasses=[b])
        assert c.conforms_to(a)
        assert c.conforms_to(c)
        assert not a.conforms_to(c)

    def test_all_features_merges_inherited(self):
        a = MetaClass("A")
        a.add_attribute("x", STRING)
        b = MetaClass("B", superclasses=[a])
        b.add_attribute("y", INTEGER)
        assert set(b.all_features()) == {"x", "y"}

    def test_duplicate_feature_name_rejected_across_hierarchy(self):
        a = MetaClass("A")
        a.add_attribute("x", STRING)
        b = MetaClass("B", superclasses=[a])
        with pytest.raises(MetamodelError):
            b.add_attribute("x", STRING)

    def test_abstract_class_not_instantiable(self):
        a = MetaClass("A", abstract=True)
        with pytest.raises(MetamodelError):
            a()

    def test_instantiation_with_kwargs(self):
        a = MetaClass("A")
        a.add_attribute("name", STRING)
        a.add_attribute("tags", STRING, upper=UNBOUNDED)
        obj = a(name="n", tags=["t1", "t2"])
        assert obj.name == "n"
        assert list(obj.tags) == ["t1", "t2"]

    def test_feature_lookup_unknown_raises(self):
        with pytest.raises(MetamodelError):
            MetaClass("A").feature("nope")


class TestFeatures:
    def test_attribute_cannot_be_class_typed(self):
        c = MetaClass("C")
        with pytest.raises(MetamodelError):
            MetaAttribute("bad", c)

    def test_reference_must_be_class_typed(self):
        with pytest.raises(MetamodelError):
            MetaReference("bad", STRING)

    def test_bad_multiplicities_rejected(self):
        c = MetaClass("C")
        with pytest.raises(MetamodelError):
            MetaReference("r", c, lower=2, upper=1)
        with pytest.raises(MetamodelError):
            MetaReference("r", c, lower=-1)
        with pytest.raises(MetamodelError):
            MetaReference("r", c, upper=0)

    def test_many_property(self):
        c = MetaClass("C")
        assert MetaReference("r", c, upper=UNBOUNDED).many
        assert MetaReference("r", c, upper=3).many
        assert not MetaReference("r", c).many

    def test_opposite_pairing_rules(self):
        a, b = MetaClass("A"), MetaClass("B")
        r1 = a.add_reference("bs", b, upper=UNBOUNDED)
        r2 = b.add_reference("a", a)
        r1.set_opposite(r2)
        assert r1.opposite is r2 and r2.opposite is r1
        r3 = b.add_reference("other", a)
        with pytest.raises(MetamodelError):
            r1.set_opposite(r3)

    def test_double_containment_opposites_rejected(self):
        a, b = MetaClass("A"), MetaClass("B")
        r1 = a.add_reference("bs", b, containment=True)
        r2 = b.add_reference("a", a, containment=True)
        with pytest.raises(MetamodelError):
            r1.set_opposite(r2)

    def test_annotations_chainable(self):
        c = MetaClass("C").annotate(doc="x", hint=1)
        assert c.annotations == {"doc": "x", "hint": 1}
