"""End-to-end lifecycle tests: the paper's Fig. 2 scenario executed (E1/E2/E4)."""

import pytest

from repro.core import MdaLifecycle
from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    RemoteInvocationError,
    TransactionAborted,
    WorkflowError,
)
from repro.metamodel import validate
from repro.uml import find_element, has_stereotype
from repro.workflow import WorkflowModel

from helpers import FULL_BANK_PARAMS


class TestRefinementPhase:
    def test_three_concerns_applied_in_order(self, lifecycle):
        for concern, params in FULL_BANK_PARAMS.items():
            lifecycle.apply_concern(concern, **params)
        assert lifecycle.applied_concerns == [
            "distribution",
            "transactions",
            "security",
        ]
        assert lifecycle.remaining_concerns() == [
            "logging",
            "platform",
            "platform-abstraction",
        ]
        assert validate(lifecycle.repository.resource) == []

    def test_each_application_committed(self, lifecycle):
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        log = lifecycle.repository.log()
        assert len(log) == 2  # the initial PIM + the applied transformation
        assert "initial PIM" in log[0]
        assert "T_distribution" in log[1]

    def test_aspect_queue_matches_application_order(self, lifecycle):
        for concern, params in FULL_BANK_PARAMS.items():
            lifecycle.apply_concern(concern, **params)
        names = lifecycle.plan.order()
        assert names[0].startswith("A_distribution")
        assert names[1].startswith("A_transactions")
        assert names[2].startswith("A_security")

    def test_cmt_and_ca_share_si(self, lifecycle):
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        cmt, ca = lifecycle.applied[0]
        assert ca.parameter_set is cmt.parameter_set

    def test_workflow_gates_application(self, bank_resource, services):
        workflow = WorkflowModel()
        workflow.add_step("distribution")
        workflow.add_step("transactions", requires=["distribution"])
        lifecycle = MdaLifecycle(bank_resource, services=services, workflow=workflow)
        with pytest.raises(WorkflowError):
            lifecycle.apply_concern(
                "transactions", **FULL_BANK_PARAMS["transactions"]
            )
        lifecycle.apply_concern("distribution", **FULL_BANK_PARAMS["distribution"])
        lifecycle.apply_concern("transactions", **FULL_BANK_PARAMS["transactions"])

    def test_summary_renders_fig2(self, lifecycle):
        for concern, params in FULL_BANK_PARAMS.items():
            lifecycle.apply_concern(concern, **params)
        text = lifecycle.summary()
        assert "T_distribution" in text and "A_distribution" in text
        assert "0:" in text and "2:" in text

    def test_aspect_sources_generated_per_concern(self, lifecycle):
        for concern, params in FULL_BANK_PARAMS.items():
            lifecycle.apply_concern(concern, **params)
        sources = lifecycle.generate_aspect_sources()
        assert len(sources) == 3
        for source in sources.values():
            compile(source, "<ca>", "exec")


class TestWovenApplication:
    def test_functional_behaviour_preserved(self, woven_bank):
        module, services = woven_bank["module"], woven_bank["services"]
        account = module.Account(balance=50.0)
        with services.orb.call_context(credentials=woven_bank["credential"].token):
            assert account.deposit(25.0) == 75.0
            assert account.getBalance() == 75.0

    def test_distribution_active(self, woven_bank):
        module, services = woven_bank["module"], woven_bank["services"]
        account = module.Account(balance=1.0)
        before = services.bus.messages_delivered
        account.getBalance()
        assert services.bus.messages_delivered == before + 1

    def test_security_gates_transfer(self, woven_bank):
        module = woven_bank["module"]
        bank, a, b = module.Bank(), module.Account(balance=10), module.Account()
        with pytest.raises(AuthenticationError):
            bank.transfer(a, b, 1.0)

    def test_wrong_role_denied(self, woven_bank):
        module, services = woven_bank["module"], woven_bank["services"]
        services.credentials.add_user("mallory", "pw", roles=["nobody"])
        cred = services.auth.login("mallory", "pw")
        bank, a, b = module.Bank(), module.Account(balance=10), module.Account()
        with services.orb.call_context(credentials=cred.token):
            with pytest.raises(AccessDeniedError):
                bank.transfer(a, b, 1.0)

    def test_authorized_transfer_moves_money(self, woven_bank):
        module, services = woven_bank["module"], woven_bank["services"]
        bank = module.Bank()
        a = module.Account(balance=100.0)
        b = module.Account(balance=0.0)
        with services.orb.call_context(credentials=woven_bank["credential"].token):
            assert bank.transfer(a, b, 30.0) is True
        assert (a.balance, b.balance) == (70.0, 30.0)
        assert services.transactions.commits >= 1

    def test_failed_transfer_is_atomic(self, woven_bank):
        module, services = woven_bank["module"], woven_bank["services"]
        bank = module.Bank()
        a = module.Account(balance=10.0)
        b = module.Account(balance=5.0)
        aborts_before = services.transactions.aborts
        with services.orb.call_context(credentials=woven_bank["credential"].token):
            with pytest.raises((ValueError, RemoteInvocationError, TransactionAborted)):
                bank.transfer(a, b, 10_000.0)
        assert (a.balance, b.balance) == (10.0, 5.0)
        assert services.transactions.aborts > aborts_before

    def test_audit_log_populated(self, woven_bank):
        module, services = woven_bank["module"], woven_bank["services"]
        bank, a, b = module.Bank(), module.Account(balance=5), module.Account()
        with services.orb.call_context(credentials=woven_bank["credential"].token):
            bank.transfer(a, b, 1.0)
        allowed = [r for r in services.audit.records if r.outcome == "allow"]
        assert any(r.resource == "Bank.transfer" for r in allowed)

    def test_model_marks_match_runtime(self, woven_bank):
        """The refined model's stereotypes describe exactly what runs."""
        model = woven_bank["lifecycle"].repository.resource.roots[0]
        assert has_stereotype(find_element(model, "accounts.Account"), "Remote")
        assert has_stereotype(
            find_element(model, "accounts.Bank.transfer"), "Transactional"
        )
        assert has_stereotype(
            find_element(model, "accounts.Bank.transfer"), "Secured"
        )

    def test_aspect_ranks_match_application_order(self, woven_bank):
        plan = woven_bank["lifecycle"].plan
        assert [ca.rank for ca in plan.aspects] == [0, 1, 2]


class TestPrecedenceExperiment:
    """E4: reordering transformations reorders advice execution."""

    @staticmethod
    def _run(order):
        from helpers import build_bank_model
        from repro.core import MiddlewareServices

        resource, _ = build_bank_model()
        services = MiddlewareServices.create()
        lifecycle = MdaLifecycle(resource, services=services)
        params = {
            "logging": dict(log_patterns=["Account.withdraw"]),
            "transactions": dict(
                transactional_ops=["Account.withdraw"], state_classes=["Account"]
            ),
        }
        for concern in order:
            lifecycle.apply_concern(concern, **params[concern])
        module = lifecycle.build_application(f"precedence_{'_'.join(order)}")
        log_aspect = next(
            ca.build(services)
            for _, ca in lifecycle.applied
            if ca.name.startswith("A_logging")
        )
        account = module.Account(balance=1.0)
        with pytest.raises(ValueError):
            account.withdraw(100.0)
        manager = services.transactions
        return log_aspect.records, manager

    def test_logging_first_sees_the_raw_exception(self):
        records, manager = self._run(["logging", "transactions"])
        # logging is outermost: it observes the raise leaving the tx wrapper
        assert ("info", "raise", "Account.withdraw") in records
        assert manager.aborts == 1

    def test_transactions_first_wraps_inside_logging(self):
        records, manager = self._run(["transactions", "logging"])
        assert ("info", "raise", "Account.withdraw") in records
        assert manager.aborts == 1

    def test_order_recorded_differs(self):
        _, m1 = self._run(["logging", "transactions"])
        _, m2 = self._run(["transactions", "logging"])
        # both behave, but deployment ranks differ
        assert m1.aborts == m2.aborts == 1
