"""Distributed runtime: ring, sharded naming, dispatch, federation, harness."""

import threading
import time

import pytest

from repro.errors import (
    FederationError,
    NamingError,
    ReproError,
    ScenarioError,
)
from repro.middleware.bus import ObjectRefData
from repro.middleware.naming import NamingService
from repro.runtime import (
    ConcurrentDispatcher,
    Federation,
    HashRing,
    MetricsRegistry,
    RunConfig,
    ScenarioRunner,
    SerialDispatcher,
    ShardedNamingService,
    get_scenario,
    percentile,
    run_scenario,
)


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_ownership_is_stable(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        owners = {f"key-{i}": ring.owner(f"key-{i}") for i in range(50)}
        again = {f"key-{i}": ring.owner(f"key-{i}") for i in range(50)}
        assert owners == again

    def test_keys_spread_over_members(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        hit = {ring.owner(f"key-{i}") for i in range(200)}
        assert hit == {"a", "b", "c"}

    def test_adding_a_member_moves_few_keys(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        before = {f"key-{i}": ring.owner(f"key-{i}") for i in range(300)}
        ring.add("d")
        after = {key: ring.owner(key) for key in before}
        moved = sum(1 for key in before if before[key] != after[key])
        # consistent hashing: only keys landing on the new member move
        assert 0 < moved < 300 / 2
        assert all(after[key] == "d" for key in before if before[key] != after[key])

    def test_remove_restores_previous_ownership(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        before = {f"key-{i}": ring.owner(f"key-{i}") for i in range(100)}
        ring.add("d")
        ring.remove("d")
        assert {key: ring.owner(key) for key in before} == before

    def test_empty_ring_raises(self):
        with pytest.raises(FederationError):
            HashRing().owner("anything")

    def test_duplicate_member_rejected(self):
        ring = HashRing()
        ring.add("a")
        with pytest.raises(FederationError):
            ring.add("a")


# ---------------------------------------------------------------------------
# sharded naming
# ---------------------------------------------------------------------------


class TestShardedNaming:
    def _service(self, shards=("s0", "s1", "s2")):
        service = ShardedNamingService()
        for name in shards:
            service.add_shard(name)
        return service

    def test_bind_resolve_roundtrip(self):
        service = self._service()
        ref = ObjectRefData("obj-1", "Account")
        service.bind("branch-1/Account/0", ref)
        assert service.resolve("branch-1/Account/0") is ref

    def test_partition_key_is_first_segment(self):
        assert ShardedNamingService.partition_key("a/b/c") == "a"
        assert ShardedNamingService.partition_key("/a/b") == "a"
        with pytest.raises(NamingError):
            ShardedNamingService.partition_key("///")

    def test_same_partition_lands_on_same_shard(self):
        service = self._service()
        owner = service.owner_of("branch-9/Bank/0")
        assert service.owner_of("branch-9/Account/3") == owner

    def test_list_merges_shards(self):
        service = self._service()
        names = [f"p-{i}/X/0" for i in range(12)]
        for name in names:
            service.bind(name, ObjectRefData(f"o{name}", "X"))
        assert service.list() == sorted(names)
        # bindings actually spread over more than one shard
        assert sum(1 for count in service.stats().values() if count) > 1

    def test_unbound_name_raises(self):
        with pytest.raises(NamingError):
            self._service().resolve("nope/X/0")

    def test_existing_naming_service_as_shard(self):
        service = ShardedNamingService()
        local = NamingService()
        assert service.add_shard("n0", local) is local
        service.bind("k/X/0", ObjectRefData("o1", "X"))
        assert local.resolve("k/X/0").object_id == "o1"


# ---------------------------------------------------------------------------
# dispatchers
# ---------------------------------------------------------------------------


class TestDispatchers:
    def test_serial_runs_inline(self):
        dispatcher = SerialDispatcher()
        assert dispatcher.dispatch("k", lambda: threading.current_thread()) is (
            threading.main_thread()
        )

    def test_concurrent_runs_on_worker(self):
        dispatcher = ConcurrentDispatcher(workers=2)
        try:
            worker = dispatcher.dispatch("k", lambda: threading.current_thread())
            assert worker is not threading.main_thread()
        finally:
            dispatcher.shutdown()

    def test_per_servant_serialization(self):
        dispatcher = ConcurrentDispatcher(workers=4)
        overlaps = []
        busy = {"flag": False}

        def critical():
            assert not busy["flag"], "two requests inside one servant"
            busy["flag"] = True
            time.sleep(0.005)
            busy["flag"] = False
            overlaps.append(1)

        try:
            threads = [
                threading.Thread(
                    target=lambda: dispatcher.dispatch("same", critical)
                )
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            dispatcher.shutdown()
        assert len(overlaps) == 6

    def test_different_servants_overlap(self):
        dispatcher = ConcurrentDispatcher(workers=4)

        def slow():
            time.sleep(0.02)

        try:
            threads = [
                threading.Thread(
                    target=lambda key=f"k{i}": dispatcher.dispatch(key, slow)
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            dispatcher.shutdown()
        # independent servants were in flight simultaneously (wall-clock
        # bounds flake on loaded runners; in-flight tracking does not)
        assert dispatcher.stats.snapshot()["max_in_flight"] >= 2

    def test_nested_dispatch_does_not_deadlock(self):
        dispatcher = ConcurrentDispatcher(workers=1)
        try:
            result = dispatcher.dispatch(
                "outer", lambda: dispatcher.dispatch("inner", lambda: 42)
            )
        finally:
            dispatcher.shutdown()
        assert result == 42

    def test_stats_count_errors(self):
        dispatcher = SerialDispatcher()

        def boom():
            raise ValueError("no")

        with pytest.raises(ValueError):
            dispatcher.dispatch("k", boom)
        snap = dispatcher.stats.snapshot()
        assert snap["dispatched"] == 1 and snap["errors"] == 1


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_percentiles_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile([], 0.5) == 0.0

    def test_record_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.start()
        for i in range(10):
            metrics.record("Op.a", "n0", 0.001 * (i + 1), error=(i == 9))
        metrics.record("Op.b", "n1", 0.5)
        metrics.stop()
        snap = metrics.snapshot()
        assert snap["total_requests"] == 11
        assert snap["total_errors"] == 1
        assert snap["operations"]["Op.a"]["count"] == 10
        assert snap["nodes"]["n1"]["count"] == 1
        assert snap["operations"]["Op.b"]["p50_ms"] == pytest.approx(500.0)
        assert "Op.a" in metrics.report()

    def test_concurrent_recording_loses_nothing(self):
        metrics = MetricsRegistry()

        def hammer(node):
            for _ in range(500):
                metrics.record("Op.x", node, 0.0001)

        threads = [
            threading.Thread(target=hammer, args=(f"n{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.total_requests() == 2000


# ---------------------------------------------------------------------------
# federation plumbing
# ---------------------------------------------------------------------------


class TestFederation:
    def _banking_federation(self, nodes=2):
        federation = Federation(seed=7)
        for i in range(nodes):
            federation.add_node(f"node-{i}")
        spec = get_scenario("banking")
        config = RunConfig(scenario="banking", nodes=nodes)
        spec.deploy(federation, config)
        for user, password, roles in spec.users:
            federation.add_user(user, password, roles=roles)
        return federation, spec, config

    def test_nodes_host_independent_apps(self):
        federation, _, _ = self._banking_federation()
        modules = [node.module for node in federation.nodes.values()]
        assert all(m is not None for m in modules)
        assert modules[0].Account is not modules[1].Account

    def test_bind_and_routed_call(self):
        federation, _, _ = self._banking_federation()
        node = federation.node_for("branch-0")
        account = node.module.Account(number="x", balance=10.0)
        node.bind("branch-0/Account/0", account)
        assert federation.call("branch-0/Account/0", "deposit", 5.0) == 15.0
        assert account.balance == 15.0
        assert federation.metrics.total_requests() == 1
        assert federation.routed[node.name] == 1

    def test_bind_on_wrong_node_rejected(self):
        federation, _, _ = self._banking_federation()
        owner = federation.node_for("branch-0")
        other = next(
            node
            for node in federation.nodes.values()
            if node.name != owner.name
        )
        account = other.module.Account(number="x", balance=1.0)
        with pytest.raises(NamingError):
            other.bind("branch-0/Account/9", account)

    def test_credentialed_call_path(self):
        federation, _, _ = self._banking_federation()
        from repro.runtime import FederationClient

        node = federation.node_for("branch-0")
        bank = node.module.Bank()
        a = node.module.Account(number="a", balance=50.0)
        b = node.module.Account(number="b", balance=0.0)
        node.bind("branch-0/Bank/0", bank)
        node.bind("branch-0/Account/0", a)
        node.bind("branch-0/Account/1", b)
        teller = FederationClient(federation, "alice", "pw")
        teller.call(
            "branch-0/Bank/0",
            "transfer",
            teller.ref("branch-0/Account/0"),
            teller.ref("branch-0/Account/1"),
            20.0,
        )
        assert (a.balance, b.balance) == (30.0, 20.0)
        anonymous = FederationClient(federation)
        with pytest.raises(ReproError):
            anonymous.call(
                "branch-0/Bank/0",
                "transfer",
                anonymous.ref("branch-0/Account/0"),
                anonymous.ref("branch-0/Account/1"),
                1.0,
            )
        # the failed transfer is atomic and audited
        assert (a.balance, b.balance) == (30.0, 20.0)

    def test_unknown_node_and_duplicate_node(self):
        federation = Federation()
        federation.add_node("n0")
        with pytest.raises(FederationError):
            federation.add_node("n0")
        with pytest.raises(FederationError):
            federation.node("missing")

    def test_bus_dispatch_guard_serializes_direct_deliveries(self):
        """Proxy calls that bypass Node.invoke still hold the servant lock."""
        federation = Federation(seed=1)
        node = federation.add_node("n0", workers=2)
        assert node.services.bus.dispatch_guard is not None

        busy = {"flag": False}
        overlaps = []

        class Slow:
            def poke(self):
                if busy["flag"]:
                    overlaps.append(1)
                busy["flag"] = True
                time.sleep(0.003)
                busy["flag"] = False
                return 1

        orb = node.services.orb
        ref = orb.register(Slow())

        def direct_call():
            orb.invoke(ref, "poke", (), {})

        threads = [threading.Thread(target=direct_call) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        node.shutdown()
        assert not overlaps, "nested/direct deliveries overlapped on one servant"

    def test_wildcard_fault_campaign_counts(self):
        federation, _, _ = self._banking_federation()
        node = federation.node_for("branch-0")
        account = node.module.Account(number="x", balance=10.0)
        node.bind("branch-0/Account/0", account)
        federation.configure_fault("bus.*", 1.0)
        with pytest.raises(ReproError):
            federation.call("branch-0/Account/0", "getBalance")
        assert federation.faults_injected().get("bus.deliver", 0) >= 1


# ---------------------------------------------------------------------------
# scenario harness
# ---------------------------------------------------------------------------

SMALL = dict(nodes=2, clients=4, ops=60, seed=11, real_latency_ms=0.0)


class TestScenarioHarness:
    @pytest.mark.parametrize(
        "name", ["banking", "auction", "medical_records", "component_shipping"]
    )
    def test_sequential_runs_are_deterministic(self, name):
        first = run_scenario(name, concurrent=False, **SMALL)
        second = run_scenario(name, concurrent=False, **SMALL)
        assert first.passed, first.invariant_violations
        assert first.digest() == second.digest()
        assert first.ops == 60

    def test_fault_campaign_keeps_invariants_and_determinism(self):
        first = run_scenario("banking", concurrent=False, faults=True, **SMALL)
        second = run_scenario("banking", concurrent=False, faults=True, **SMALL)
        assert first.passed, first.invariant_violations
        assert first.failed > 0, "campaign injected no observable fault"
        assert sum(first.faults_injected.values()) > 0
        assert first.digest() == second.digest()

    @pytest.mark.parametrize(
        "name", ["banking", "auction", "medical_records", "component_shipping"]
    )
    def test_concurrent_runs_keep_invariants(self, name):
        result = run_scenario(name, concurrent=True, workers=3, **SMALL)
        assert result.passed, result.invariant_violations
        assert result.ops == 60

    def test_concurrent_run_with_faults_keeps_invariants(self):
        result = run_scenario(
            "banking", concurrent=True, workers=3, faults=True, **SMALL
        )
        assert result.passed, result.invariant_violations

    def test_seed_changes_the_workload(self):
        first = run_scenario("banking", concurrent=False, **SMALL)
        other = run_scenario(
            "banking",
            concurrent=False,
            **{**SMALL, "seed": SMALL["seed"] + 1},
        )
        assert first.digest() != other.digest()

    def test_metrics_cover_every_operation(self):
        result = run_scenario("banking", concurrent=False, **SMALL)
        recorded = sum(
            s["count"] for s in result.metrics["operations"].values()
        )
        assert recorded == result.ops
        assert set(result.metrics["nodes"]) <= {"node-0", "node-1"}
        for stats in result.metrics["operations"].values():
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError):
            get_scenario("nope")
        with pytest.raises(ScenarioError):
            run_scenario("nope", nodes=1, clients=1, ops=1)

    def test_bad_config_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioRunner("banking", RunConfig(scenario="banking", clients=0))
        with pytest.raises(ScenarioError):
            ScenarioRunner(
                "banking",
                RunConfig(scenario="banking", workers=0, concurrent=True),
            )

    def test_result_serializes(self):
        import json

        result = run_scenario("auction", concurrent=False, **SMALL)
        document = json.loads(json.dumps(result.to_dict()))
        assert document["scenario"] == "auction"
        assert document["passed"] is True
        assert document["digest"] == result.digest()


# ---------------------------------------------------------------------------
# CLI front end
# ---------------------------------------------------------------------------


class TestSimulateCli:
    def test_simulate_smoke(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "result.json"
        code = main(
            [
                "simulate",
                "--scenario",
                "banking",
                "--nodes",
                "2",
                "--clients",
                "2",
                "--ops",
                "30",
                "--seed",
                "1",
                "--serial",
                "--latency-ms",
                "0",
                "--json",
                str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "throughput" in captured and "p95" in captured
        assert "invariants: OK" in captured
        assert out.exists()

    def test_simulate_unknown_scenario_fails(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--scenario", "nope"]) == 1
        assert "error" in capsys.readouterr().err
