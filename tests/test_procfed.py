"""Multi-process federation: worker processes, wire deploys, failover.

These tests spawn real OS processes (``repro.cli node serve``) and
drive them through :class:`~repro.runtime.procfed.ProcessFederation`.
The oracle is the in-process federation: the same spec deploys, the
same calls return the same values, and killing a worker *process*
produces the same observable sequence killing an in-process node does —
pre-effect :class:`~repro.errors.NodeDownError`, standby promotion onto
the ring successor, and the QoS retry budget landing the call on the
new primary.
"""

import dataclasses
import subprocess
import sys

import pytest

from repro.deploy.spec import QoSProfile, ReplicationSpec
from repro.errors import NodeDownError
from repro.middleware.envelope import QoS
from repro.runtime.harness import RunConfig
from repro.runtime.procfed import ANNOUNCE_PREFIX, ProcessFederation, _worker_env
from repro.runtime.scenarios import get_scenario


def banking_spec(nodes=3, replication=1, retries=4):
    config = RunConfig(scenario="banking", nodes=nodes, clients=2, ops=10, seed=1)
    spec = get_scenario("banking").deployment_spec(config)
    return dataclasses.replace(
        spec,
        replication=ReplicationSpec(count=replication),
        qos_profiles=(
            QoSProfile(name="retry", retries=retries, timeout_ms=10000),
        ),
        client_qos="retry",
    )


@pytest.fixture(scope="module")
def fed():
    federation = ProcessFederation(banking_spec()).start()
    yield federation
    federation.shutdown()


@pytest.fixture(scope="module")
def client(fed):
    return fed.client("alice", "pw")


class TestProcessFederation:
    def test_workers_are_separate_processes(self, fed):
        pids = {
            fed.transport.control(name, {"verb": "ping"})["pid"]
            for name in fed.workers
        }
        import os

        assert len(pids) == 3
        assert os.getpid() not in pids

    def test_deployed_application_serves_calls(self, fed, client):
        assert client.call("branch-0/Account/0", "getBalance") == 1000.0
        assert client.call("branch-0/Account/0", "deposit", 50) == 1050.0
        assert client.call("branch-0/Account/0", "withdraw", 25) == 1025.0

    def test_refs_cross_the_wire_and_hydrate_on_the_worker(self, fed, client):
        assert client.call(
            "branch-1/Bank/0",
            "transfer",
            client.ref("branch-1/Account/0"),
            client.ref("branch-1/Account/1"),
            100,
        )
        assert client.call("branch-1/Account/0", "getBalance") == 900.0
        assert client.call("branch-1/Account/1", "getBalance") == 1100.0

    def test_protected_op_requires_credentials(self, fed):
        from repro.errors import SecurityError

        anonymous = fed  # bare federation calls carry no credentials
        with pytest.raises(SecurityError):
            anonymous.call(
                "branch-2/Bank/0",
                "transfer",
                anonymous.ref("branch-2/Account/0"),
                anonymous.ref("branch-2/Account/1"),
                1,
            )

    def test_oneway_ack_means_effect_landed(self, fed, client):
        client.oneway("branch-2/Account/2", "deposit", 5)
        assert fed.quiesce(10.0)
        assert client.call("branch-2/Account/2", "getBalance") == 1005.0

    def test_async_replies(self, fed, client):
        future = client.call_async("branch-2/Account/3", "deposit", 7)
        assert future.result(10000) == 1007.0

    def test_worker_faults_cross_as_degraded_exceptions(self, fed, client):
        from repro.errors import RemoteInvocationError

        with pytest.raises(RemoteInvocationError, match="insufficient funds"):
            client.call("branch-0/Account/1", "withdraw", 10**9)

    def test_routing_and_transport_stats(self, fed, client):
        client.call("branch-0/Account/0", "getBalance")
        stats = fed.stats()
        assert sum(stats["routed"].values()) > 0
        assert stats["transport"]["roundtrips"] > 0
        worker = fed.worker_stats(sorted(fed.workers)[0])
        assert worker["wire"]["requests_served"] >= 0


class TestProcessFailover:
    def test_kill_process_mid_delivery_fails_over_and_retries(self):
        """The PR-4 oracle, cross-process: a pooled connection to a
        worker that was just SIGKILLed surfaces the disconnect as a
        pre-effect NodeDownError, the failover element promotes the
        partitions onto the ring successor (restoring the write-through
        snapshots over the wire), and the QoS retry budget lands the
        very same call on the new primary."""
        with ProcessFederation(banking_spec()) as fed:
            client = fed.client("alice", "pw")
            owner = fed.naming.owner_of("branch-0")
            assert client.call("branch-0/Account/0", "deposit", 111) == 1111.0
            fed.kill(owner)  # SIGKILL the OS process; endpoint stays
            # replicated state survives onto the promoted worker
            assert client.call("branch-0/Account/0", "getBalance") == 1111.0
            assert fed.failovers == 1
            new_owner = fed.naming.owner_of("branch-0")
            assert new_owner != owner
            assert owner not in fed.workers
            # effects keep applying on the new primary
            assert client.call("branch-0/Account/0", "deposit", 9) == 1120.0
            assert fed.stats()["transport"]["disconnects"] >= 1

    def test_kill_without_retry_budget_surfaces_node_down(self):
        with ProcessFederation(banking_spec()) as fed:
            owner = fed.naming.owner_of("branch-0")
            fed.call("branch-0/Account/0", "getBalance", qos=QoS(retries=2))
            fed.kill(owner)
            with pytest.raises(NodeDownError) as excinfo:
                fed.call("branch-0/Account/0", "getBalance", qos=QoS())
            assert excinfo.value.pre_effect


class TestNodeServeCli:
    def test_serve_announces_and_stops_over_the_wire(self):
        """The bare CLI surface: spawn, scan the announcement, ping,
        stop — no ProcessFederation involved."""
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "node", "serve",
                "--name", "solo", "--endpoint", "tcp://127.0.0.1:0",
            ],
            env=_worker_env(),
            stdout=subprocess.PIPE,
        )
        try:
            line = process.stdout.readline().decode()
            prefix, name, endpoint = line.split()
            assert prefix == ANNOUNCE_PREFIX and name == "solo"
            from repro.middleware.sockets import SocketTransport

            transport = SocketTransport({"solo": endpoint}.get)
            assert transport.control("solo", {"verb": "ping"})["node"] == "solo"
            reply = transport.control("solo", {"verb": "stop"})
            assert reply["node"] == "solo"  # __stop__ is consumed server-side
            transport.shutdown()
            assert process.wait(timeout=10) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stdout.close()

    def test_undeployed_worker_refuses_binds(self):
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "node", "serve",
                "--name", "bare", "--endpoint", "tcp://127.0.0.1:0",
            ],
            env=_worker_env(),
            stdout=subprocess.PIPE,
        )
        try:
            endpoint = process.stdout.readline().decode().split()[2]
            from repro.errors import TransportError
            from repro.middleware.sockets import SocketTransport

            transport = SocketTransport({"bare": endpoint}.get)
            with pytest.raises(TransportError, match="no application deployed"):
                transport.control(
                    "bare",
                    {"verb": "bind", "name": "p/T/0", "type": "T", "state": {}},
                )
            transport.control("bare", {"verb": "stop"})
            transport.shutdown()
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stdout.close()
