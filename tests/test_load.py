"""Open-loop load harness: generators, virtual time, driver, SLO oracle."""

import random
import threading

import pytest

from repro.errors import MiddlewareError, ScenarioError
from repro.middleware.clock import SimClock
from repro.runtime import run_scenario
from repro.runtime.load import (
    BurstyStepSchedule,
    ConstantSchedule,
    DiurnalSineSchedule,
    PoissonSchedule,
    UserPopulation,
    VirtualTimeScheduler,
    ZipfSampler,
    parse_arrival,
)

# ---------------------------------------------------------------------------
# Zipf popularity
# ---------------------------------------------------------------------------


def test_zipf_rank_frequencies_match_exponent():
    keys = [f"branch-{i}" for i in range(20)]
    sampler = ZipfSampler(keys, s=1.0)
    rng = random.Random(5)
    draws = 200_000
    counts = {}
    for _ in range(draws):
        key = sampler.sample(rng)
        counts[key] = counts.get(key, 0) + 1
    # the rank order is the sorted key list
    for rank in (1, 2, 3, 5, 10):
        expected = sampler.probability(rank)
        observed = counts[sampler.keys[rank - 1]] / draws
        assert observed == pytest.approx(expected, rel=0.05)
    # rank-1 should be ~rank x as popular as rank-k for s=1
    assert counts[sampler.keys[0]] / counts[sampler.keys[9]] == pytest.approx(
        10.0, rel=0.15
    )


def test_zipf_zero_exponent_is_uniform():
    sampler = ZipfSampler(["a", "b", "c", "d"], s=0.0)
    for rank in range(1, 5):
        assert sampler.probability(rank) == pytest.approx(0.25)


def test_zipf_sampling_is_seed_deterministic():
    sampler = ZipfSampler([f"k{i}" for i in range(16)], s=1.3)
    first = [sampler.sample(random.Random(9)) for _ in range(1)]
    runs = [
        [sampler.sample(rng) for _ in range(500)]
        for rng in (random.Random(42), random.Random(42))
    ]
    assert runs[0] == runs[1]
    assert first  # rank list stable regardless of construction order


def test_zipf_rejects_bad_input():
    with pytest.raises(ScenarioError):
        ZipfSampler([], s=1.0)
    with pytest.raises(ScenarioError):
        ZipfSampler(["a"], s=-0.5)
    with pytest.raises(ScenarioError):
        ZipfSampler(["a", "b"]).probability(3)


# ---------------------------------------------------------------------------
# arrival schedules
# ---------------------------------------------------------------------------

SCHEDULES = [
    ConstantSchedule(2_000),
    PoissonSchedule(2_000),
    BurstyStepSchedule(500, 4_000, period_ms=200.0, duty=0.25),
    DiurnalSineSchedule(1_000, amplitude=0.8, period_ms=1_000.0),
]


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.kind)
def test_schedule_arrivals_are_monotone_nonnegative_and_seeded(schedule):
    stream = schedule.arrivals(31)
    first = [next(stream) for _ in range(2_000)]
    assert all(t >= 0.0 for t in first)
    assert all(b >= a for a, b in zip(first, first[1:]))
    again = schedule.arrivals(31)
    assert [next(again) for _ in range(2_000)] == first


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.kind)
def test_schedule_rate_is_nonnegative_everywhere(schedule):
    for t in range(0, 5_000, 7):
        assert schedule.rate_at(float(t)) >= 0.0


def test_poisson_mean_gap_matches_rate():
    schedule = PoissonSchedule(1_000)  # 1 op/ms
    stream = schedule.arrivals(3)
    arrivals = [next(stream) for _ in range(20_000)]
    mean_gap = arrivals[-1] / len(arrivals)
    assert mean_gap == pytest.approx(1.0, rel=0.05)


def test_thinned_schedules_track_their_intensity():
    # arrivals in the burst phase should outnumber the base phase by
    # roughly burst/base, window by window
    schedule = BurstyStepSchedule(500, 4_000, period_ms=200.0, duty=0.5)
    stream = schedule.arrivals(11)
    arrivals = [next(stream) for _ in range(30_000)]
    burst = sum(1 for t in arrivals if (t % 200.0) < 100.0)
    base = len(arrivals) - burst
    assert burst / max(base, 1) == pytest.approx(8.0, rel=0.2)


def test_constant_schedule_is_rng_free():
    schedule = ConstantSchedule(100)
    one = schedule.arrivals(1)
    two = schedule.arrivals(999)
    assert [next(one) for _ in range(50)] == [next(two) for _ in range(50)]


def test_parse_arrival_round_trips_every_shape():
    assert parse_arrival("constant:250").to_dict() == {
        "kind": "constant",
        "rate_per_s": 250.0,
    }
    assert parse_arrival("poisson:1000").rate_at(0) == 1000.0
    bursty = parse_arrival("bursty:100:900:50:0.2")
    assert bursty.to_dict()["duty"] == 0.2
    diurnal = parse_arrival("diurnal:300:0.5:1000")
    assert diurnal.peak_rate() == pytest.approx(450.0)


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "warp:1",
        "poisson",
        "poisson:0",
        "poisson:fast",
        "constant:-5",
        "bursty:100:50:100",  # burst < base
        "bursty:100:900:100:1.5",  # duty out of range
        "diurnal:100:2:1000",  # amplitude > 1
        "diurnal:100:0.5:0",  # period <= 0
    ],
)
def test_parse_arrival_rejects_bad_specs(spec):
    with pytest.raises(ScenarioError):
        parse_arrival(spec)


# ---------------------------------------------------------------------------
# virtual-time scheduler
# ---------------------------------------------------------------------------


def test_scheduler_dispatches_in_time_order_with_fifo_ties():
    sched = VirtualTimeScheduler()
    fired = []
    sched.schedule_at(5.0, lambda t, p: fired.append(p), "late")
    sched.schedule_at(1.0, lambda t, p: fired.append(p), "early")
    sched.schedule_at(5.0, lambda t, p: fired.append(p), "late-tie")
    assert sched.run() == 3
    assert fired == ["early", "late", "late-tie"]
    assert sched.clock.now() == 5.0


def test_scheduler_heap_never_goes_backwards():
    sched = VirtualTimeScheduler()
    sched.schedule_at(10.0, lambda t, p: None)
    sched.run()
    with pytest.raises(MiddlewareError):
        sched.schedule_at(9.999, lambda t, p: None)
    with pytest.raises(MiddlewareError):
        sched.schedule_after(-0.1, lambda t, p: None)


def test_scheduler_time_is_monotone_under_random_event_chains():
    rng = random.Random(17)
    sched = VirtualTimeScheduler()
    seen = []

    def hop(t_ms, depth):
        seen.append(t_ms)
        if depth < 60:
            sched.schedule_after(rng.random() * 5.0, hop, depth + 1)

    for i in range(10):
        sched.schedule_at(rng.random() * 3.0, hop, 0)
    sched.run()
    assert seen == sorted(seen)
    assert sched.dispatched == len(seen)


def test_scheduler_horizon_leaves_future_events_queued():
    sched = VirtualTimeScheduler()
    fired = []
    for due in (1.0, 2.0, 50.0):
        sched.schedule_at(due, lambda t, p: fired.append(t))
    assert sched.run(until_ms=10.0) == 2
    assert fired == [1.0, 2.0]
    assert len(sched) == 1
    assert sched.run() == 1  # the horizon never drops events


# ---------------------------------------------------------------------------
# SimClock under concurrency
# ---------------------------------------------------------------------------


def test_simclock_racing_advances_are_lossless_and_monotone():
    clock = SimClock()
    threads = 8
    per_thread = 2_000
    delta = 0.25
    observed = []

    def pump():
        for _ in range(per_thread):
            observed.append(clock.advance(delta))

    workers = [threading.Thread(target=pump) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    # lossless: no advance is ever dropped by a race
    assert clock.now() == pytest.approx(threads * per_thread * delta)
    # each thread's own returned timestamps never decrease
    assert all(b >= a for a, b in zip(observed, observed[1:]) if b and a)


def test_simclock_rejects_negative_delta():
    clock = SimClock()
    with pytest.raises(MiddlewareError):
        clock.advance(-0.001)
    assert clock.now() == 0.0


def test_simclock_advance_to_is_forward_only():
    clock = SimClock(start=100.0)
    assert clock.advance_to(50.0) == 100.0  # backwards attempt: no-op
    assert clock.advance_to(150.0) == 150.0


def test_simclock_wait_until_wakes_on_virtual_deadline():
    clock = SimClock()
    reached = threading.Event()

    def waiter():
        if clock.wait_until(10.0, timeout_s=5.0):
            reached.set()

    thread = threading.Thread(target=waiter)
    thread.start()
    clock.advance(4.0)
    assert not reached.wait(0.05)
    clock.advance(6.0)
    thread.join(timeout=5.0)
    assert reached.is_set()


def test_simclock_wait_until_times_out_without_a_driver():
    clock = SimClock()
    assert clock.wait_until(5.0, timeout_s=0.05) is False


# ---------------------------------------------------------------------------
# user population
# ---------------------------------------------------------------------------


def test_user_population_is_array_backed_and_counts_activity():
    population = UserPopulation(1_000)
    population.issued[3] += 2
    population.ok[3] += 1
    population.shed[3] += 1
    population.issued[999] += 1
    stats = population.stats()
    assert stats == {"size": 1_000, "active": 2, "max_ops_one_user": 2}
    with pytest.raises(ScenarioError):
        UserPopulation(0)


# ---------------------------------------------------------------------------
# open-loop runs through the harness
# ---------------------------------------------------------------------------

OPEN_LOOP_SMALL = dict(
    nodes=2,
    clients=4,
    ops=3_000,
    seed=11,
    concurrent=False,
    real_latency_ms=0.0,
)


def test_open_loop_run_is_digest_deterministic_and_meets_slo():
    block = dict(users=50_000, arrival="poisson:2000", zipf_s=1.1)
    first = run_scenario("banking_openloop", open_loop=dict(block), **OPEN_LOOP_SMALL)
    second = run_scenario("banking_openloop", open_loop=dict(block), **OPEN_LOOP_SMALL)
    assert first.passed, first.invariant_violations
    assert first.digest() == second.digest()
    load = first.open_loop
    assert load["offered"] == OPEN_LOOP_SMALL["ops"]
    assert load["users"]["size"] == 50_000
    # coordinated omission is measured: intended-vs-actual lateness is
    # reported, and no admitted op ever waited past the admission bound
    assert load["lateness"]["count"] == load["admitted"]
    assert load["lateness"]["max_ms"] <= load["config"]["max_lateness_ms"] + 1e-6
    assert load["response"]["max_ms"] <= load["slo_ms"] + 1e-6
    # queue-depth gauges were sampled on the virtual clock
    gauges = first.metrics["gauges"]
    assert any(name.startswith("load.") for name in gauges)


def test_open_loop_overload_sheds_instead_of_collapsing():
    result = run_scenario(
        "banking_openloop",
        open_loop=dict(
            users=20_000,
            arrival="constant:30000",  # far past 2 nodes x 1 channel capacity
            service_time_ms=0.2,
            max_lateness_ms=5.0,
            max_shed_fraction=1.0,
        ),
        **OPEN_LOOP_SMALL,
    )
    load = result.open_loop
    assert load["shed"] > 0
    assert 0.0 < load["goodput"]["goodput_fraction"] < 1.0
    # the money oracle still holds: shed ops had no effect, admitted
    # ones committed — and every admitted op still met the SLO
    assert result.passed, result.invariant_violations
    assert load["response"]["max_ms"] <= load["slo_ms"] + 1e-6


def test_open_loop_zipf_concentrates_load_on_the_hot_shard():
    result = run_scenario(
        "banking_openloop",
        open_loop=dict(users=10_000, arrival="poisson:2000", zipf_s=1.5),
        **OPEN_LOOP_SMALL,
    )
    stations = result.open_loop["stations"]
    offered = sorted(
        (s["admitted"] + s["shed"] for s in stations.values()), reverse=True
    )
    assert len(offered) >= 2
    assert offered[0] > 2 * offered[1]  # rank-1 partitions dominate


def test_think_time_is_rejected_under_open_loop():
    with pytest.raises(ScenarioError, match="think_time"):
        run_scenario(
            "banking_openloop",
            think_time_ms=5.0,
            open_loop=dict(users=100),
            **{k: v for k, v in OPEN_LOOP_SMALL.items()},
        )


def test_open_loop_only_scenario_rejects_closed_loop_runs():
    with pytest.raises(ScenarioError, match="open-loop"):
        run_scenario("banking_openloop", **OPEN_LOOP_SMALL)


def test_unknown_open_loop_option_is_rejected():
    with pytest.raises(ScenarioError, match="zipf_exponent"):
        run_scenario(
            "banking_openloop",
            open_loop=dict(users=100, zipf_exponent=2.0),
            **OPEN_LOOP_SMALL,
        )
