"""Property-based tests for the OCL evaluator (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.ocl import evaluate

ints = st.integers(-50, 50)
int_lists = st.lists(ints, max_size=12)


def _seq(values):
    return "Sequence{" + ",".join(str(v) for v in values) + "}"


@given(int_lists)
@settings(max_examples=80, deadline=None)
def test_size_matches_python(values):
    assert evaluate(_seq(values) + "->size()") == len(values)


@given(int_lists)
@settings(max_examples=80, deadline=None)
def test_sum_matches_python(values):
    assert evaluate(_seq(values) + "->sum()") == sum(values)


@given(int_lists, ints)
@settings(max_examples=80, deadline=None)
def test_select_reject_partition(values, pivot):
    selected = evaluate(_seq(values) + f"->select(x | x > {pivot})")
    rejected = evaluate(_seq(values) + f"->reject(x | x > {pivot})")
    assert sorted(selected + rejected) == sorted(values)
    assert all(v > pivot for v in selected)
    assert all(v <= pivot for v in rejected)


@given(int_lists)
@settings(max_examples=80, deadline=None)
def test_sorted_by_sorts(values):
    result = evaluate(_seq(values) + "->sortedBy(x | x)")
    assert result == sorted(values)


@given(int_lists)
@settings(max_examples=80, deadline=None)
def test_as_set_removes_duplicates_keeps_order(values):
    result = evaluate(_seq(values) + "->asSet()")
    expected = list(dict.fromkeys(values))
    assert result == expected


@given(int_lists, ints)
@settings(max_examples=80, deadline=None)
def test_includes_matches_python(values, needle):
    assert evaluate(_seq(values) + f"->includes({needle})") == (needle in values)


@given(int_lists)
@settings(max_examples=80, deadline=None)
def test_reverse_involution(values):
    assert evaluate(_seq(values) + "->reverse()->reverse()") == values


@given(int_lists, int_lists)
@settings(max_examples=80, deadline=None)
def test_union_concatenates(xs, ys):
    assert evaluate(_seq(xs) + "->union(" + _seq(ys) + ")") == xs + ys


@given(ints, ints)
@settings(max_examples=80, deadline=None)
def test_arithmetic_matches_python(a, b):
    assert evaluate(f"{a} + {b}") == a + b
    assert evaluate(f"{a} * {b}") == a * b
    assert evaluate(f"{a} - {b}") == a - b
    assert evaluate(f"({a}).max({b})") == max(a, b)
    assert evaluate(f"({a}).min({b})") == min(a, b)


@given(ints, ints)
@settings(max_examples=80, deadline=None)
def test_comparison_trichotomy(a, b):
    lt = evaluate(f"{a} < {b}")
    gt = evaluate(f"{a} > {b}")
    eq = evaluate(f"{a} = {b}")
    assert [lt, gt, eq].count(True) == 1


@given(st.booleans(), st.booleans())
@settings(max_examples=20, deadline=None)
def test_implies_truth_table(p, q):
    text = f"{str(p).lower()} implies {str(q).lower()}"
    assert evaluate(text) == ((not p) or q)


@given(int_lists)
@settings(max_examples=80, deadline=None)
def test_forall_exists_duality(values):
    all_pos = evaluate(_seq(values) + "->forAll(x | x > 0)")
    neg_exists = evaluate("not " + _seq(values) + "->exists(x | not (x > 0))")
    assert all_pos == neg_exists
