"""Property-based tests (hypothesis) for kernel invariants.

Two core invariants are hammered with random operation sequences:

1. **Opposite symmetry** — after any sequence of link mutations,
   ``a.f contains b  <=>  b.g contains a``;
2. **Undo round-trip** — replaying inverted notifications in reverse order
   restores the exact prior state (the repository's foundation).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.metamodel import UNBOUNDED, MetamodelBuilder, ModelResource, validate
from repro.repository.undo import ChangeRecorder, _apply_inverse


def _build_metamodel():
    b = MetamodelBuilder("prop")
    node = b.metaclass("Node")
    b.attribute(node, "label", b.STRING)
    b.reference(node, "friends", node, upper=UNBOUNDED, opposite="friendOf")
    b.reference(node, "friendOf", node, upper=UNBOUNDED)
    b.reference(node, "best", node)
    b.build()
    return node


NODE = _build_metamodel()

N_OBJECTS = 5

link_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "set_best", "unset_best", "label"]),
        st.integers(0, N_OBJECTS - 1),
        st.integers(0, N_OBJECTS - 1),
    ),
    max_size=30,
)


def _apply(ops, nodes):
    for op, i, j in ops:
        a, b = nodes[i], nodes[j]
        try:
            if op == "add":
                a.friends.append(b)
            elif op == "remove":
                a.friends.remove(b)
            elif op == "set_best":
                a.best = b
            elif op == "unset_best":
                a.unset("best")
            else:
                a.label = f"n{i}-{j}"
        except ModelError:
            pass  # duplicate insert / missing remove are legal no-ops here


@given(link_ops)
@settings(max_examples=60, deadline=None)
def test_opposite_symmetry_invariant(ops):
    nodes = [NODE() for _ in range(N_OBJECTS)]
    _apply(ops, nodes)
    for a in nodes:
        for b in nodes:
            forward = any(x is b for x in a.friends)
            backward = any(x is a for x in b.friendOf)
            assert forward == backward


@given(link_ops)
@settings(max_examples=60, deadline=None)
def test_validation_clean_after_random_mutations(ops):
    nodes = [NODE() for _ in range(N_OBJECTS)]
    _apply(ops, nodes)
    assert validate(nodes) == []


def _state_fingerprint(nodes):
    out = []
    for n in nodes:
        friends = tuple(x.uuid for x in n.friends)
        friend_of = tuple(x.uuid for x in n.friendOf)
        best = n.best.uuid if n.best is not None else None
        out.append((n.get("label"), friends, friend_of, best))
    return tuple(out)


@given(link_ops, link_ops)
@settings(max_examples=60, deadline=None)
def test_undo_restores_exact_prior_state(setup_ops, mutation_ops):
    resource = ModelResource("prop")
    nodes = [NODE() for _ in range(N_OBJECTS)]
    for n in nodes:
        resource.add_root(n)
    _apply(setup_ops, nodes)
    before = _state_fingerprint(nodes)

    recorder = ChangeRecorder(resource)
    _apply(mutation_ops, nodes)
    changes = recorder.take()
    with recorder.paused():
        for notification in reversed(changes):
            _apply_inverse(notification)

    assert _state_fingerprint(nodes) == before
    assert validate(nodes) == []


@given(st.lists(st.text(min_size=1, max_size=8), max_size=10))
@settings(max_examples=40, deadline=None)
def test_mlist_mirrors_python_list_semantics(items):
    shadow = []
    # append/pop parity on a string attribute collection
    b = MetamodelBuilder("m2")
    c = b.metaclass("C")
    b.attribute(c, "xs", b.STRING, upper=UNBOUNDED)
    b.build()
    obj = c()
    for item in items:
        obj.xs.append(item)
        shadow.append(item)
        assert list(obj.xs) == shadow
    while shadow:
        assert obj.xs.pop() == shadow.pop()
        assert list(obj.xs) == shadow
