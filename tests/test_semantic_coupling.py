"""E9 — the semantic-coupling experiment.

Kienzle & Guerraoui (ECOOP 2002, cited as [8]) argue that a *generic*
transactional aspect cannot make previously non-transactional code behave
transactionally, because the aspect lacks application semantics.  The
paper's answer: derive the concrete aspect from the concrete model
transformation's parameter set ``Si``.

This test builds the same bank application three ways and compares the
observable outcome of a failing ``transfer``:

* **no aspect** — money is lost (withdraw happened, deposit failed);
* **naively generic aspect** — wraps every method but, knowing no state
  classes, enlists nothing: money is still lost;
* **Si-specialized aspect (the paper's proposal)** — the failing transfer
  is rolled back atomically.
"""

import pytest

from repro.aop import Aspect
from repro.codegen import compile_model
from repro.core import MiddlewareServices
from repro.core.registry import default_registry

from helpers import build_bank_model


def _fresh_app(module_name):
    resource, model = build_bank_model()
    module = compile_model(model, module_name)
    return module


def _failing_transfer(module, services=None):
    """Run a transfer that fails at the deposit step; return final balances."""
    bank = module.Bank()
    source = module.Account(balance=100.0)
    target = module.Account(balance=0.0)
    # make the deposit step fail after withdraw already succeeded
    original_deposit = module.Account.deposit

    def poisoned_deposit(self, amount):
        raise RuntimeError("deposit crashed")

    module.Account.deposit = poisoned_deposit
    try:
        with pytest.raises(Exception):
            bank.transfer(source, target, 40.0)
    finally:
        module.Account.deposit = original_deposit
    return source.balance, target.balance


class TestSemanticCoupling:
    def test_without_aspect_money_is_lost(self):
        module = _fresh_app("coupling_plain")
        source_balance, target_balance = _failing_transfer(module)
        assert source_balance == 60.0  # withdraw went through; 40 vanished
        assert target_balance == 0.0

    def test_naive_generic_aspect_still_loses_money(self):
        """A transactional aspect with no application knowledge: it wraps
        every call in a transaction but cannot know which objects carry
        transactional state, so nothing is enlisted and nothing rolls back."""
        module = _fresh_app("coupling_naive")
        services = MiddlewareServices.create()
        weaver = services.weaver
        weaver.weave_class(module.Account)
        weaver.weave_class(module.Bank)
        naive = Aspect("naive_generic_tx")

        @naive.around("call(*.*)")
        def wrap(inv):
            with services.transactions.transaction():
                # generic aspect: no Si, no state_classes -> no enlistment
                return inv.proceed()

        weaver.deploy(naive)
        source_balance, target_balance = _failing_transfer(module)
        assert source_balance == 60.0  # still lost
        assert target_balance == 0.0
        assert services.transactions.aborts >= 1  # it even aborted — uselessly

    def test_si_specialized_aspect_preserves_atomicity(self):
        """The paper's proposal: CA derived from the CMT's Si knows both the
        transactional operations and the state classes."""
        module = _fresh_app("coupling_si")
        services = MiddlewareServices.create()
        registry = default_registry()
        cmt = registry.get("transactions").specialize(
            transactional_ops=["Bank.transfer", "Account.withdraw", "Account.deposit"],
            state_classes=["Account"],
        )
        ca = cmt.derive_aspect()
        weaver = services.weaver
        weaver.weave_class(module.Account)
        weaver.weave_class(module.Bank)
        weaver.deploy(ca.build(services))
        source_balance, target_balance = _failing_transfer(module)
        assert source_balance == 100.0  # rolled back: no money lost
        assert target_balance == 0.0
        assert services.transactions.aborts == 1

    def test_si_aspect_commits_successful_transfers(self):
        module = _fresh_app("coupling_ok")
        services = MiddlewareServices.create()
        registry = default_registry()
        ca = registry.get("transactions").specialize(
            transactional_ops=["Bank.transfer", "Account.withdraw", "Account.deposit"],
            state_classes=["Account"],
        ).derive_aspect()
        services.weaver.weave_class(module.Account)
        services.weaver.weave_class(module.Bank)
        services.weaver.deploy(ca.build(services))
        bank = module.Bank()
        a, b = module.Account(balance=10.0), module.Account(balance=0.0)
        assert bank.transfer(a, b, 4.0) is True
        assert (a.balance, b.balance) == (6.0, 4.0)
        assert services.transactions.commits == 1
