"""XMI round-trip and error-handling tests (S4)."""

import io

import pytest

from repro.errors import XmiReadError, XmiWriteError
from repro.metamodel import ModelResource, validate
from repro.uml import (
    UML,
    add_association,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    find_element,
    get_tag,
    new_model,
)
from repro.xmi import parse_xmi, read_xmi, write_xmi, xmi_string
from repro.xmi.writer import encode_any
from repro.xmi.reader import decode_any


def _roundtrip(resource):
    return parse_xmi(xmi_string(resource), UML.package)


class TestRoundTrip:
    def test_empty_model(self):
        res, _ = new_model("empty")
        res2 = _roundtrip(res)
        assert res2.roots[0].name == "empty"
        assert res2.name == res.name

    def test_structure_preserved(self, bank_model):
        res, model = bank_model
        res2 = _roundtrip(res)
        model2 = res2.roots[0]
        acc2 = find_element(model2, "accounts.Account")
        assert [a.name for a in acc2.attributes] == ["number", "balance"]
        assert [o.name for o in acc2.operations] == [
            "deposit",
            "withdraw",
            "getBalance",
        ]
        assert validate(res2) == []

    def test_cross_references_resolved(self, bank_model):
        res, model = bank_model
        res2 = _roundtrip(res)
        model2 = res2.roots[0]
        acc2 = find_element(model2, "accounts.Account")
        balance = acc2.attributes[1]
        assert balance.type.name == "Real"
        assert balance.type is find_element(model2, "Real")

    def test_superclass_references(self):
        res, model = new_model("m")
        pkg = add_package(model, "p")
        base = add_class(pkg, "Base")
        add_operation(base, "op")
        sub = add_class(pkg, "Sub", superclasses=[base])
        res2 = _roundtrip(res)
        sub2 = find_element(res2.roots[0], "p.Sub")
        assert sub2.superclasses[0].name == "Base"

    def test_stereotypes_and_typed_tags(self):
        res, model = new_model("m")
        cls = add_class(add_package(model, "p"), "C")
        add_operation(cls, "op")
        apply_stereotype(cls, "Marked", text="hello", count=3, ratio=0.5, flag=True)
        res2 = _roundtrip(res)
        cls2 = find_element(res2.roots[0], "p.C")
        assert get_tag(cls2, "Marked", "text") == "hello"
        assert get_tag(cls2, "Marked", "count") == 3
        assert get_tag(cls2, "Marked", "ratio") == 0.5
        assert get_tag(cls2, "Marked", "flag") is True

    def test_associations(self):
        res, model = new_model("m")
        pkg = add_package(model, "p")
        a = add_class(pkg, "A")
        b = add_class(pkg, "B")
        add_association(pkg, "ab", ("left", a), ("right", b))
        res2 = _roundtrip(res)
        assoc = find_element(res2.roots[0], "p.ab")
        assert [e.type.name for e in assoc.ends] == ["A", "B"]

    def test_multiple_roots(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        res = ModelResource("multi")
        s1, s2 = Shelf(), Shelf()
        s1.books.append(Book(title="A"))
        res.add_root(s1)
        res.add_root(s2)
        res2 = parse_xmi(xmi_string(res), library_metamodel["package"])
        assert len(res2.roots) == 2
        assert res2.roots[0].books[0].title == "A"

    def test_stability_modulo_ids(self, bank_model):
        import re

        res, _ = bank_model
        def strip(text):
            return re.sub(r'"o\d+( o\d+)*"', '""', text)

        first = xmi_string(res)
        second = xmi_string(_roundtrip(res))
        assert strip(first) == strip(second)

    def test_file_io(self, tmp_path, bank_model):
        res, _ = bank_model
        path = str(tmp_path / "model.xmi")
        write_xmi(res, path)
        res2 = read_xmi(path, UML.package)
        assert res2.roots[0].name == "bank"

    def test_stream_io(self, bank_model):
        res, _ = bank_model
        buffer = io.StringIO()
        write_xmi(res, buffer)
        buffer.seek(0)
        res2 = read_xmi(buffer, UML.package)
        assert res2.roots[0].name == "bank"


class TestAnyEncoding:
    @pytest.mark.parametrize(
        "value", ["text", "", 0, -17, 3.5, True, False]
    )
    def test_roundtrip(self, value):
        decoded = decode_any(encode_any(value))
        assert decoded == value and type(decoded) is type(value)

    def test_unserializable_rejected(self):
        with pytest.raises(XmiWriteError):
            encode_any(object())

    def test_unknown_marker_rejected(self):
        with pytest.raises(XmiReadError):
            decode_any("weird:stuff")


class TestReaderErrors:
    def test_malformed_xml(self):
        with pytest.raises(XmiReadError):
            parse_xmi("<not-closed", UML.package)

    def test_wrong_root_tag(self):
        with pytest.raises(XmiReadError):
            parse_xmi("<Other/>", UML.package)

    def test_missing_content(self):
        with pytest.raises(XmiReadError):
            parse_xmi('<XMI xmi.version="1.2"/>', UML.package)

    def test_unknown_metaclass(self):
        doc = (
            '<XMI xmi.version="1.2"><XMI.content>'
            '<nope.Thing xmi.id="o1"/></XMI.content></XMI>'
        )
        with pytest.raises(XmiReadError):
            parse_xmi(doc, UML.package)

    def test_missing_id(self):
        doc = (
            '<XMI xmi.version="1.2"><XMI.content>'
            '<uml.Model name="m"/></XMI.content></XMI>'
        )
        with pytest.raises(XmiReadError):
            parse_xmi(doc, UML.package)

    def test_duplicate_id(self):
        doc = (
            '<XMI xmi.version="1.2"><XMI.content>'
            '<uml.Model xmi.id="x" name="a"/><uml.Model xmi.id="x" name="b"/>'
            "</XMI.content></XMI>"
        )
        with pytest.raises(XmiReadError):
            parse_xmi(doc, UML.package)

    def test_unknown_feature(self):
        doc = (
            '<XMI xmi.version="1.2"><XMI.content>'
            '<uml.Model xmi.id="o1" name="m" bogus="1"/></XMI.content></XMI>'
        )
        with pytest.raises(XmiReadError):
            parse_xmi(doc, UML.package)

    def test_unresolved_idref(self):
        doc = (
            '<XMI xmi.version="1.2"><XMI.content>'
            '<uml.Class xmi.id="o1" name="C" superclasses="missing"/>'
            "</XMI.content></XMI>"
        )
        with pytest.raises(XmiReadError):
            parse_xmi(doc, UML.package)
