"""Shipping & reuse tests (§2's open question, implemented and verified)."""

import pytest

from repro.core import (
    ComponentPackage,
    MdaLifecycle,
    MiddlewareServices,
    ShippingError,
    model_fingerprint,
    replay,
    ship,
)
from repro.uml import UML, find_element, has_stereotype
from repro.xmi import parse_xmi

from helpers import FULL_BANK_PARAMS, build_bank_model


@pytest.fixture()
def shipped(lifecycle):
    for concern, params in FULL_BANK_PARAMS.items():
        lifecycle.apply_concern(concern, **params)
    return ship(lifecycle)


class TestFingerprint:
    def test_equal_models_equal_fingerprints(self):
        r1, _ = build_bank_model()
        r2, _ = build_bank_model()
        assert model_fingerprint(r1) == model_fingerprint(r2)

    def test_fingerprint_detects_changes(self):
        r1, m1 = build_bank_model()
        r2, m2 = build_bank_model()
        find_element(m2, "accounts.Account").name = "Konto"
        assert model_fingerprint(r1) != model_fingerprint(r2)

    def test_fingerprint_ignores_uuids(self):
        resource, _ = build_bank_model()
        text = __import__("repro.xmi", fromlist=["xmi_string"]).xmi_string(resource)
        restored = parse_xmi(text, UML.package)
        assert model_fingerprint(resource) == model_fingerprint(restored)


class TestShip:
    def test_package_contents(self, shipped):
        assert shipped.name == "bank"
        assert len(shipped.steps) == 3
        assert [s.concern for s in shipped.steps] == [
            "distribution",
            "transactions",
            "security",
        ]
        assert shipped.steps[0].parameters["server_classes"] == ["Account"]
        assert len(shipped.aspect_sources) == 3
        assert "<?xml" in shipped.initial_model_xmi
        assert "<?xml" in shipped.final_model_xmi

    def test_initial_model_is_pre_refinement(self, shipped):
        initial = parse_xmi(shipped.initial_model_xmi, UML.package)
        account = find_element(initial.roots[0], "accounts.Account")
        assert not has_stereotype(account, "Remote")
        final = parse_xmi(shipped.final_model_xmi, UML.package)
        account_final = find_element(final.roots[0], "accounts.Account")
        assert has_stereotype(account_final, "Remote")

    def test_empty_lifecycle_rejected(self, bank_resource, services):
        lifecycle = MdaLifecycle(bank_resource, services=services)
        with pytest.raises(ShippingError):
            ship(lifecycle)

    def test_json_roundtrip(self, shipped):
        text = shipped.to_json()
        restored = ComponentPackage.from_json(text)
        assert restored.name == shipped.name
        assert restored.steps == shipped.steps
        assert restored.final_model_xmi == shipped.final_model_xmi

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ShippingError):
            ComponentPackage.from_json("not json at all")
        with pytest.raises(ShippingError):
            ComponentPackage.from_json('{"format": "something-else"}')


class TestReplay:
    def test_replay_reproduces_final_model(self, shipped):
        lifecycle = replay(shipped, services=MiddlewareServices.create())
        replayed = model_fingerprint(lifecycle.repository.resource)
        expected = model_fingerprint(parse_xmi(shipped.final_model_xmi, UML.package))
        assert replayed == expected

    def test_replayed_lifecycle_is_usable(self, shipped):
        lifecycle = replay(shipped, services=MiddlewareServices.create())
        module = lifecycle.build_application("replayed_bank")
        services = lifecycle.services
        services.credentials.add_user("alice", "pw", roles=["teller"])
        credential = services.auth.login("alice", "pw")
        bank = module.Bank()
        a, b = module.Account(balance=10.0), module.Account(balance=0.0)
        with services.orb.call_context(credentials=credential.token):
            assert bank.transfer(a, b, 4.0) is True
        assert (a.balance, b.balance) == (6.0, 4.0)

    def test_replay_detects_divergence(self, shipped):
        # corrupt a shipped step so the replayed model differs
        broken = ComponentPackage.from_json(shipped.to_json())
        broken.steps[0] = type(broken.steps[0])(
            "distribution",
            "T_distribution",
            {"server_classes": ["Bank"], "registry_prefix": "bank"},
        )
        with pytest.raises(ShippingError):
            replay(broken, services=MiddlewareServices.create())

    def test_replay_without_verification(self, shipped):
        broken = ComponentPackage.from_json(shipped.to_json())
        broken.steps[0] = type(broken.steps[0])(
            "distribution",
            "T_distribution",
            {"server_classes": ["Bank"], "registry_prefix": "bank"},
        )
        lifecycle = replay(broken, services=MiddlewareServices.create(), verify=False)
        assert len(lifecycle.applied) == 3

    def test_shipped_aspect_sources_compile(self, shipped):
        for name, source in shipped.aspect_sources.items():
            compile(source, name, "exec")
