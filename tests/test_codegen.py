"""Code generation tests: functional backend and aspect backend (S9 / E14)."""

import enum

import pytest

from repro.codegen import (
    CodeWriter,
    compile_aspect,
    compile_model,
    generate_aspect_module,
    generate_module,
)
from repro.core.registry import default_registry
from repro.errors import CodegenError
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)


class TestCodeWriter:
    def test_indentation_blocks(self):
        w = CodeWriter()
        with w.block("class A:"):
            w.line("x = 1")
            with w.block("def m(self):"):
                w.line("return self.x")
        text = w.render()
        assert "class A:\n    x = 1\n    def m(self):\n        return self.x\n" == text

    def test_lines_reindents(self):
        w = CodeWriter()
        with w.block("def f():"):
            w.lines("a = 1\nreturn a")
        assert w.render() == "def f():\n    a = 1\n    return a\n"

    def test_blank_lines_stay_blank(self):
        w = CodeWriter()
        with w.block("def f():"):
            w.line()
            w.line("pass")
        assert "\n\n    pass" in w.render()


class TestFunctionalBackend:
    def test_bank_module_compiles_and_runs(self, bank_model):
        _, model = bank_model
        module = compile_model(model, "codegen_bank")
        account = module.Account(balance=10.0)
        assert account.deposit(5.0) == 15.0
        assert account.withdraw(3.0) == 12.0
        with pytest.raises(ValueError):
            account.withdraw(99.0)

    def test_defaults_by_type(self, bank_model):
        _, model = bank_model
        module = compile_model(model, "codegen_defaults")
        account = module.Account()
        assert account.number == "" and account.balance == 0.0

    def test_inheritance_order(self):
        res, model = new_model("m")
        prims = ensure_primitives(model)
        pkg = add_package(model, "p")
        # declare subclass before superclass to force topological sorting
        base = add_class(pkg, "Base")
        add_attribute(base, "x", prims["Integer"])
        sub = add_class(pkg, "Sub", superclasses=[base])
        add_attribute(sub, "y", prims["Integer"])
        model.ownedElements  # keep order as-is
        module = compile_model(model, "codegen_inherit")
        obj = module.Sub(x=1, y=2)
        assert (obj.x, obj.y) == (1, 2)
        assert issubclass(module.Sub, module.Base)

    def test_enumerations_generated(self):
        from repro.uml.metamodel import UML

        res, model = new_model("m")
        pkg = add_package(model, "p")
        enum_el = UML.Enumeration(name="Color")
        for lit in ("RED", "GREEN"):
            enum_el.literals.append(UML.EnumerationLiteral(name=lit))
        pkg.ownedElements.append(enum_el)
        cls = add_class(pkg, "Shape")
        prop = UML.Property(name="color")
        prop.type = enum_el
        cls.attributes.append(prop)
        module = compile_model(model, "codegen_enum")
        assert issubclass(module.Color, enum.Enum)
        assert module.Shape().color is module.Color.RED

    def test_abstract_operation_raises(self):
        res, model = new_model("m")
        cls = add_class(add_package(model, "p"), "A")
        add_operation(cls, "todo", abstract=True)
        module = compile_model(model, "codegen_abs")
        with pytest.raises(NotImplementedError):
            module.A().todo()

    def test_bodyless_operation_raises(self):
        res, model = new_model("m")
        cls = add_class(add_package(model, "p"), "A")
        add_operation(cls, "mystery")
        module = compile_model(model, "codegen_nobody")
        with pytest.raises(NotImplementedError):
            module.A().mystery()

    def test_generated_stereotype_skipped(self):
        res, model = new_model("m")
        pkg = add_package(model, "p")
        add_class(pkg, "Keep")
        infra = add_class(pkg, "Broker")
        apply_stereotype(infra, "Generated", by="distribution")
        source = generate_module(model)
        assert "class Keep" in source and "class Broker" not in source

    def test_bad_identifier_rejected(self):
        res, model = new_model("m")
        add_class(add_package(model, "p"), "Not A Name")
        with pytest.raises(CodegenError):
            generate_module(model)

    def test_keyword_rejected(self):
        res, model = new_model("m")
        add_class(add_package(model, "p"), "class")
        with pytest.raises(CodegenError):
            generate_module(model)

    def test_inheritance_cycle_detected(self):
        res, model = new_model("m")
        pkg = add_package(model, "p")
        a = add_class(pkg, "A")
        b = add_class(pkg, "B")
        # force a cycle at the UML level (kernel allows it; codegen must not)
        a.superclasses.append(b)
        b.superclasses.append(a)
        with pytest.raises(CodegenError):
            generate_module(model)

    def test_source_attached_to_module(self, bank_model):
        _, model = bank_model
        module = compile_model(model, "codegen_src")
        assert "class Account" in module.__source__

    def test_multivalued_attribute_defaults_to_list(self):
        from repro.metamodel import UNBOUNDED

        res, model = new_model("m")
        prims = ensure_primitives(model)
        cls = add_class(add_package(model, "p"), "Box")
        add_attribute(cls, "items", prims["String"], lower=0, upper=UNBOUNDED)
        module = compile_model(model, "codegen_many")
        assert module.Box().items == []


class TestAspectBackend:
    @pytest.fixture()
    def concrete_aspect(self):
        registry = default_registry()
        gmt = registry.get("transactions")
        cmt = gmt.specialize(
            transactional_ops=["Account.withdraw"], state_classes=["Account"]
        )
        return cmt.derive_aspect()

    def test_generated_source_shape(self, concrete_aspect):
        source = generate_aspect_module(concrete_aspect)
        assert "from repro.concerns.transactions.aspect import build" in source
        assert "'transactional_ops': ['Account.withdraw']" in source
        assert "def build_aspect(services):" in source
        compile(source, "ca", "exec")

    def test_compiled_aspect_builds_runtime_aspect(self, concrete_aspect, services):
        module = compile_aspect(concrete_aspect, "gen_ca")
        aspect = module.build_aspect(services)
        assert aspect.name == module.ASPECT_NAME
        assert aspect.advices  # the around advice exists

    def test_parameters_are_literals(self, concrete_aspect):
        import ast

        source = generate_aspect_module(concrete_aspect)
        tree = ast.parse(source)
        assigns = {
            t.targets[0].id: t.value
            for t in tree.body
            if isinstance(t, ast.Assign) and isinstance(t.targets[0], ast.Name)
        }
        params = ast.literal_eval(assigns["PARAMETERS"])
        assert params["state_classes"] == ["Account"]

    def test_missing_factory_ref_rejected(self, services):
        from repro.aop import Aspect
        from repro.core import Concern, GenericAspect, GenericTransformation, ParameterSignature

        sig = ParameterSignature()
        ga = GenericAspect("A_x", sig, lambda p, s: Aspect("x"))  # no factory_ref
        gmt = GenericTransformation("T_x", Concern("x"), sig)
        gmt.associate_aspect(ga)
        ca = gmt.specialize().derive_aspect()
        with pytest.raises(CodegenError):
            generate_aspect_module(ca)

    def test_unrepresentable_parameter_rejected(self):
        from repro.aop import Aspect
        from repro.core import Concern, GenericAspect, GenericTransformation, Parameter, ParameterSignature

        sig = ParameterSignature([Parameter("fn", object)])
        ga = GenericAspect("A_y", sig, lambda p, s: Aspect("y"), factory_ref="a.b:c")
        gmt = GenericTransformation("T_y", Concern("y"), sig)
        gmt.associate_aspect(ga)
        ca = gmt.specialize(fn=lambda: None).derive_aspect()
        with pytest.raises(CodegenError):
            generate_aspect_module(ca)
