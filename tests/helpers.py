"""Shared model builders imported explicitly by test modules.

Kept out of ``conftest.py`` so test modules can ``from helpers import
build_bank_model`` without relying on conftest module resolution (which
is ambiguous when ``benchmarks/conftest.py`` is also importable).
Benchmark fixtures stay self-contained in ``benchmarks/conftest.py``.
"""

from __future__ import annotations

from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)


def build_bank_model():
    """The functional banking PIM with executable operation bodies."""
    resource, model = new_model("bank")
    prims = ensure_primitives(model)
    pkg = add_package(model, "accounts")

    account = add_class(pkg, "Account")
    add_attribute(account, "number", prims["String"])
    add_attribute(account, "balance", prims["Real"])
    deposit = add_operation(
        account, "deposit", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        deposit, "PythonBody", body="self.balance += amount\nreturn self.balance"
    )
    withdraw = add_operation(
        account, "withdraw", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        withdraw,
        "PythonBody",
        body=(
            "if amount > self.balance:\n"
            "    raise ValueError('insufficient funds')\n"
            "self.balance -= amount\n"
            "return self.balance"
        ),
    )
    get_balance = add_operation(account, "getBalance", return_type=prims["Real"])
    apply_stereotype(get_balance, "PythonBody", body="return self.balance")

    bank = add_class(pkg, "Bank")
    transfer = add_operation(
        bank,
        "transfer",
        [("source", None), ("target", None), ("amount", prims["Real"])],
        return_type=prims["Boolean"],
    )
    apply_stereotype(
        transfer,
        "PythonBody",
        body="source.withdraw(amount)\ntarget.deposit(amount)\nreturn True",
    )
    return resource, model


FULL_BANK_PARAMS = {
    "distribution": dict(server_classes=["Account"], registry_prefix="bank"),
    "transactions": dict(
        transactional_ops=["Bank.transfer", "Account.withdraw", "Account.deposit"],
        state_classes=["Account"],
    ),
    "security": dict(
        protected_ops=["Bank.transfer"], role_grants={"teller": ["Bank.*"]}
    ),
}
