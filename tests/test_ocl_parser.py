"""Lexer and parser tests for the OCL subset (S3)."""

import pytest

from repro.errors import OclSyntaxError
from repro.ocl import parse
from repro.ocl.astnodes import (
    AllInstances,
    Binary,
    CollectionCall,
    CollectionLiteral,
    If,
    IteratorCall,
    Let,
    Navigate,
    OperationCall,
    Unary,
    Variable,
)
from repro.ocl.lexer import tokenize


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("1 2.5")
        assert [(t.kind, t.value) for t in tokens[:2]] == [
            ("NUMBER", "1"),
            ("NUMBER", "2.5"),
        ]

    def test_strings_with_escapes(self):
        tokens = tokenize(r"'a\'b'")
        assert tokens[0].value == "a'b"

    def test_unterminated_string(self):
        with pytest.raises(OclSyntaxError):
            tokenize("'abc")

    def test_keywords_vs_names(self):
        tokens = tokenize("and andy")
        assert tokens[0].kind == "KEYWORD"
        assert tokens[1].kind == "NAME"

    def test_comments_skipped(self):
        tokens = tokenize("1 -- a comment\n+ 2")
        values = [t.value for t in tokens if t.kind != "EOF"]
        assert values == ["1", "+", "2"]

    def test_multi_char_operators(self):
        values = [t.value for t in tokenize("-> <= >= <> ::") if t.kind == "OP"]
        assert values == ["->", "<=", ">=", "<>", "::"]

    def test_unexpected_character(self):
        with pytest.raises(OclSyntaxError):
            tokenize("a @ b")


class TestParserShapes:
    def test_precedence_arithmetic(self):
        ast = parse("1 + 2 * 3")
        assert isinstance(ast, Binary) and ast.op == "+"
        assert isinstance(ast.right, Binary) and ast.right.op == "*"

    def test_precedence_logic(self):
        ast = parse("a or b and c implies d")
        assert ast.op == "implies"
        assert ast.left.op == "or"
        assert ast.left.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        ast = parse("not a and b")
        assert ast.op == "and"
        assert isinstance(ast.left, Unary) and ast.left.op == "not"

    def test_unary_minus(self):
        ast = parse("-x + 1")
        assert ast.op == "+"
        assert isinstance(ast.left, Unary)

    def test_navigation_chain(self):
        ast = parse("self.a.b")
        assert isinstance(ast, Navigate) and ast.name == "b"
        assert isinstance(ast.source, Navigate) and ast.source.name == "a"

    def test_operation_call(self):
        ast = parse("s.concat('x')")
        assert isinstance(ast, OperationCall)
        assert ast.name == "concat" and len(ast.args) == 1

    def test_all_instances_special_form(self):
        ast = parse("Class.allInstances()")
        assert isinstance(ast, AllInstances) and ast.type_name == "Class"

    def test_collection_call(self):
        ast = parse("xs->size()")
        assert isinstance(ast, CollectionCall) and ast.name == "size"

    def test_iterator_call_with_variable(self):
        ast = parse("xs->select(x | x > 1)")
        assert isinstance(ast, IteratorCall)
        assert ast.variables == ("x",)

    def test_iterator_call_two_variables(self):
        ast = parse("xs->forAll(a, b | a = b)")
        assert ast.variables == ("a", "b")

    def test_iterator_call_implicit_variable(self):
        ast = parse("xs->collect(y + 1)") if False else parse("xs->exists(true)")
        assert isinstance(ast, IteratorCall)
        assert ast.variables == ("__implicit__",)

    def test_iterator_with_type_annotation(self):
        ast = parse("xs->select(x : Integer | x > 1)")
        assert ast.variables == ("x",)

    def test_iterator_requires_body(self):
        with pytest.raises(OclSyntaxError):
            parse("xs->forAll()")

    def test_collection_literal_kinds(self):
        for kind in ("Set", "Sequence", "Bag", "OrderedSet"):
            ast = parse(kind + "{1, 2}")
            assert isinstance(ast, CollectionLiteral)
            assert ast.kind == kind and len(ast.items) == 2

    def test_empty_collection_literal(self):
        assert parse("Sequence{}").items == ()

    def test_if_expression(self):
        ast = parse("if a then 1 else 2 endif")
        assert isinstance(ast, If)

    def test_let_expression(self):
        ast = parse("let x = 1 in x + 1")
        assert isinstance(ast, Let) and ast.name == "x"

    def test_let_with_type_annotation(self):
        ast = parse("let x : Integer = 1 in x")
        assert isinstance(ast, Let)

    def test_qualified_type_name(self):
        ast = parse("uml::Class")
        assert isinstance(ast, Variable) and ast.name == "uml::Class"

    def test_literals(self):
        assert parse("true").value is True
        assert parse("false").value is False
        assert parse("null").value is None
        assert parse("'s'").value == "s"
        assert parse("3.5").value == 3.5

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OclSyntaxError):
            parse("1 + 2 extra")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(OclSyntaxError):
            parse("(1 + 2")

    def test_error_carries_position(self):
        with pytest.raises(OclSyntaxError) as excinfo:
            parse("1 + ")
        assert excinfo.value.position is not None
