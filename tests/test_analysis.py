"""Concurrency toolkit: static analyzer, baseline, witness, tool exit codes."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis import witness
from repro.analysis.baseline import (
    Baseline,
    check_baseline,
    check_cycles,
    check_witness_edges,
    find_cycles,
)
from repro.analysis.lockgraph import analyze_paths
from repro.analysis.report import render_findings, render_graph

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO = Path(__file__).resolve().parents[1]
TOOL = REPO / "tools" / "check_concurrency.py"


def fixture(name: str) -> str:
    return str(FIXTURES / name)


# ---------------------------------------------------------------------------
# static analyzer
# ---------------------------------------------------------------------------


class TestLockGraph:
    def test_ab_ba_deadlock_detected(self):
        analysis = analyze_paths([fixture("deadlock.py")])
        assert ("fixture.a", "fixture.b") in analysis.graph.edges
        assert ("fixture.b", "fixture.a") in analysis.graph.edges
        cycles = find_cycles(analysis.graph)
        assert ["fixture.a", "fixture.b"] in cycles

    def test_cycle_finding_names_both_sites(self):
        analysis = analyze_paths([fixture("deadlock.py")])
        findings = check_cycles(analysis.graph)
        cycle = [f for f in findings if "fixture.a -> fixture.b" in f.message]
        assert len(cycle) == 1
        assert cycle[0].kind == "lock-cycle"
        assert cycle[0].severity == "error"
        assert "Deadlocky.ab" in cycle[0].message
        assert "Deadlocky.ba" in cycle[0].message

    def test_try_acquire_edge_cannot_close_cycle(self):
        analysis = analyze_paths([fixture("deadlock.py")])
        edge = analysis.graph.edges[("fixture.try_b", "fixture.try_a")]
        assert edge.trylock
        assert not any("try_a" in " ".join(c) for c in find_cycles(analysis.graph))

    def test_lock_through_helper_argument(self):
        analysis = analyze_paths([fixture("helper_lock.py")])
        edge = analysis.graph.edges.get(("fixture.outer", "fixture.inner"))
        assert edge is not None and not edge.trylock
        assert any("locked_call" in site[2] for site in edge.sites)

    def test_lock_through_helper_return(self):
        analysis = analyze_paths([fixture("helper_lock.py")])
        edge = analysis.graph.edges[("fixture.outer", "fixture.inner")]
        assert any("via_return" in site[2] for site in edge.sites)

    def test_clean_module_has_no_findings(self):
        analysis = analyze_paths([fixture("clean.py")])
        assert analysis.findings == []
        assert check_cycles(analysis.graph) == []
        assert set(analysis.graph.edges) == {("fixture.first", "fixture.second")}

    def test_edge_sites_point_into_fixture(self):
        analysis = analyze_paths([fixture("clean.py")])
        ((path, lineno, via),) = analysis.graph.edges[
            ("fixture.first", "fixture.second")
        ].sites[:1]
        assert path.endswith("clean.py") and lineno > 0
        assert via.endswith("Tidy.both")


class TestGuardedBy:
    @pytest.fixture(scope="class")
    def findings(self):
        return analyze_paths([fixture("guarded.py")]).findings

    def _guard_lines(self, findings):
        return {
            f.line for f in findings if f.kind == "guarded-by"
        }

    def test_exact_violation_set(self, findings):
        source = Path(fixture("guarded.py")).read_text().splitlines()
        expected = {
            i + 1
            for i, line in enumerate(source)
            if "self.count += 1" in line and "with" not in source[i - 1]
            or "self.items.append(0)" in line
            or "self.mapped = 3" in line
            or "self.count = 0" in line and "def __init__" not in source[i - 2]
        }
        # __init__ assignments are exempt; good() mutations are locked
        violations = [f for f in findings if f.kind == "guarded-by"]
        assert len(violations) == 4
        assert self._guard_lines(findings) <= expected

    def test_violation_messages_name_lock_and_field(self, findings):
        messages = [f.message for f in findings if f.kind == "guarded-by"]
        assert any("Counter.count" in m for m in messages)
        assert any("Counter.items" in m for m in messages)
        assert any("Counter.mapped" in m for m in messages)
        assert all("guarded.Counter._lock" in m for m in messages)

    def test_helper_reached_with_lock_is_clean(self, findings):
        # _helper_mutate is flagged via bad_via_helper's unlocked path,
        # but the locked path (good_via_helper) must not double-report
        helper = [
            f for f in findings
            if f.kind == "guarded-by" and "_helper_mutate" in f.message
        ]
        assert len(helper) == 1

    def test_init_is_exempt(self, findings):
        assert all(
            "in guarded.Counter.__init__" not in f.message for f in findings
        )


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def _baseline(self, **kw):
        base = {
            "hierarchy": [["fixture.first"], ["fixture.second"]],
            "edges": {("fixture.first", "fixture.second")},
            "self_nest_ok": set(),
        }
        base.update(kw)
        return Baseline(
            hierarchy=base["hierarchy"],
            edges=base["edges"],
            self_nest_ok=base["self_nest_ok"],
        )

    def test_clean_against_matching_baseline(self):
        analysis = analyze_paths([fixture("clean.py")])
        assert check_baseline(analysis.graph, self._baseline()) == []

    def test_new_edge_is_drift(self):
        analysis = analyze_paths([fixture("clean.py")])
        findings = check_baseline(analysis.graph, self._baseline(edges=set()))
        assert [f.kind for f in findings] == ["unbaselined-edge"]

    def test_stale_edge_is_drift(self):
        analysis = analyze_paths([fixture("clean.py")])
        baseline = self._baseline()
        baseline.edges.add(("fixture.gone", "fixture.away"))
        findings = check_baseline(analysis.graph, baseline)
        assert [f.kind for f in findings] == ["stale-baseline"]

    def test_hierarchy_rank_violation(self):
        analysis = analyze_paths([fixture("clean.py")])
        upside_down = self._baseline(
            hierarchy=[["fixture.second"], ["fixture.first"]]
        )
        findings = check_baseline(analysis.graph, upside_down)
        assert [f.kind for f in findings] == ["hierarchy-violation"]

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = self._baseline(self_nest_ok={"dispatch.servant"})
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.hierarchy == original.hierarchy
        assert loaded.edges == original.edges
        assert loaded.self_nest_ok == original.self_nest_ok

    def test_updated_replaces_edges_only(self):
        analysis = analyze_paths([fixture("clean.py")])
        updated = self._baseline(edges=set()).updated(analysis.graph)
        assert updated.edges == {("fixture.first", "fixture.second")}
        assert updated.hierarchy == [["fixture.first"], ["fixture.second"]]

    def test_witness_edges_checked_against_ranks(self):
        baseline = self._baseline()
        clean = check_witness_edges(
            [("fixture.first", "fixture.second")], baseline
        )
        assert clean == []
        bad = check_witness_edges(
            [("fixture.second", "fixture.first")], baseline
        )
        assert [f.kind for f in bad] == ["hierarchy-violation"]
        nests = check_witness_edges([], baseline, ["fixture.first"])
        assert [f.kind for f in nests] == ["self-nest"]


class TestShippedTree:
    """The acceptance gate: the real tree is clean against its baseline."""

    def test_src_repro_is_clean(self):
        analysis = analyze_paths([str(REPO / "src" / "repro")])
        baseline = Baseline.load(REPO / "tools" / "concurrency_baseline.json")
        findings = analysis.findings + check_baseline(analysis.graph, baseline)
        assert findings == [], render_findings(findings)

    def test_all_named_locks_are_ranked(self):
        analysis = analyze_paths([str(REPO / "src" / "repro")])
        baseline = Baseline.load(REPO / "tools" / "concurrency_baseline.json")
        ranked = set(baseline.ranks())
        named = {
            lock_id
            for lock_id in analysis.index.locks
            if "." in lock_id and not lock_id.startswith("repro.")
        }
        assert named <= ranked, sorted(named - ranked)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


class TestRendering:
    def test_render_graph_lists_edges_and_sites(self):
        analysis = analyze_paths([fixture("clean.py")])
        text = render_graph(analysis.graph, hierarchy=[["fixture.first"]])
        assert "fixture.first -> fixture.second" in text
        assert "Tidy.both" in text
        assert "[0] fixture.first" in text
        assert "[unranked] fixture.second" in text

    def test_render_findings_counts(self):
        analysis = analyze_paths([fixture("guarded.py")])
        text = render_findings(analysis.findings)
        assert text.endswith("4 error(s), 0 warning(s)")
        assert "guarded.py:" in text


# ---------------------------------------------------------------------------
# tool exit codes (0 clean / 1 findings / 2 usage error)
# ---------------------------------------------------------------------------


class TestToolExitCodes:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, str(TOOL), *args],
            capture_output=True,
            text=True,
            cwd=str(REPO),
        )

    def test_clean_fixture_exits_zero(self):
        result = self._run("--no-baseline", fixture("clean.py"))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_deadlock_fixture_exits_one(self):
        result = self._run("--no-baseline", fixture("deadlock.py"))
        assert result.returncode == 1
        assert "lock-cycle" in result.stdout

    def test_guarded_fixture_exits_one(self):
        result = self._run("--no-baseline", fixture("guarded.py"))
        assert result.returncode == 1
        assert "guarded-by" in result.stdout

    def test_no_paths_exits_two(self):
        result = self._run("--no-baseline")
        assert result.returncode == 2

    def test_missing_path_exits_two(self):
        result = self._run("--no-baseline", "does/not/exist")
        assert result.returncode == 2

    def test_shipped_tree_exits_zero(self):
        result = self._run("src/repro")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_analyze_subcommand(self):
        from repro.cli import main

        assert main(["analyze", "--no-baseline", fixture("clean.py")]) == 0
        assert main(["analyze", "--no-baseline", fixture("deadlock.py")]) == 1


# ---------------------------------------------------------------------------
# runtime witness
# ---------------------------------------------------------------------------


@pytest.fixture()
def fresh_witness(monkeypatch):
    """Isolated registry + held-stacks + witness mode for one test."""
    monkeypatch.setenv("REPRO_LOCK_WITNESS", "1")
    monkeypatch.setattr(witness, "_registry", witness.WitnessRegistry())
    monkeypatch.setattr(witness, "_held_local", threading.local())
    return witness


class TestWitness:
    def test_factories_return_stdlib_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_WITNESS", raising=False)
        assert isinstance(witness.named_lock("x"), type(threading.Lock()))
        assert isinstance(witness.named_rlock("x"), type(threading.RLock()))
        assert isinstance(witness.named_condition("x"), threading.Condition)

    def test_factories_return_witnessed_when_enabled(self, fresh_witness):
        assert isinstance(witness.named_lock("x"), witness.WitnessLock)
        assert isinstance(witness.named_rlock("x"), witness.WitnessRLock)
        assert isinstance(
            witness.named_condition("x"), witness.WitnessCondition
        )

    def test_zero_mode_is_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_WITNESS", "0")
        assert not witness.enabled()

    def test_orders_recorded_as_edges(self, fresh_witness):
        a, b = witness.named_lock("w.a"), witness.named_lock("w.b")
        with a:
            with b:
                assert witness.held_names() == ["w.a", "w.b"]
        assert witness.registry().edge_pairs() == {("w.a", "w.b")}

    def test_inversion_raises_with_both_orders(self, fresh_witness):
        a, b = witness.named_lock("w.a"), witness.named_lock("w.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(witness.LockOrderInversion) as excinfo:
                a.acquire()
        assert "w.a -> w.b" in str(excinfo.value)
        assert "w.b -> w.a" in str(excinfo.value)

    def test_record_mode_collects_without_raising(
        self, fresh_witness, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LOCK_WITNESS", "record")
        a, b = witness.named_lock("w.a"), witness.named_lock("w.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        snapshot = witness.registry().snapshot()
        assert len(snapshot["inversions"]) == 1

    def test_reentrant_reacquisition_adds_no_edges(self, fresh_witness):
        lock = witness.named_rlock("w.r")
        other = witness.named_lock("w.o")
        with other:
            with lock:
                with lock:
                    pass
        assert witness.registry().edge_pairs() == {("w.o", "w.r")}

    def test_same_name_different_object_is_self_nest(self, fresh_witness):
        first = witness.named_rlock("w.family")
        second = witness.named_rlock("w.family")
        with first:
            with second:
                pass
        registry = witness.registry()
        assert registry.self_nests == {"w.family": 1}
        assert registry.edge_pairs() == set()
        assert registry.inversions == []

    def test_failed_try_acquire_records_nothing(self, fresh_witness):
        a, b = witness.named_lock("w.a"), witness.named_lock("w.b")
        with a:
            with b:
                pass

        grabbed = threading.Event()
        release = threading.Event()

        def holder():
            with a:
                grabbed.set()
                release.wait(5)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert grabbed.wait(5)
        with b:
            # would be the inverted order, but a failed try never waits
            assert not a.acquire(blocking=False)
        release.set()
        thread.join(5)
        assert witness.registry().inversions == []

    def test_condition_shares_lock_identity(self, fresh_witness):
        mutex = witness.named_lock("w.q")
        not_empty = witness.named_condition("w.q", lock=mutex)
        idle = witness.named_condition("w.q", lock=mutex)
        ready = []

        def producer():
            with not_empty:
                ready.append(1)
                not_empty.notify()

        with not_empty:
            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            assert not_empty.wait_for(lambda: ready, timeout=5)
        thread.join(5)
        with idle:
            assert witness.held_names() == ["w.q"]
        assert witness.registry().edge_pairs() == set()

    def test_snapshot_shape_is_json_serializable(self, fresh_witness):
        a, b = witness.named_lock("w.a"), witness.named_lock("w.b")
        with a:
            with b:
                pass
        as_text = json.dumps(witness.registry().snapshot())
        assert "w.a" in as_text

    def test_reset_clears_everything(self, fresh_witness):
        a, b = witness.named_lock("w.a"), witness.named_lock("w.b")
        with a:
            with b:
                pass
        witness.reset()
        snapshot = witness.registry().snapshot()
        assert snapshot == {"edges": [], "self_nests": {}, "inversions": []}
