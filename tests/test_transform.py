"""Transformation engine tests: conditions, rules, atomic application (S6/E3)."""

import pytest

from repro.errors import (
    PostconditionViolation,
    PreconditionViolation,
    TransformationError,
)
from repro.core import Concern, GenericTransformation, ParameterSignature
from repro.metamodel import validate
from repro.ocl.evaluator import types_from_package
from repro.repository import ModelRepository
from repro.transform import (
    Condition,
    ConditionSet,
    TraceLog,
    TransformationContext,
    TransformationEngine,
)
from repro.uml import UML, add_class, classes_of, find_element

TYPES = types_from_package(UML.package)


class TestConditions:
    def test_condition_evaluates_with_parameters(self, bank_resource):
        condition = Condition(
            "exists",
            "names->forAll(n | Class.allInstances()->exists(c | c.name = n))",
        )
        assert condition.evaluate(bank_resource, TYPES, {"names": ["Account"]})
        assert not condition.evaluate(bank_resource, TYPES, {"names": ["Ghost"]})

    def test_syntactically_broken_condition_fails_at_definition(self):
        with pytest.raises(Exception):
            Condition("bad", "1 +")

    def test_non_boolean_condition_rejected(self, bank_resource):
        condition = Condition("weird", "1 + 1")
        with pytest.raises(TransformationError):
            condition.evaluate(bank_resource, TYPES)

    def test_evaluation_error_wrapped(self, bank_resource):
        condition = Condition("broken", "unknown_name > 1")
        with pytest.raises(TransformationError):
            condition.evaluate(bank_resource, TYPES)

    def test_condition_set_reports_all_violations(self, bank_resource):
        conditions = ConditionSet()
        conditions.add("ok", "true")
        conditions.add("bad1", "false")
        conditions.add("bad2", "1 > 2")
        violated = conditions.violations(bank_resource, TYPES)
        assert [c.name for c in violated] == ["bad1", "bad2"]
        assert len(conditions) == 3


class TestContext:
    def test_param_accessors(self, bank_resource):
        ctx = TransformationContext(bank_resource, {"x": 1}, TYPES)
        assert ctx.param("x") == 1
        assert ctx.param("y", "d") == "d"
        assert ctx.require_param("x") == 1
        with pytest.raises(TransformationError):
            ctx.require_param("missing")

    def test_ocl_binds_parameters(self, bank_resource):
        ctx = TransformationContext(bank_resource, {"wanted": ["Bank"]}, TYPES)
        result = ctx.select("Class.allInstances()->select(c | wanted->includes(c.name))")
        assert [c.name for c in result] == ["Bank"]

    def test_select_requires_collection(self, bank_resource):
        ctx = TransformationContext(bank_resource, {}, TYPES)
        with pytest.raises(TransformationError):
            ctx.select("1 + 1")

    def test_trace_records_with_rule_name(self, bank_resource):
        trace = TraceLog()
        ctx = TransformationContext(
            bank_resource, {}, TYPES, trace=trace, transformation_name="T"
        )
        ctx.record(note="setup-level")
        assert trace.links[0].rule == "<setup>"


def _make_gmt(name="T_test", concern_name="testing"):
    gmt = GenericTransformation(
        name, Concern(concern_name), ParameterSignature()
    )
    gmt.parameter("class_name", type=str)
    gmt.precondition(
        "absent",
        "Class.allInstances()->forAll(c | c.name <> class_name)",
        "class must not exist yet",
    )
    gmt.postcondition(
        "present",
        "Class.allInstances()->exists(c | c.name = class_name)",
    )

    @gmt.rule("create-class")
    def _create(ctx):
        pkg = find_element(ctx.model, "accounts")
        cls = add_class(pkg, ctx.require_param("class_name"))
        ctx.record(sources=[pkg], targets=[cls], note="created")

    return gmt


class TestEngine:
    def test_successful_application(self, bank_resource):
        engine = TransformationEngine(ModelRepository(bank_resource))
        result = engine.apply(_make_gmt().specialize(class_name="Audit"))
        assert result.concern == "testing"
        assert result.created_elements >= 1
        assert result.trace_links == 1
        assert "Audit" in [c.name for c in classes_of(bank_resource.roots[0])]
        assert validate(bank_resource) == []

    def test_precondition_violation_leaves_model_untouched(self, bank_resource):
        engine = TransformationEngine(ModelRepository(bank_resource))
        cmt = _make_gmt().specialize(class_name="Account")  # already exists
        before = [c.name for c in classes_of(bank_resource.roots[0])]
        with pytest.raises(PreconditionViolation) as excinfo:
            engine.apply(cmt)
        assert "absent" in str(excinfo.value)
        assert [c.name for c in classes_of(bank_resource.roots[0])] == before

    def test_postcondition_violation_rolls_back(self, bank_resource):
        gmt = GenericTransformation("T_bad", Concern("bad"), ParameterSignature())
        gmt.postcondition("impossible", "false")

        @gmt.rule("grow")
        def _grow(ctx):
            add_class(find_element(ctx.model, "accounts"), "Orphan")

        engine = TransformationEngine(ModelRepository(bank_resource))
        with pytest.raises(PostconditionViolation):
            engine.apply(gmt.specialize())
        assert "Orphan" not in [c.name for c in classes_of(bank_resource.roots[0])]
        assert validate(bank_resource) == []

    def test_rule_exception_rolls_back(self, bank_resource):
        gmt = GenericTransformation("T_boom", Concern("boom"), ParameterSignature())

        @gmt.rule("grow-then-fail")
        def _fail(ctx):
            add_class(find_element(ctx.model, "accounts"), "Partial")
            raise RuntimeError("rule crashed")

        engine = TransformationEngine(ModelRepository(bank_resource))
        with pytest.raises(RuntimeError):
            engine.apply(gmt.specialize())
        assert "Partial" not in [c.name for c in classes_of(bank_resource.roots[0])]

    def test_checks_can_be_disabled(self, bank_resource):
        engine = TransformationEngine(
            ModelRepository(bank_resource),
            check_preconditions=False,
            check_postconditions=False,
        )
        cmt = _make_gmt().specialize(class_name="Account")
        result = engine.apply(cmt)  # duplicate name allowed without checks
        assert result.preconditions_checked == 0
        assert result.postconditions_checked == 0

    def test_application_is_undoable(self, bank_resource):
        repo = ModelRepository(bank_resource)
        engine = TransformationEngine(repo)
        engine.apply(_make_gmt().specialize(class_name="Audit"))
        repo.undo()
        assert "Audit" not in [c.name for c in classes_of(bank_resource.roots[0])]

    def test_demarcation_painted_with_concern(self, bank_resource):
        repo = ModelRepository(bank_resource)
        engine = TransformationEngine(repo)
        engine.apply(_make_gmt().specialize(class_name="Audit"))
        audit = find_element(bank_resource.roots[0], "accounts.Audit")
        assert repo.demarcation.concern_of(audit) == "testing"

    def test_application_order_recorded(self, bank_resource):
        engine = TransformationEngine(ModelRepository(bank_resource))
        engine.apply(_make_gmt("T_a", "ca").specialize(class_name="A1"))
        engine.apply(_make_gmt("T_b", "cb").specialize(class_name="B1"))
        assert engine.application_order == [
            "T_a<class_name=A1>",
            "T_b<class_name=B1>",
        ]

    def test_trace_queries(self, bank_resource):
        engine = TransformationEngine(ModelRepository(bank_resource))
        cmt = _make_gmt().specialize(class_name="Audit")
        engine.apply(cmt)
        created = engine.trace.created_by(cmt.name)
        assert [c.name for c in created] == ["Audit"]
        pkg = find_element(bank_resource.roots[0], "accounts")
        assert engine.trace.targets_of(pkg) == created
        assert engine.trace.sources_of(created[0]) == [pkg]
