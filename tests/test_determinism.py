"""Digest-determinism regression matrix.

Every registered scenario, on both local transports, at two seeds:
two sequential runs must produce byte-identical digests.  This is the
repo's reproducibility contract in one table — any change that makes a
seeded sequential run depend on wall clock, hash randomization, thread
interleaving, or dict order fails here with the scenario named.

The queued transport is pinned to one delivery worker and a zero
async window: deliveries then retire strictly in issue order, so even
the async scenario's servant-effect order is a pure function of the
seed (more workers would race replies against each other, which is
legitimate concurrency, not nondeterminism — but it is not *this*
contract).
"""

import pytest

from repro.runtime import SCENARIOS, RunConfig, ScenarioRunner

SMALL = dict(
    nodes=2,
    clients=4,
    ops=60,
    workers=4,
    concurrent=False,
    real_latency_ms=0.0,
    window=0,
    delivery_workers=1,
)

#: knobs a scenario needs before it will run at all
SCENARIO_EXTRAS = {
    "banking_openloop": dict(
        open_loop=dict(users=2_000, arrival="poisson:2000", zipf_s=1.1)
    ),
}


def _digest(name: str, transport: str, seed: int) -> str:
    config = RunConfig(
        scenario=name,
        seed=seed,
        transport=transport,
        **SMALL,
        **SCENARIO_EXTRAS.get(name, {}),
    )
    result = ScenarioRunner(name, config).run()
    assert result.passed, (name, transport, seed, result.invariant_violations)
    return result.digest()


@pytest.mark.parametrize("seed", [1, 7])
@pytest.mark.parametrize("transport", ["inproc", "queued"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_sequential_digest_is_stable(name, transport, seed):
    assert _digest(name, transport, seed) == _digest(name, transport, seed)


def test_different_seeds_change_the_digest_somewhere():
    # the matrix above would pass trivially if digests ignored the run;
    # prove they don't: across scenarios, seed 1 and seed 7 must differ
    # for at least one (in practice: almost all) of them
    pairs = [
        (_digest(name, "inproc", 1), _digest(name, "inproc", 7))
        for name in sorted(SCENARIOS)
    ]
    assert any(a != b for a, b in pairs)
