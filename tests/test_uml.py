"""Tests for the UML subset metamodel, model API, and profiles (S2)."""

import pytest

from repro.errors import ModelError
from repro.metamodel import UNBOUNDED, validate
from repro.uml import (
    UML,
    add_association,
    add_attribute,
    add_class,
    add_interface,
    add_operation,
    add_package,
    apply_stereotype,
    classes_of,
    ensure_primitives,
    find_element,
    get_stereotype,
    get_tag,
    has_stereotype,
    new_model,
    operations_of,
    owned_elements,
    qualified_name,
    remove_stereotype,
    set_tag,
    stereotype_names,
)
from repro.uml.profiles import require_tag


@pytest.fixture()
def shop():
    res, model = new_model("shop")
    prims = ensure_primitives(model)
    pkg = add_package(model, "sales")
    product = add_class(pkg, "Product")
    add_attribute(product, "price", prims["Real"])
    order = add_class(pkg, "Order")
    add_operation(order, "total", return_type=prims["Real"])
    special = add_class(pkg, "SpecialOrder", superclasses=[order])
    return {
        "res": res,
        "model": model,
        "prims": prims,
        "pkg": pkg,
        "Product": product,
        "Order": order,
        "SpecialOrder": special,
    }


class TestModelFactory:
    def test_new_model_roots(self, shop):
        assert shop["res"].roots == (shop["model"],)
        assert shop["model"].isinstance_of(UML.Model)

    def test_ensure_primitives_idempotent(self, shop):
        first = ensure_primitives(shop["model"])
        second = ensure_primitives(shop["model"])
        assert first == second
        assert set(first) == {"String", "Integer", "Boolean", "Real"}

    def test_model_is_valid(self, shop):
        assert validate(shop["res"]) == []

    def test_qualified_name(self, shop):
        assert qualified_name(shop["Product"]) == "shop.sales.Product"

    def test_find_element_roundtrip(self, shop):
        assert find_element(shop["model"], "sales.Product") is shop["Product"]
        total = find_element(shop["model"], "sales.Order.total")
        assert total.name == "total"

    def test_find_element_missing_raises(self, shop):
        with pytest.raises(ModelError):
            find_element(shop["model"], "sales.Nothing")

    def test_classes_of_recurses_packages(self, shop):
        inner = add_package(shop["pkg"], "inner")
        deep = add_class(inner, "Deep")
        names = [c.name for c in classes_of(shop["model"])]
        assert names == ["Product", "Order", "SpecialOrder", "Deep"]

    def test_owned_elements_covers_everything(self, shop):
        names = {e.name for e in owned_elements(shop["model"]) if e.is_set("name")}
        assert {"sales", "Product", "Order"} <= names


class TestOperations:
    def test_return_parameter_created(self, shop):
        total = find_element(shop["model"], "sales.Order.total")
        directions = [p.direction for p in total.parameters]
        assert directions == ["return"]

    def test_parameters_with_directions(self, shop):
        op = add_operation(
            shop["Product"],
            "reprice",
            [("factor", shop["prims"]["Real"], "inout")],
        )
        assert op.parameters[0].direction == "inout"

    def test_operations_of_includes_inherited(self, shop):
        ops = [o.name for o in operations_of(shop["SpecialOrder"])]
        assert "total" in ops

    def test_override_shadows_inherited(self, shop):
        add_operation(shop["SpecialOrder"], "total")
        ops = list(operations_of(shop["SpecialOrder"]))
        assert len([o for o in ops if o.name == "total"]) == 1
        assert ops[0].container is shop["SpecialOrder"]

    def test_operations_of_without_inherited(self, shop):
        ops = list(operations_of(shop["SpecialOrder"], inherited=False))
        assert ops == []


class TestAssociations:
    def test_association_ends(self, shop):
        assoc = add_association(
            shop["pkg"],
            "contains",
            ("order", shop["Order"]),
            ("items", shop["Product"]),
            end1_multiplicity=(1, 1),
            end2_multiplicity=(0, UNBOUNDED),
        )
        ends = list(assoc.ends)
        assert [e.name for e in ends] == ["order", "items"]
        assert ends[0].type is shop["Order"]
        assert (ends[1].lower, ends[1].upper) == (0, UNBOUNDED)
        assert validate(shop["res"]) == []

    def test_interface_realization(self, shop):
        iface = add_interface(shop["pkg"], "Sellable")
        add_operation(iface, "sell")
        shop["Product"].interfaces.append(iface)
        assert iface in shop["Product"].interfaces


class TestProfiles:
    def test_apply_and_query(self, shop):
        apply_stereotype(shop["Product"], "Entity", table="products")
        assert has_stereotype(shop["Product"], "Entity")
        assert get_tag(shop["Product"], "Entity", "table") == "products"
        assert list(stereotype_names(shop["Product"])) == ["Entity"]

    def test_reapply_merges_tags(self, shop):
        apply_stereotype(shop["Product"], "Entity", table="a")
        apply_stereotype(shop["Product"], "Entity", schema="s")
        assert len(list(shop["Product"].stereotypes)) == 1
        assert get_tag(shop["Product"], "Entity", "table") == "a"
        assert get_tag(shop["Product"], "Entity", "schema") == "s"

    def test_set_tag_overwrites(self, shop):
        app = apply_stereotype(shop["Product"], "Entity", table="a")
        set_tag(app, "table", "b")
        assert get_tag(shop["Product"], "Entity", "table") == "b"

    def test_remove_stereotype(self, shop):
        apply_stereotype(shop["Product"], "Entity")
        assert remove_stereotype(shop["Product"], "Entity")
        assert not has_stereotype(shop["Product"], "Entity")
        assert not remove_stereotype(shop["Product"], "Entity")

    def test_get_tag_default(self, shop):
        assert get_tag(shop["Product"], "Nope", "tag", default=7) == 7
        apply_stereotype(shop["Product"], "Entity")
        assert get_tag(shop["Product"], "Entity", "missing", default="d") == "d"

    def test_require_tag_raises(self, shop):
        apply_stereotype(shop["Product"], "Entity")
        with pytest.raises(ModelError):
            require_tag(shop["Product"], "Entity", "missing")

    def test_stereotypes_on_operations(self, shop):
        total = find_element(shop["model"], "sales.Order.total")
        apply_stereotype(total, "Transactional", isolation="serializable")
        assert get_tag(total, "Transactional", "isolation") == "serializable"

    def test_get_stereotype_returns_application(self, shop):
        app = apply_stereotype(shop["Product"], "Entity")
        assert get_stereotype(shop["Product"], "Entity") is app
        assert get_stereotype(shop["Product"], "Other") is None
