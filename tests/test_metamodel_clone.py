"""deep_clone semantics: internal remapping, external preservation."""

from repro.metamodel import ModelResource, validate
from repro.metamodel.instances import deep_clone


class TestDeepClone:
    def test_attributes_copied(self, library_metamodel):
        Book = library_metamodel["Book"]
        b = Book(title="T")
        b.tags.extend(["a", "b"])
        (clone,), mapping = deep_clone([b])
        assert clone is not b
        assert clone.title == "T"
        assert list(clone.tags) == ["a", "b"]
        assert mapping[b.uuid] is clone

    def test_containment_tree_cloned(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s = Shelf()
        b1, b2 = Book(title="A"), Book(title="B")
        s.books.extend([b1, b2])
        (clone,), mapping = deep_clone([s])
        assert [c.title for c in clone.books] == ["A", "B"]
        assert all(c.container is clone for c in clone.books)

    def test_internal_cross_references_remapped(self, library_metamodel):
        Shelf, Book, Author = (
            library_metamodel["Shelf"],
            library_metamodel["Book"],
            library_metamodel["Author"],
        )
        s, b, a = Shelf(), Book(title="T"), Author(name="N")
        s.books.append(b)
        b.authors.append(a)
        clones, mapping = deep_clone([s, a])
        s2, a2 = clones
        b2 = s2.books[0]
        assert list(b2.authors) == [a2]
        assert list(a2.books) == [b2]
        assert validate([s2, b2, a2]) == []

    def test_external_references_preserved(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s1, s2 = Shelf(), Shelf()
        inside, outside = Book(title="in"), Book(title="out")
        s1.books.append(inside)
        s2.books.append(outside)
        inside.sequel = outside
        (clone,), _ = deep_clone([s1])  # outside not part of the clone forest
        assert clone.books[0].sequel is outside

    def test_clone_is_independent(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s = Shelf()
        b = Book(title="T")
        s.books.append(b)
        (clone,), _ = deep_clone([s])
        b.title = "changed"
        s.books.append(Book(title="extra"))
        assert clone.books[0].title == "T"
        assert len(clone.books) == 1

    def test_clone_detached_from_resource(self, library_metamodel):
        Shelf = library_metamodel["Shelf"]
        s = Shelf()
        res = ModelResource("r")
        res.add_root(s)
        (clone,), _ = deep_clone([s])
        assert clone.resource is None

    def test_self_reference_remapped(self, library_metamodel):
        Shelf, Book = library_metamodel["Shelf"], library_metamodel["Book"]
        s = Shelf()
        b = Book(title="T")
        s.books.append(b)
        b.sequel = b
        (clone,), _ = deep_clone([s])
        b2 = clone.books[0]
        assert b2.sequel is b2
