"""Bidirectional (opposite) reference consistency under every mutation."""

import pytest

from repro.errors import ContainmentError
from repro.metamodel import UNBOUNDED, MetamodelBuilder, validate


@pytest.fixture()
def company():
    b = MetamodelBuilder("company")
    emp = b.metaclass("Emp")
    dept = b.metaclass("Dept")
    badge = b.metaclass("Badge")
    b.reference(emp, "dept", dept, opposite="emps")
    b.reference(dept, "emps", emp, upper=UNBOUNDED)
    # one-to-one pair
    b.reference(emp, "badge", badge, opposite="owner")
    b.reference(badge, "owner", emp)
    # many-to-many pair
    proj = b.metaclass("Proj")
    b.reference(emp, "projects", proj, upper=UNBOUNDED, opposite="members")
    b.reference(proj, "members", emp, upper=UNBOUNDED)
    b.build()
    return {"Emp": emp, "Dept": dept, "Badge": badge, "Proj": proj}


class TestManyToOne:
    def test_set_links_both_sides(self, company):
        e, d = company["Emp"](), company["Dept"]()
        e.dept = d
        assert e in d.emps

    def test_append_links_back(self, company):
        e, d = company["Emp"](), company["Dept"]()
        d.emps.append(e)
        assert e.dept is d

    def test_reassignment_moves(self, company):
        e = company["Emp"]()
        d1, d2 = company["Dept"](), company["Dept"]()
        e.dept = d1
        e.dept = d2
        assert e not in d1.emps and e in d2.emps

    def test_append_displaces_previous_single_side(self, company):
        e = company["Emp"]()
        d1, d2 = company["Dept"](), company["Dept"]()
        d1.emps.append(e)
        d2.emps.append(e)
        assert e.dept is d2 and e not in d1.emps

    def test_unset_clears_both_sides(self, company):
        e, d = company["Emp"](), company["Dept"]()
        e.dept = d
        e.unset("dept")
        assert e.dept is None and e not in d.emps

    def test_list_remove_clears_back_pointer(self, company):
        e, d = company["Emp"](), company["Dept"]()
        d.emps.append(e)
        d.emps.remove(e)
        assert e.dept is None

    def test_clear_clears_all_back_pointers(self, company):
        d = company["Dept"]()
        emps = [company["Emp"]() for _ in range(3)]
        for e in emps:
            d.emps.append(e)
        d.emps.clear()
        assert all(e.dept is None for e in emps)

    def test_self_reassignment_is_noop(self, company):
        e, d = company["Emp"](), company["Dept"]()
        e.dept = d
        e.dept = d
        assert list(d.emps) == [e]


class TestOneToOne:
    def test_set_links_both(self, company):
        e, b = company["Emp"](), company["Badge"]()
        e.badge = b
        assert b.owner is e

    def test_displacement_on_both_singles(self, company):
        e1, e2, b = company["Emp"](), company["Emp"](), company["Badge"]()
        e1.badge = b
        e2.badge = b
        assert b.owner is e2 and e1.badge is None

    def test_reverse_side_set(self, company):
        e, b = company["Emp"](), company["Badge"]()
        b.owner = e
        assert e.badge is b

    def test_unset_symmetric(self, company):
        e, b = company["Emp"](), company["Badge"]()
        e.badge = b
        b.unset("owner")
        assert e.badge is None and b.owner is None


class TestManyToMany:
    def test_append_links_both(self, company):
        e, p = company["Emp"](), company["Proj"]()
        e.projects.append(p)
        assert e in p.members

    def test_remove_unlinks_both(self, company):
        e, p = company["Emp"](), company["Proj"]()
        p.members.append(e)
        p.members.remove(e)
        assert p not in e.projects

    def test_multiple_links_validate(self, company):
        emps = [company["Emp"]() for _ in range(3)]
        projs = [company["Proj"]() for _ in range(2)]
        for e in emps:
            for p in projs:
                e.projects.append(p)
        for p in projs:
            assert len(p.members) == 3
        assert validate(emps + projs) == []


@pytest.fixture()
def tree():
    b = MetamodelBuilder("tree")
    node = b.metaclass("Node")
    b.attribute(node, "label", b.STRING)
    b.reference(node, "children", node, upper=UNBOUNDED, containment=True, opposite="parent")
    b.reference(node, "parent", node)
    b.build()
    return node


class TestContainmentWithOpposite:
    def test_parent_pointer_maintained(self, tree):
        root, child = tree(), tree()
        root.children.append(child)
        assert child.parent is root
        assert child.container is root

    def test_move_between_parents(self, tree):
        a, b, c = tree(), tree(), tree()
        a.children.append(c)
        b.children.append(c)
        assert c.parent is b and c.container is b
        assert list(a.children) == []

    def test_cycle_rejected(self, tree):
        a, b = tree(), tree()
        a.children.append(b)
        with pytest.raises(ContainmentError):
            b.children.append(a)
        with pytest.raises(ContainmentError):
            a.children.append(a)

    def test_deep_cycle_rejected(self, tree):
        a, b, c = tree(), tree(), tree()
        a.children.append(b)
        b.children.append(c)
        with pytest.raises(ContainmentError):
            c.children.append(a)
