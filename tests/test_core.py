"""Core tests: parameters (Si), GMT/CMT, GA/CA, shared specialization (Fig. 1)."""

import pytest

from repro.aop import Aspect
from repro.core import (
    Concern,
    ConcernRegistry,
    GenericAspect,
    GenericTransformation,
    Parameter,
    ParameterSignature,
)
from repro.core.aspect_generator import generate_concrete_aspect
from repro.core.precedence import AspectDeploymentPlan
from repro.errors import (
    ParameterError,
    SpecializationError,
    TransformationError,
    WeavingError,
)
from repro.ocl.evaluator import types_from_package
from repro.uml import UML

TYPES = types_from_package(UML.package)


class TestParameters:
    def test_scalar_binding_and_defaults(self):
        sig = ParameterSignature()
        sig.declare("host", type=str)
        sig.declare("port", type=int, required=False, default=80)
        bound = sig.bind(host="x")
        assert bound["host"] == "x" and bound["port"] == 80

    def test_missing_required(self):
        sig = ParameterSignature([Parameter("must", str)])
        with pytest.raises(ParameterError):
            sig.bind()

    def test_unknown_parameter_rejected(self):
        sig = ParameterSignature()
        with pytest.raises(ParameterError):
            sig.bind(ghost=1)

    def test_type_checked(self):
        sig = ParameterSignature([Parameter("n", int)])
        with pytest.raises(ParameterError):
            sig.bind(n="not-an-int")

    def test_many_parameters(self):
        sig = ParameterSignature([Parameter("names", str, many=True)])
        assert sig.bind(names=["a", "b"])["names"] == ["a", "b"]
        with pytest.raises(ParameterError):
            sig.bind(names="a")
        with pytest.raises(ParameterError):
            sig.bind(names=[1])

    def test_many_default_empty_list(self):
        sig = ParameterSignature(
            [Parameter("names", str, many=True, required=False)]
        )
        assert sig.bind()["names"] == []

    def test_choices(self):
        sig = ParameterSignature([Parameter("mode", str, choices=("a", "b"))])
        assert sig.bind(mode="a")["mode"] == "a"
        with pytest.raises(ParameterError):
            sig.bind(mode="c")

    def test_validator(self):
        sig = ParameterSignature(
            [Parameter("n", int, validator=lambda v: v > 0)]
        )
        assert sig.bind(n=3)["n"] == 3
        with pytest.raises(ParameterError):
            sig.bind(n=-1)

    def test_duplicate_declaration_rejected(self):
        sig = ParameterSignature()
        sig.declare("x")
        with pytest.raises(ParameterError):
            sig.declare("x")

    def test_render_and_equality(self):
        sig = ParameterSignature([Parameter("a", int), Parameter("b", str)])
        s1 = sig.bind(a=1, b="x")
        s2 = sig.bind(a=1, b="x")
        s3 = sig.bind(a=2, b="x")
        assert s1 == s2 and s1 != s3
        assert hash(s1) == hash(s2)
        assert s1.render() == "<a=1, b=x>"

    def test_getitem_and_get(self):
        sig = ParameterSignature([Parameter("a", int)])
        bound = sig.bind(a=1)
        assert bound["a"] == 1
        assert bound.get("nope", 9) == 9
        with pytest.raises(ParameterError):
            bound["nope"]


def _square():
    """A tiny GMT/GA pair sharing one signature."""
    concern = Concern("observability", viewpoint="Class.allInstances()")
    sig = ParameterSignature([Parameter("tag", str)])
    gmt = GenericTransformation("T_obs", concern, sig)

    @gmt.rule("noop")
    def _noop(ctx):
        pass

    built = {}

    def factory(params, services):
        aspect = Aspect("A_obs")
        built["params"] = params
        return aspect

    ga = GenericAspect("A_obs", sig, factory, factory_ref="x.y:factory")
    gmt.associate_aspect(ga)
    return gmt, ga, built


class TestFig1Square:
    def test_association_is_bidirectional(self):
        gmt, ga, _ = _square()
        assert gmt.generic_aspect is ga
        assert ga.generic_transformation is gmt

    def test_reassociation_rejected(self):
        gmt, ga, _ = _square()
        other = GenericAspect("other", gmt.signature, lambda p, s: Aspect("x"))
        with pytest.raises(SpecializationError):
            gmt.associate_aspect(other)

    def test_specialize_names(self):
        gmt, ga, _ = _square()
        cmt = gmt.specialize(tag="audit")
        assert cmt.name == "T_obs<tag=audit>"
        assert cmt.concern == "observability"
        assert cmt.parameters == {"tag": "audit"}

    def test_same_si_specializes_both_sides(self):
        gmt, ga, _ = _square()
        cmt = gmt.specialize(tag="audit")
        ca = generate_concrete_aspect(cmt)
        assert ca.parameter_set is cmt.parameter_set
        assert ca.name == "A_obs<tag=audit>"

    def test_aspect_without_association_rejected(self):
        concern = Concern("lonely")
        gmt = GenericTransformation("T_l", concern, ParameterSignature())
        with pytest.raises(SpecializationError):
            gmt.specialize().derive_aspect()

    def test_foreign_parameter_set_rejected(self):
        gmt, ga, _ = _square()
        other_sig = ParameterSignature([Parameter("tag", str)])
        foreign = other_sig.bind(tag="x")
        with pytest.raises(SpecializationError):
            gmt.specialize(foreign)
        with pytest.raises(SpecializationError):
            ga.specialize(foreign)

    def test_both_set_and_values_rejected(self):
        gmt, _, _ = _square()
        bound = gmt.signature.bind(tag="x")
        with pytest.raises(SpecializationError):
            gmt.specialize(bound, tag="y")

    def test_ca_build_passes_si_and_caches(self, services):
        gmt, ga, built = _square()
        ca = gmt.specialize(tag="audit").derive_aspect()
        aspect = ca.build(services)
        assert built["params"] == {"tag": "audit"}
        assert aspect.name == "A_obs<tag=audit>"
        assert ca.build(services) is aspect

    def test_concern_space_uses_si(self, bank_resource):
        concern = Concern(
            "picky",
            viewpoint="Class.allInstances()->select(c | picks->includes(c.name))",
        )
        sig = ParameterSignature([Parameter("picks", str, many=True)])
        gmt = GenericTransformation("T_p", concern, sig)
        cmt = gmt.specialize(picks=["Bank"])
        space = cmt.concern_space(bank_resource, TYPES)
        assert space.names() == ["Bank"]
        assert len(space) == 1


class TestRegistry:
    def test_register_and_get(self):
        registry = ConcernRegistry()
        gmt, _, _ = _square()
        registry.register(gmt)
        assert registry.get("observability") is gmt
        assert "observability" in registry
        assert registry.concerns() == ["observability"]

    def test_duplicate_concern_rejected(self):
        registry = ConcernRegistry()
        gmt, _, _ = _square()
        registry.register(gmt)
        gmt2, _, _ = _square()
        with pytest.raises(TransformationError):
            registry.register(gmt2)

    def test_unknown_concern(self):
        with pytest.raises(TransformationError):
            ConcernRegistry().get("ghost")

    def test_default_registry_has_builtins(self):
        from repro.core.registry import default_registry

        registry = default_registry()
        assert set(registry.concerns()) == {
            "distribution",
            "transactions",
            "security",
            "logging",
            "platform",
            "platform-abstraction",
        }


class TestDeploymentPlan:
    def test_ranks_follow_addition_order(self, services):
        gmt, _, _ = _square()
        plan = AspectDeploymentPlan()
        ca1 = gmt.specialize(tag="one").derive_aspect()
        gmt2, _, _ = _square()
        ca2 = gmt2.specialize(tag="two").derive_aspect()
        assert plan.add(ca1) == 0
        assert plan.add(ca2) == 1
        plan.deploy(services.weaver, services)
        assert (ca1.rank, ca2.rank) == (0, 1)
        assert len(plan) == 2
        assert plan.order() == ["A_obs<tag=one>", "A_obs<tag=two>"]

    def test_plan_locked_after_deploy(self, services):
        plan = AspectDeploymentPlan()
        plan.deploy(services.weaver, services)
        gmt, _, _ = _square()
        with pytest.raises(WeavingError):
            plan.add(gmt.specialize(tag="late").derive_aspect())
