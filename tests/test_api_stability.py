"""API-stability tests: exports resolve, errors share one root, misc edges."""

import importlib

import pytest

import repro
import repro.errors as errors_module
from repro.errors import ReproError

PACKAGES = [
    "repro",
    "repro.metamodel",
    "repro.uml",
    "repro.ocl",
    "repro.xmi",
    "repro.repository",
    "repro.transform",
    "repro.workflow",
    "repro.aop",
    "repro.codegen",
    "repro.middleware",
    "repro.concerns",
    "repro.core",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_top_level_convenience(self):
        assert repro.MdaLifecycle and repro.new_model


class TestErrorHierarchy:
    def test_every_library_exception_is_a_repro_error(self):
        exception_types = [
            value
            for value in vars(errors_module).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(exception_types) > 25
        for exc_type in exception_types:
            assert issubclass(exc_type, ReproError), exc_type

    def test_catching_the_root_catches_everything(self):
        from repro.errors import (
            AccessDeniedError,
            DeadlockError,
            OclSyntaxError,
            PreconditionViolation,
            XmiReadError,
        )

        for exc in (
            AccessDeniedError("x"),
            DeadlockError("x"),
            OclSyntaxError("x"),
            PreconditionViolation("cond"),
            XmiReadError("x"),
        ):
            with pytest.raises(ReproError):
                raise exc

    def test_shipping_error_is_repro_error(self):
        from repro.core import ShippingError

        assert issubclass(ShippingError, ReproError)


class TestSmallEdges:
    def test_mlist_insert_clamps_indices(self, library_metamodel):
        Book = library_metamodel["Book"]
        book = Book()
        book.tags.insert(99, "end")
        book.tags.insert(-5, "start")
        assert list(book.tags) == ["start", "end"]

    def test_repository_log_empty(self, bank_resource):
        from repro.repository import ModelRepository

        assert ModelRepository(bank_resource).log() == []

    def test_parameterset_long_values_truncated_in_name(self):
        from repro.core import Parameter, ParameterSignature

        signature = ParameterSignature([Parameter("names", str, many=True)])
        bound = signature.bind(names=[f"VeryLongClassName{i}" for i in range(9)])
        assert len(bound.render()) < 60
        assert "..." in bound.render()

    def test_notification_describe_for_roots(self, library_metamodel):
        from repro.metamodel import ModelResource
        from repro.metamodel.notifications import NotificationKind

        Shelf = library_metamodel["Shelf"]
        resource = ModelResource("r")
        events = []
        resource.subscribe(events.append)
        resource.add_root(Shelf())
        assert events[0].kind is NotificationKind.ADD
        assert events[0].feature.name == "<roots>"

    def test_weaver_field_unweave_restores_class_attr(self):
        from repro.aop import Weaver

        class Config:
            flag = "default"

        weaver = Weaver()
        weaver.weave_field(Config, "flag")
        instance = Config()
        instance.flag = "set"
        weaver.unweave_class(Config)
        assert Config.flag == "default"

    def test_wire_size_unknown_type_fallback(self):
        from repro.middleware.bus import wire_size

        assert wire_size(object()) == 8
