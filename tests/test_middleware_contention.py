"""Locks and faults under contention; thread-local transaction state.

The satellite coverage for the concurrent dispatcher's foundations:
the lock manager must stay consistent when hammered from worker threads,
fault injection must replay deterministically for a fixed seed and honor
pattern sites, the transaction manager's current-transaction tracking
must be invisible across threads, and envelope context (transaction id,
credentials) must survive every invocation style — synchronous, async
reply futures, oneway deliveries, and cross-node nested dispatch.
"""

import threading

import pytest

from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    MiddlewareError,
    TransactionError,
)
from repro.middleware import (
    FaultInjector,
    LockManager,
    LockMode,
    Orb,
    TransactionManager,
)


# ---------------------------------------------------------------------------
# lock manager under contention
# ---------------------------------------------------------------------------


class TestLockContention:
    def test_write_lock_is_exclusive_across_threads(self):
        locks = LockManager()
        holding = {"flag": False}
        violations = []
        timeouts = [0]
        counter = [0]
        counter_lock = threading.Lock()

        def worker():
            for _ in range(200):
                with counter_lock:
                    counter[0] += 1
                    txid = f"t{counter[0]}"
                try:
                    locks.acquire(txid, "hot", LockMode.WRITE)
                except LockTimeoutError:
                    timeouts[0] += 1
                    continue
                if holding["flag"]:
                    violations.append(txid)
                holding["flag"] = True
                holding["flag"] = False
                locks.release_all(txid)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not violations, f"write lock held twice: {violations[:3]}"
        assert locks.holders_of("hot") == set()
        assert locks.grants + locks.conflicts >= 800

    def test_read_locks_share_write_upgrades_conflict(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.READ)
        locks.acquire("t2", "k", LockMode.READ)
        assert locks.holders_of("k") == {"t1", "t2"}
        with pytest.raises(LockTimeoutError):
            locks.acquire("t1", "k", LockMode.WRITE)
        locks.release_all("t2")
        locks.acquire("t1", "k", LockMode.WRITE)
        assert locks.mode_of("k") is LockMode.WRITE

    def test_deadlock_detected_in_cross_order(self):
        locks = LockManager()
        locks.acquire("t1", "a", LockMode.WRITE)
        locks.acquire("t2", "b", LockMode.WRITE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t1", "b", LockMode.WRITE)
        with pytest.raises(DeadlockError):
            locks.acquire("t2", "a", LockMode.WRITE)
        assert locks.deadlocks == 1

    def test_release_unblocks_waiters(self):
        locks = LockManager()
        locks.acquire("t1", "k", LockMode.WRITE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "k", LockMode.WRITE)
        locks.release_all("t1")
        locks.acquire("t2", "k", LockMode.WRITE)
        assert locks.holders_of("k") == {"t2"}

    def test_concurrent_disjoint_keys_stay_consistent(self):
        locks = LockManager()
        errors = []

        def worker(i):
            txid = f"w{i}"
            try:
                for r in range(100):
                    for key in (f"k{i}-a", f"k{i}-b"):
                        locks.acquire(txid, key, LockMode.WRITE)
                    assert locks.locks_held(txid) == {f"k{i}-a", f"k{i}-b"}
                    locks.release_all(txid)
            except Exception as exc:  # noqa: BLE001 - surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(not locks.locks_held(f"w{i}") for i in range(4))


# ---------------------------------------------------------------------------
# fault injector: determinism, wildcards, thread-safety
# ---------------------------------------------------------------------------


class TestFaultDeterminism:
    def _trace(self, seed, checks=200, probability=0.2):
        injector = FaultInjector(seed)
        injector.configure("bus.deliver", probability)
        outcomes = []
        for _ in range(checks):
            try:
                injector.check("bus.deliver")
            except MiddlewareError:
                outcomes.append(True)
            else:
                outcomes.append(False)
        return outcomes

    def test_same_seed_replays_identically(self):
        assert self._trace(42) == self._trace(42)

    def test_different_seeds_diverge(self):
        assert self._trace(1) != self._trace(2)

    def test_counters_match_trace(self):
        injector = FaultInjector(7)
        injector.configure("txn.prepare", 0.5)
        fired = 0
        for _ in range(100):
            try:
                injector.check("txn.prepare")
            except MiddlewareError:
                fired += 1
        assert injector.injected["txn.prepare"] == fired
        assert fired > 0


class TestFaultWildcards:
    def test_pattern_site_matches_layer(self):
        injector = FaultInjector()
        injector.configure("bus.*", 1.0)
        with pytest.raises(MiddlewareError):
            injector.check("bus.deliver")
        with pytest.raises(MiddlewareError):
            injector.check("bus.marshal")
        injector.check("txn.prepare")  # other layers untouched

    def test_exact_site_takes_precedence_over_pattern(self):
        injector = FaultInjector()
        injector.configure("bus.*", 1.0)
        injector.configure("bus.deliver", 0.0)
        injector.check("bus.deliver")  # exact 0.0 wins
        with pytest.raises(MiddlewareError):
            injector.check("bus.other")

    def test_injected_counters_use_concrete_site(self):
        injector = FaultInjector()
        injector.configure("bus.*", 1.0)
        for _ in range(2):
            with pytest.raises(MiddlewareError):
                injector.check("bus.deliver")
        with pytest.raises(MiddlewareError):
            injector.check("bus.flush")
        assert injector.injected == {"bus.deliver": 2, "bus.flush": 1}

    def test_scripted_pattern_fail_next(self):
        injector = FaultInjector()
        injector.fail_next("txn.*", count=2)
        with pytest.raises(MiddlewareError):
            injector.check("txn.prepare")
        with pytest.raises(MiddlewareError):
            injector.check("txn.commit")
        injector.check("txn.prepare")  # budget exhausted

    def test_pattern_uses_configured_exception(self):
        class Boom(MiddlewareError):
            pass

        injector = FaultInjector()
        injector.configure("naming.*", 1.0, exception=Boom)
        with pytest.raises(Boom):
            injector.check("naming.resolve")

    def test_clear_removes_pattern(self):
        injector = FaultInjector()
        injector.configure("bus.*", 1.0)
        injector.clear("bus.*")
        injector.check("bus.deliver")

    def test_thread_safety_counts_are_exact(self):
        injector = FaultInjector(3)
        injector.configure("hot.site", 0.5)
        fired = [0] * 4

        def worker(i):
            for _ in range(500):
                try:
                    injector.check("hot.site")
                except MiddlewareError:
                    fired[i] += 1

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.injected["hot.site"] == sum(fired)
        assert 0 < sum(fired) < 2000


# ---------------------------------------------------------------------------
# thread-local transaction and context state
# ---------------------------------------------------------------------------


class TestThreadLocalState:
    def test_transactions_are_invisible_across_threads(self):
        manager = TransactionManager()
        seen = {}
        gate = threading.Barrier(2)

        def worker(name):
            with manager.transaction() as tx:
                gate.wait(timeout=5)
                seen[name] = (manager.current() is tx, tx.txid)
                gate.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen["w0"][0] and seen["w1"][0]
        assert seen["w0"][1] != seen["w1"][1]
        assert manager.current() is None
        assert manager.commits == 2

    def test_commit_from_wrong_thread_rejected(self):
        manager = TransactionManager()
        tx = manager.begin()
        error = []

        def other():
            try:
                manager.commit(tx)
            except TransactionError as exc:
                error.append(exc)

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert error, "commit on a foreign thread must not find the tx current"
        manager.rollback(tx)

    def test_envelope_context_survives_async_replies(self):
        """Credentials + txn id captured at issue time reach the servant
        even though delivery happens on a transport thread, and the
        caller's thread-local context is gone by then."""
        orb = Orb()
        seen = {}

        class Servant:
            def probe(self):
                ctx = orb.current_context()
                seen["credentials"] = ctx.get("credentials")
                seen["txn_id"] = ctx.get("txn_id")
                seen["thread"] = threading.current_thread().name
                return "done"

        orb.register(Servant(), name="servant")
        proxy = orb.proxy("servant")
        with orb.call_context(credentials="tok-1", txn_id="T-9"):
            future = proxy.probe.async_()
        # the issuing context is closed before the reply is awaited
        assert orb.current_context() == {}
        assert future.result(timeout_ms=5000) == "done"
        assert seen["credentials"] == "tok-1"
        assert seen["txn_id"] == "T-9"
        assert seen["thread"] != threading.current_thread().name
        assert future.envelope.request.context == {
            "credentials": "tok-1",
            "txn_id": "T-9",
        }
        orb.bus.shutdown()

    def test_envelope_context_survives_oneway_calls(self):
        orb = Orb()
        seen = []

        class Servant:
            def note(self):
                ctx = orb.current_context()
                seen.append((ctx.get("credentials"), ctx.get("txn_id")))

        orb.register(Servant(), name="servant")
        proxy = orb.proxy("servant")
        with orb.call_context(credentials="tok-2", txn_id="T-11"):
            proxy.note.oneway()
        assert orb.bus.drain(timeout_s=5), "oneway delivery did not land"
        assert seen == [("tok-2", "T-11")]
        orb.bus.shutdown()

    def _probe_federation(self):
        """Two nodes with plain servants: a relay on one node calling a
        probe on the other through the federation."""
        from repro.runtime import Federation

        federation = Federation(seed=0)
        node_a = federation.add_node("node-a")
        node_b = federation.add_node("node-b")
        # partition keys owned by each node (found by hashing)
        key_a = next(
            f"p{i}" for i in range(100)
            if federation.node_for(f"p{i}") is node_a
        )
        key_b = next(
            f"p{i}" for i in range(100)
            if federation.node_for(f"p{i}") is node_b
        )
        seen = {}

        class Probe:
            def __init__(self, orb):
                self.orb = orb

            def who(self):
                ctx = self.orb.current_context()
                seen["credentials"] = ctx.get("credentials")
                seen["txn_id"] = ctx.get("txn_id")
                return "probed"

        class Relay:
            def relay(self):
                # no explicit context: the nested hop must inherit the
                # delivery context of the request being served
                return federation.call(f"{key_b}/Probe/0", "who")

        node_a.bind(f"{key_a}/Relay/0", Relay())
        node_b.bind(f"{key_b}/Probe/0", Probe(node_b.services.orb))
        return federation, key_a, seen

    def test_context_survives_cross_node_nested_dispatch(self):
        federation, key_a, seen = self._probe_federation()
        try:
            result = federation.call(
                f"{key_a}/Relay/0",
                "relay",
                context={"credentials": "tok-3", "txn_id": "T-13"},
            )
            assert result == "probed"
            assert seen == {"credentials": "tok-3", "txn_id": "T-13"}
        finally:
            federation.shutdown()

    def test_context_survives_nested_dispatch_on_async_path(self):
        federation, key_a, seen = self._probe_federation()
        try:
            future = federation.call_async(
                f"{key_a}/Relay/0",
                "relay",
                context={"credentials": "tok-4", "txn_id": "T-17"},
            )
            assert future.result(timeout_ms=5000) == "probed"
            assert seen == {"credentials": "tok-4", "txn_id": "T-17"}
        finally:
            federation.shutdown()

    def test_delivery_context_does_not_leak_between_requests(self):
        federation, key_a, seen = self._probe_federation()
        try:
            federation.call(
                f"{key_a}/Relay/0",
                "relay",
                context={"credentials": "tok-5", "txn_id": "T-19"},
            )
            seen.clear()
            federation.call(f"{key_a}/Relay/0", "relay")  # anonymous
            assert seen == {"credentials": None, "txn_id": None}
        finally:
            federation.shutdown()

    def test_orb_context_is_thread_local(self):
        orb = Orb()
        observed = {}
        gate = threading.Barrier(2)

        def worker(name):
            with orb.call_context(who=name):
                gate.wait(timeout=5)
                observed[name] = orb.current_context().get("who")
                gate.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert observed == {"w0": "w0", "w1": "w1"}
        assert orb.current_context() == {}
