"""Failure-injection integration tests: invariants under injected faults.

The strongest whole-stack property: under randomized transport and
prepare-phase faults, the woven bank never loses or creates money —
every failed transfer leaves both accounts exactly as they were.
"""

import pytest

from repro.errors import MiddlewareError, ReproError

from helpers import FULL_BANK_PARAMS, build_bank_model


def _build_app(seed):
    from repro.core import MdaLifecycle, MiddlewareServices

    resource, _ = build_bank_model()
    services = MiddlewareServices.create(seed=seed)
    lifecycle = MdaLifecycle(resource, services=services)
    for concern, params in FULL_BANK_PARAMS.items():
        lifecycle.apply_concern(concern, **params)
    module = lifecycle.build_application(f"faulty_bank_{seed}")
    services.credentials.add_user("alice", "pw", roles=["teller"])
    credential = services.auth.login("alice", "pw")
    return module, services, credential


class TestMoneyConservation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_transport_faults_never_lose_money(self, seed):
        module, services, credential = _build_app(seed)
        services.faults.configure("bus.deliver", 0.15)
        bank = module.Bank()
        a = module.Account(balance=500.0)
        b = module.Account(balance=500.0)
        failures = 0
        for i in range(60):
            total_before = a.balance + b.balance
            try:
                with services.orb.call_context(credentials=credential.token):
                    bank.transfer(a, b, 1.0)
            except ReproError:
                failures += 1
                # the failed transfer must be atomic
                assert a.balance + b.balance == total_before
        assert a.balance + b.balance == 1000.0
        assert failures > 0, "fault injection never fired at 15% over 60 calls"
        assert services.faults.injected.get("bus.deliver", 0) >= failures

    @pytest.mark.parametrize("seed", [5, 6])
    def test_prepare_faults_abort_cleanly(self, seed):
        module, services, credential = _build_app(seed)
        services.faults.configure("txn.prepare", 0.25)
        bank = module.Bank()
        a = module.Account(balance=300.0)
        b = module.Account(balance=0.0)
        aborted = 0
        for _ in range(40):
            try:
                with services.orb.call_context(credentials=credential.token):
                    bank.transfer(a, b, 1.0)
            except ReproError:
                aborted += 1
        assert a.balance + b.balance == 300.0
        assert aborted > 0
        assert services.transactions.aborts >= aborted

    def test_scripted_fault_exact_failure(self):
        module, services, credential = _build_app(99)
        bank = module.Bank()
        a = module.Account(balance=100.0)
        b = module.Account(balance=0.0)
        with services.orb.call_context(credentials=credential.token):
            bank.transfer(a, b, 10.0)  # warm-up, no fault
            services.faults.fail_next("txn.prepare")
            with pytest.raises(ReproError):
                bank.transfer(a, b, 10.0)
            bank.transfer(a, b, 10.0)  # recovered
        assert (a.balance, b.balance) == (80.0, 20.0)

    def test_fault_counters_observable(self):
        module, services, credential = _build_app(7)
        services.faults.fail_next("bus.deliver", 2)
        a = module.Account(balance=10.0)
        failures = 0
        for _ in range(3):
            try:
                with services.orb.call_context(credentials=credential.token):
                    a.getBalance()
            except MiddlewareError:
                failures += 1
        assert failures == 2
        assert services.faults.injected["bus.deliver"] == 2
