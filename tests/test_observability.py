"""Observability plane: tracing, bounded histograms, gauges, event log.

Covers the acceptance criteria of the observability PR:

* digest determinism — a traced run of the elastic churn scenario hashes
  identically to an untraced one (tracing is a run-level toggle, never
  part of the spec digest or outcome hash);
* the failover span oracle — the traced churn run contains a hop span
  carrying a ``failover`` event whose retried child lands on a different
  (promoted) node;
* histogram accuracy — p50/p95/p99/p99.9 within 1% relative error of
  exact nearest-rank on a 1M-sample reference distribution, at fixed
  ``BUCKETS``-slot memory;
* metrics retry semantics — exactly one sample per logical call across
  QoS retries and failover re-deliveries, zero samples for label-less
  batch envelopes;
* the frozen measurement window, the spec round-trip, and the
  reconciler's live observability retune.
"""

import json
import random
import time
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.cli import main as cli_main
from repro.deploy import (
    DeploymentCompiler,
    DeploymentDiff,
    ObservabilitySpec,
    apply as apply_spec,
)
from repro.errors import MiddlewareError
from repro.middleware.envelope import QoS
from repro.runtime import MetricsRegistry, RunConfig, run_scenario
from repro.runtime.metrics import percentile_of_sorted
from repro.runtime.observability import (
    BUCKETS,
    MAX_TRACKED,
    MIN_TRACKED,
    TRACE_KEY,
    EventLog,
    LogHistogram,
    Observability,
    Tracer,
)
from repro.runtime.scenarios import get_scenario

ELASTIC = dict(
    nodes=3, clients=4, ops=160, seed=1, concurrent=False, churn=True
)


@pytest.fixture(scope="module")
def traced_run():
    return run_scenario("banking_elastic", trace=True, **ELASTIC)


@pytest.fixture(scope="module")
def untraced_run():
    return run_scenario("banking_elastic", **ELASTIC)


def banking_spec():
    config = RunConfig(
        scenario="banking",
        nodes=2,
        clients=2,
        ops=20,
        seed=1,
        workers=2,
        entities_per_node=1,
    )
    return get_scenario("banking").deployment_spec(config)


# ---------------------------------------------------------------------------
# bounded histogram
# ---------------------------------------------------------------------------


def test_histogram_percentiles_within_one_percent_at_fixed_memory():
    rng = random.Random(42)
    hist = LogHistogram()
    samples = []
    for _ in range(1_000_000):
        value = rng.lognormvariate(-7.0, 1.2)  # ~100 ns .. tens of ms
        samples.append(value)
        hist.add(value)
    samples.sort()
    for fraction in (0.50, 0.95, 0.99, 0.999):
        exact = percentile_of_sorted(samples, fraction)
        estimate = hist.percentile(fraction)
        assert abs(estimate - exact) / exact <= 0.01, fraction
    # fixed memory: the bucket array never grows with the sample count
    assert len(hist.counts) == BUCKETS
    assert hist.count == 1_000_000
    assert hist.mean() == pytest.approx(sum(samples) / len(samples))


def test_histogram_extremes_stay_exact():
    hist = LogHistogram()
    assert hist.percentile(0.5) == 0.0
    hist.add(0.0042)
    assert hist.percentile(0.5) == pytest.approx(0.0042, rel=0.0075)
    # a single sample pins every percentile between exact min and max
    assert hist.percentile(0.0) == hist.percentile(1.0)
    # out-of-range values clamp into edge buckets, min/max stay exact
    hist.add(MIN_TRACKED / 10)
    hist.add(MAX_TRACKED * 2)
    assert hist.min_seen == MIN_TRACKED / 10
    assert hist.max_seen == MAX_TRACKED * 2
    assert hist.percentile(1.0) == MAX_TRACKED * 2
    snapshot = hist.snapshot()
    assert snapshot["count"] == 3
    assert snapshot["buckets"] == BUCKETS


def test_series_summary_has_p999():
    registry = MetricsRegistry()
    registry.start()
    for i in range(1000):
        registry.record("op", "node-0", 0.001 * (1 + i % 10))
    summary = registry.snapshot()["operations"]["op"]
    assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
    assert summary["p99_ms"] <= summary["p999_ms"]
    assert summary["p999_ms"] == pytest.approx(10.0, rel=0.01)


# ---------------------------------------------------------------------------
# measurement window + report
# ---------------------------------------------------------------------------


def test_elapsed_freezes_at_last_sample_without_stop():
    registry = MetricsRegistry()
    registry.start()
    registry.record("op", "node-0", 0.001)
    frozen = registry.elapsed_s()
    assert frozen > 0.0
    time.sleep(0.02)
    # never stopped: the window must not keep growing with wall clock
    assert registry.elapsed_s() == frozen
    assert registry.throughput_ops_s() == pytest.approx(1.0 / frozen)
    # stop() still takes precedence once called
    registry.stop()
    assert registry.elapsed_s() >= frozen


def test_elapsed_zero_when_nothing_recorded():
    registry = MetricsRegistry()
    assert registry.elapsed_s() == 0.0
    registry.start()
    assert registry.elapsed_s() == 0.0
    assert registry.throughput_ops_s() == 0.0


def test_report_renders_per_node_latency_table():
    registry = MetricsRegistry()
    registry.start()
    registry.record("Bank.transfer", "node-0", 0.002)
    registry.record("Bank.transfer", "node-1", 0.003, error=True)
    registry.stop()
    report = registry.report()
    # both tables use the shared formatter: operation AND node rows
    # carry the full percentile columns
    assert report.count("p50 ms") == 2
    node_lines = [l for l in report.splitlines() if l.startswith("node-")]
    assert len(node_lines) == 2
    for line in node_lines:
        assert len(line.split()) >= 5  # name, count, err, p50, p95, p99


# ---------------------------------------------------------------------------
# metrics element retry semantics
# ---------------------------------------------------------------------------


def _envelope(label, retries=0):
    request = SimpleNamespace(context={}, operation=label or "<batch>", args=[])
    return SimpleNamespace(
        request=request,
        label=label,
        target="node-1",
        attempt=0,
        qos=QoS(retries=retries),
    )


def _drive(element, env, outcomes):
    """Replay the transport's retry loop over ``outcomes`` thunks."""
    last = None
    for attempt, thunk in enumerate(outcomes):
        env.attempt = attempt
        try:
            return element(env, thunk)
        except Exception as exc:  # noqa: BLE001 - loop mirrors transport
            last = exc
    raise last


def test_metrics_element_records_once_across_retries():
    registry = MetricsRegistry()
    registry.start()
    element = registry.element()
    env = _envelope("Bank.transfer", retries=2)

    def fail():
        raise MiddlewareError("injected")

    assert _drive(element, env, [fail, fail, lambda: "ok"]) == "ok"
    series = registry.snapshot()["operations"]["Bank.transfer"]
    assert series["count"] == 1
    assert series["errors"] == 0


def test_metrics_element_records_final_failed_attempt():
    registry = MetricsRegistry()
    registry.start()
    element = registry.element()
    env = _envelope("Bank.transfer", retries=1)

    def fail():
        raise MiddlewareError("injected")

    with pytest.raises(MiddlewareError):
        _drive(element, env, [fail, fail])
    series = registry.snapshot()["operations"]["Bank.transfer"]
    assert series["count"] == 1
    assert series["errors"] == 1


def test_metrics_element_skips_labelless_batch_envelopes():
    registry = MetricsRegistry()
    registry.start()
    element = registry.element()
    env = _envelope(None)
    assert element(env, lambda: "ok") == "ok"
    assert registry.total_requests() == 0


# ---------------------------------------------------------------------------
# tracer unit behaviour
# ---------------------------------------------------------------------------


def _hop_env(label, context, target="node-1", retries=0):
    request = SimpleNamespace(context=context, operation=label, args=[])
    return SimpleNamespace(
        request=request,
        label=label,
        target=target,
        attempt=0,
        qos=QoS(retries=retries),
    )


def test_trace_ids_are_deterministic():
    assert Tracer.trace_id_for(7, 1, 3) == "00000007-0001-000003"
    assert Tracer.trace_id_for(7, 1, 3) == Tracer.trace_id_for(7, 1, 3)
    tracer = Tracer(sample_rate=0.5)
    picks = [tracer.sampled(Tracer.trace_id_for(1, 0, i)) for i in range(300)]
    assert picks == [
        tracer.sampled(Tracer.trace_id_for(1, 0, i)) for i in range(300)
    ]
    assert 0 < sum(picks) < 300  # neither all-in nor all-out


def test_tracer_tree_and_critical_path():
    tracer = Tracer(slow_call_ms=0.0)
    tracer.enabled = True
    trace_id = Tracer.trace_id_for(7, 1, 3)
    hop_element = tracer.element()
    bus_element = tracer.bus_element("node-1")

    with tracer.client_span("Bank.op", trace_id):
        env = _hop_env("Bank.op", {TRACE_KEY: tracer.current_headers()})

        def deliver():
            bus_env = _hop_env("op", dict(env.request.context))
            return bus_element(
                bus_env, lambda: SimpleNamespace(is_error=False)
            )

        hop_element(env, deliver)

    tree = tracer.trace_tree(trace_id)
    assert len(tree) == 1
    root = tree[0]
    assert root["span"]["kind"] == "client"
    assert root["span"]["span_id"] == f"{trace_id}.0"
    hop = root["children"][0]
    assert hop["span"]["kind"] == "hop"
    assert hop["span"]["target"] == "node-1"
    bus = hop["children"][0]
    assert bus["span"]["kind"] == "bus"
    assert bus["span"]["status"] == "ok"
    path = tracer.critical_path(trace_id)
    assert [span.kind for span in path] == ["client", "hop", "bus"]
    assert tracer.slowest() == [trace_id]
    # slow_call_ms=0 marks every finished span slow
    assert tracer.slow_count == 3
    assert all(span.slow for span in tracer.spans())


def test_tracer_disabled_and_unsampled_are_noops():
    tracer = Tracer()
    with tracer.client_span("op", Tracer.trace_id_for(1, 0, 0)) as span:
        assert span is None
    env = _hop_env("op", {})
    assert tracer.element()(env, lambda: "ok") == "ok"
    assert tracer.spans() == []
    tracer.enabled = True
    tracer.sample_rate = 0.0
    with tracer.client_span("op", Tracer.trace_id_for(1, 0, 0)) as span:
        assert span is None
    assert tracer.spans() == []


def test_tracer_ring_drops_oldest_and_counts():
    tracer = Tracer(capacity=2)
    tracer.enabled = True
    for index in range(4):
        with tracer.client_span("op", Tracer.trace_id_for(1, 0, index)):
            pass
    assert len(tracer.spans()) == 2
    assert tracer.dropped == 2
    export = tracer.export()
    assert export["span_count"] == 2
    assert export["dropped"] == 2
    tracer.reset()
    assert tracer.spans() == [] and tracer.dropped == 0


def test_event_log_is_bounded_with_monotonic_seqs():
    log = EventLog(capacity=2)
    for index in range(5):
        log.emit("tick", index=index)
    assert len(log) == 2
    assert log.dropped == 3
    assert [record["seq"] for record in log.records()] == [4, 5]
    assert log.last("tick")["index"] == 4
    assert log.records("other") == []
    log.set_capacity(1)
    assert log.capacity == 1
    assert [record["seq"] for record in log.records()] == [5]


def test_observability_facade_configure_and_describe():
    obs = Observability(seed=3)
    obs.configure(
        {
            "sample_rate": 0.5,
            "slow_call_ms": 1.0,
            "span_capacity": 16,
            "event_log_capacity": 8,
        }
    )
    described = obs.describe()
    assert described["sample_rate"] == 0.5
    assert described["slow_call_ms"] == 1.0
    assert described["span_capacity"] == 16
    assert described["event_log_capacity"] == 8
    assert described["tracing"] is False
    obs.enable_tracing()
    assert obs.describe()["tracing"] is True
    record = obs.emit("kill", node="node-0")
    assert record["kind"] == "kill" and record["seq"] == 1


# ---------------------------------------------------------------------------
# traced elastic churn run: digests, failover oracle, events, gauges
# ---------------------------------------------------------------------------


def test_traced_run_digest_matches_untraced(traced_run, untraced_run):
    assert traced_run.config["spec_digest"] == untraced_run.config["spec_digest"]
    assert traced_run.digest() == untraced_run.digest()
    assert untraced_run.trace is None
    assert untraced_run.to_dict()["trace"] is None
    assert traced_run.trace is not None
    assert traced_run.to_dict()["trace"]["tracer"]["span_count"] > 0


def test_traced_run_failover_span_lands_on_promoted_node(traced_run):
    spans = traced_run.trace["tracer"]["spans"]
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span["parent_id"], []).append(span)
    failed = [
        span
        for span in spans
        if span["kind"] == "hop"
        and any(e.get("event") == "failover" for e in span["events"])
    ]
    assert failed, "no hop span recorded the failover promotion"
    promoted = [
        child
        for span in failed
        for child in by_parent.get(span["span_id"], [])
        if child["kind"] == "hop" and child["target"] != span["target"]
    ]
    assert promoted, "failover retry did not land on a different node"
    assert any(
        any(e.get("event") == "retry" for e in child["events"])
        for child in promoted
    )


def test_traced_run_meters_each_logical_call_once(traced_run):
    # QoS retries and failover re-deliveries happened (the failover span
    # test proves it), yet every logical client call produced exactly
    # one metrics sample
    per_op = traced_run.metrics["operations"]
    assert sum(series["count"] for series in per_op.values()) == traced_run.ops


def test_traced_run_event_log_and_gauges(traced_run):
    events = traced_run.trace["events"]
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    kinds = {event["kind"] for event in events}
    assert {"replication_enabled", "kill", "failover", "join", "retire"} <= kinds
    kill = next(e for e in events if e["kind"] == "kill")
    failover = next(e for e in events if e["kind"] == "failover")
    assert failover["node"] == kill["node"]
    assert failover["seq"] > kill["seq"]
    gauges = traced_run.trace["gauges"]
    assert any(
        name.startswith("node.") and name.endswith(".in_flight")
        for name in gauges
    )
    assert "replication.lag" in gauges
    assert "replication.max_lag" in gauges
    for series in gauges.values():
        assert series["samples"] >= 1


# ---------------------------------------------------------------------------
# spec + reconciler
# ---------------------------------------------------------------------------


def test_observability_spec_roundtrip_and_defaults():
    spec = ObservabilitySpec(
        sample_rate=0.5, slow_call_ms=10.0, event_log_capacity=64,
        span_capacity=128,
    )
    assert ObservabilitySpec.from_dict(spec.to_dict()) == spec
    # old spec JSON without the section parses to defaults
    assert ObservabilitySpec.from_dict({}) == ObservabilitySpec()
    deployment = banking_spec()
    assert deployment.observability == ObservabilitySpec()
    parsed = type(deployment).from_json(deployment.to_json())
    assert parsed.observability == deployment.observability
    assert "observe:" in deployment.describe()


def test_observability_spec_validation():
    deployment = banking_spec()
    bad = replace(deployment, observability=ObservabilitySpec(sample_rate=1.5))
    assert any("sample" in p for p in bad.problems())
    bad = replace(
        deployment, observability=ObservabilitySpec(slow_call_ms=-1.0)
    )
    assert any("slow" in p for p in bad.problems())
    bad = replace(
        deployment, observability=ObservabilitySpec(event_log_capacity=0)
    )
    assert bad.problems()
    bad = replace(deployment, observability=ObservabilitySpec(span_capacity=0))
    assert bad.problems()


def test_observability_knobs_do_not_move_spec_digest():
    deployment = banking_spec()
    tuned = replace(
        deployment,
        observability=ObservabilitySpec(sample_rate=0.25, slow_call_ms=5.0),
    )
    # the knobs ARE part of the spec digest (they're declared config)...
    assert deployment.digest() != tuned.digest()
    # ...but the default section digests identically to its absence in
    # older spec JSON, so pre-observability specs keep their digest
    legacy = json.loads(deployment.to_json())
    del legacy["observability"]
    reparsed = type(deployment).from_dict(legacy)
    assert reparsed.digest() == deployment.digest()


def test_reconciler_retunes_observability_live():
    deployment = banking_spec()
    target = replace(
        deployment,
        observability=ObservabilitySpec(
            sample_rate=0.25,
            slow_call_ms=5.0,
            event_log_capacity=32,
            span_capacity=256,
        ),
    )
    diff = DeploymentDiff.between(deployment, target)
    assert not diff.empty
    assert diff.observability_change == target.observability
    plan = diff.plan()
    assert [action.kind for action in plan.actions] == ["set_observability"]
    assert "observability" in diff.describe()
    federation = DeploymentCompiler().deploy(deployment)
    try:
        apply_spec(federation, target)
        assert federation.observability.tracer.sample_rate == 0.25
        assert federation.observability.tracer.slow_call_ms == 5.0
        assert federation.observability.tracer.capacity == 256
        assert federation.observability.events.capacity == 32
        # extract_spec round-trips the live knobs: the reconciler now
        # sees a converged topology
        assert federation.current_spec().observability == target.observability
        assert DeploymentDiff.between(
            federation.current_spec(), target
        ).empty
    finally:
        federation.shutdown()


def test_bootstrap_plan_lists_observability_step():
    plan = DeploymentCompiler().compile(banking_spec())
    assert any(step.kind == "observability" for step in plan.steps)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_trace_renders_span_trees(traced_run, tmp_path, capsys):
    results = tmp_path / "results.json"
    results.write_text(json.dumps(traced_run.to_dict()), encoding="utf-8")
    assert cli_main(["trace", str(results), "--slowest", "2"]) == 0
    out = capsys.readouterr().out
    assert "span(s)" in out
    assert "(client)" in out and "(hop" in out
    assert cli_main(["trace", str(results), "--errors"]) == 0
    capsys.readouterr()
    # a bare --trace-out export renders identically
    export = tmp_path / "trace.json"
    export.write_text(json.dumps(traced_run.trace), encoding="utf-8")
    assert cli_main(["trace", str(export), "--slowest", "1"]) == 0
    out = capsys.readouterr().out
    assert "(client)" in out
    # a specific trace id
    trace_id = traced_run.trace["tracer"]["spans"][0]["trace_id"]
    assert cli_main(["trace", str(export), "--trace-id", trace_id]) == 0


def test_cli_trace_rejects_untraced_results(tmp_path, capsys):
    results = tmp_path / "plain.json"
    results.write_text(json.dumps({"trace": None}), encoding="utf-8")
    assert cli_main(["trace", str(results)]) == 2
    assert "no trace data" in capsys.readouterr().err


def test_cli_simulate_describe_includes_observability(capsys):
    assert (
        cli_main(
            ["simulate", "--scenario", "banking_elastic", "--serial", "--describe"]
        )
        == 0
    )
    described = json.loads(capsys.readouterr().out)
    assert described["trace"] is False
    assert described["observability"] == ObservabilitySpec().to_dict()


def test_cli_simulate_trace_flags_in_help(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["simulate", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--trace" in out and "--trace-out" in out
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["trace", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--slowest" in out and "--errors" in out and "--trace-id" in out
