"""Socket transport: loopback federation wire mode + raw socket layer.

Every test runs the federation in ``transport="socket"`` mode: each
routed hop is marshalled, framed, sent over a real TCP (or unix-domain)
connection to the owner node's listener, dispatched there, and the
result (or fault) framed back — while the entire client-side
interceptor chain (metrics, tracing, fault injection, failover,
latency, routing) runs unmodified.  The oracle throughout is the
in-process federation: same calls, same results, same exception
shapes, same failover sequence.
"""

import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.errors import (
    FederationError,
    NodeDownError,
    ProtocolError,
    RemoteInvocationError,
    TransportError,
)
from repro.middleware.envelope import QoS, is_retryable
from repro.middleware.sockets import (
    ConnectionPool,
    SocketTransport,
    WireClient,
    WireServer,
    parse_endpoint,
)
from repro.middleware.wire import WireSession
from repro.runtime import Federation

RETRY = QoS(retries=3)


class Counter:
    def __init__(self, value=0.0):
        self.value = value

    def bump(self, amount):
        self.value += amount
        return self.value

    def read(self):
        return self.value

    def boom(self):
        raise ValueError("no")


MODULE = SimpleNamespace(Counter=Counter)


def build(transport="socket", nodes=3, partitions=6, replication=0, **kwargs):
    federation = Federation(latency_ms=0.0, transport=transport, **kwargs)
    for i in range(nodes):
        federation.add_node(f"node-{i}").host(None, MODULE)
    names = []
    for k in range(partitions):
        partition = f"part-{k}"
        node = federation.node_for(partition)
        name = f"{partition}/Counter/0"
        node.bind(name, Counter(100.0))
        names.append(name)
    if replication:
        federation.enable_replication(replication)
    return federation, names


def _envelope(target):
    from repro.middleware.bus import Request
    from repro.middleware.envelope import Envelope

    return Envelope(
        request=Request(
            object_id="obj-1", operation="op", args=[], kwargs={}, context={}
        ),
        target=target,
        label="T.op",
    )


class _ScriptedServer:
    """A raw listener speaking just enough wire protocol to misbehave.

    Completes the HELLO handshake, then runs
    ``script(conn, session, kind, payload)`` per conversation frame —
    returning True closes the connection (the mid-call disconnect).
    ``close_after_handshake`` drops each connection right after the
    handshake instead (the peer-closed-while-idle case).  Connections
    are served sequentially; the listener stays up until :meth:`close`.
    """

    def __init__(self, script, close_after_handshake=False):
        self._script = script
        self._close_after_handshake = close_after_handshake
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        host, port = self._listener.getsockname()
        self.endpoint = f"tcp://{host}:{port}"
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                self._converse(conn)
            except OSError:
                pass
            finally:
                conn.close()

    def _converse(self, conn):
        session = WireSession("server", node="scripted")
        while True:
            data = conn.recv(65536)
            if not data:
                return
            session.feed(data)
            greeting = session.take_outbound()
            if greeting:
                conn.sendall(greeting)
            if session.handshaken and self._close_after_handshake:
                return
            for kind, payload in session.events():
                if self._script(conn, session, kind, payload):
                    return

    def close(self):
        self._listener.close()


# ---------------------------------------------------------------------------
# endpoint parsing
# ---------------------------------------------------------------------------


def test_parse_endpoints():
    assert parse_endpoint("tcp://127.0.0.1:9307") == ("tcp", ("127.0.0.1", 9307))
    assert parse_endpoint("unix:///tmp/a.sock") == ("unix", "/tmp/a.sock")
    with pytest.raises(TransportError):
        parse_endpoint("http://example.com")


# ---------------------------------------------------------------------------
# the wire server/client layer, bare
# ---------------------------------------------------------------------------


class TestWireLayer:
    def test_request_response_over_tcp(self):
        from repro.middleware.bus import Request
        from repro.middleware.envelope import Envelope

        served = []

        def handler(envelope):
            served.append(envelope.request.operation)
            return envelope.request.args[0] * 2

        server = WireServer(node="w", request_handler=handler)
        endpoint = server.start()
        try:
            transport = SocketTransport({"w": endpoint}.get)
            request = Request(
                object_id="obj-1", operation="double", args=[21], kwargs={},
                context={},
            )
            envelope = Envelope(request=request, target="w", label="T.double")
            response = transport.roundtrip("w", envelope)
            assert response.result == 42
            assert served == ["double"]
            transport.shutdown()
        finally:
            server.stop()

    def test_unknown_node_is_node_down(self):
        transport = SocketTransport({}.get)
        from repro.middleware.bus import Request
        from repro.middleware.envelope import Envelope

        envelope = Envelope(
            request=Request(
                object_id="o", operation="x", args=[], kwargs={}, context={}
            ),
            target="ghost",
        )
        with pytest.raises(NodeDownError) as excinfo:
            transport.roundtrip("ghost", envelope)
        assert excinfo.value.node == "ghost"
        assert excinfo.value.pre_effect

    def test_reply_timeout_is_mid_call_and_not_retryable(self):
        """The review's core at-most-once scenario: a slow handler on a
        *living* node times the client out after the request was fully
        written — the effect may land, so the fault must not be
        pre-effect-retryable."""
        import time as time_module

        server = WireServer(
            node="w", request_handler=lambda env: time_module.sleep(1.2) or 1
        )
        endpoint = server.start()
        try:
            transport = SocketTransport({"w": endpoint}.get, timeout_s=0.3)
            with pytest.raises(NodeDownError) as excinfo:
                transport.roundtrip("w", _envelope("w"))
            assert excinfo.value.mid_call
            assert not excinfo.value.pre_effect
            assert not is_retryable(excinfo.value)
            transport.shutdown()
        finally:
            server.stop()

    def test_disconnect_after_request_sent_is_mid_call(self):
        """A connection dropped after the request frame was written is
        the ambiguous case: NodeDownError, but never blind-retried and
        not retryable until failover confirms the node died."""
        server = _ScriptedServer(lambda conn, session, kind, payload: True)
        try:
            transport = SocketTransport({"w": server.endpoint}.get)
            with pytest.raises(NodeDownError) as excinfo:
                transport.roundtrip("w", _envelope("w"))
            assert excinfo.value.mid_call
            assert not excinfo.value.pre_effect
            assert not is_retryable(excinfo.value)
            transport.shutdown()
        finally:
            server.close()

    def test_mismatched_correlation_id_fails_loudly(self):
        from repro.middleware.bus import Response

        def misreply(conn, session, kind, payload):
            wrong = payload["correlation_id"] + 7
            conn.sendall(
                session.send_response(
                    wrong, Response(payload["request"]["message_id"], result=1)
                )
            )
            return False

        server = _ScriptedServer(misreply)
        try:
            transport = SocketTransport({"w": server.endpoint}.get)
            with pytest.raises(ProtocolError, match="correlates to"):
                transport.roundtrip("w", _envelope("w"))
            transport.shutdown()
        finally:
            server.close()

    def test_control_failure_closes_the_checked_out_connection(self, monkeypatch):
        closed = []
        original = WireClient.close
        monkeypatch.setattr(
            WireClient, "close", lambda self: (closed.append(self), original(self))
        )
        server = _ScriptedServer(lambda conn, session, kind, payload: True)
        try:
            transport = SocketTransport({"w": server.endpoint}.get)
            with pytest.raises(NodeDownError):
                transport.control("w", {"verb": "ping"})
            assert len(closed) == 1  # no socket leaked until GC
            transport.shutdown()
        finally:
            server.close()

    def test_pool_discards_connections_closed_while_idle(self):
        """The checkout probe: a pooled connection the peer closed is
        discarded before any request bytes are risked on it."""
        server = _ScriptedServer(script=None, close_after_handshake=True)
        try:
            pool = ConnectionPool(node="c")
            client, pooled = pool.checkout(server.endpoint)
            assert not pooled
            pool.checkin(client)
            time.sleep(0.2)  # let the server's close reach the socket
            fresh, pooled = pool.checkout(server.endpoint)
            assert not pooled and fresh is not client
            assert pool.dials == 2 and pool.reuses == 0
            fresh.close()
            pool.close()
        finally:
            server.close()

    def test_connection_pool_reuses_and_invalidates(self):
        server = WireServer(node="w", request_handler=lambda env: None)
        endpoint = server.start()
        try:
            pool = ConnectionPool(node="c")
            client, pooled = pool.checkout(endpoint)
            assert not pooled
            pool.checkin(client)
            again, pooled = pool.checkout(endpoint)
            assert pooled and again is client
            pool.checkin(again)
            pool.invalidate(endpoint)
            fresh, pooled = pool.checkout(endpoint)
            assert not pooled
            assert pool.dials == 2 and pool.reuses == 1
            fresh.close()
            pool.close()
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# federation loopback socket mode
# ---------------------------------------------------------------------------


class TestSocketFederation:
    def test_unknown_transport_mode_is_refused(self):
        with pytest.raises(FederationError, match="unknown transport mode"):
            Federation(transport="carrier-pigeon")

    def test_call_parity_with_inproc(self):
        """Same workload, both modes: identical results and routing."""
        results = {}
        for mode in ("inproc", "socket"):
            federation, names = build(transport=mode)
            try:
                values = [
                    federation.call(name, "bump", float(i))
                    for i, name in enumerate(names)
                ]
                values += [federation.call(name, "read") for name in names]
                results[mode] = (values, dict(federation.routed))
            finally:
                federation.shutdown()
        assert results["socket"] == results["inproc"]

    def test_exception_parity_with_inproc(self):
        """A servant raising a builtin degrades identically in both modes."""
        shapes = {}
        for mode in ("inproc", "socket"):
            federation, names = build(transport=mode, partitions=1)
            try:
                with pytest.raises(RemoteInvocationError) as excinfo:
                    federation.call(names[0], "boom")
                shapes[mode] = (
                    type(excinfo.value).__name__,
                    str(excinfo.value),
                    getattr(excinfo.value, "_remote_rebuilt", False),
                )
            finally:
                federation.shutdown()
        assert shapes["socket"] == shapes["inproc"]

    def test_oneway_acks_after_effect(self):
        federation, names = build()
        try:
            federation.call_oneway(names[0], "bump", 5.0)
            assert federation.quiesce(5.0)
            assert federation.call(names[0], "read") == 105.0
        finally:
            federation.shutdown()

    def test_async_calls_over_sockets(self):
        federation, names = build()
        try:
            futures = [
                federation.call_async(name, "bump", 1.0) for name in names
            ]
            assert [f.result(5000) for f in futures] == [101.0] * len(names)
        finally:
            federation.shutdown()

    def test_unix_domain_family(self):
        federation, names = build(socket_family="unix")
        try:
            assert federation.call(names[0], "bump", 1.0) == 101.0
            endpoint = federation._endpoints[federation.naming.owner_of(names[0])]
            assert endpoint.startswith("unix://")
        finally:
            federation.shutdown()

    def test_kill_mid_stream_fails_over_and_retries(self):
        """Dead node -> wire FAULT -> NodeDownError -> promotion -> retry."""
        federation, names = build(replication=1)
        try:
            name = names[0]
            federation.call(name, "bump", 11.0)
            owner = federation.naming.owner_of(name)
            federation.kill(owner)
            # retry budget re-delivers onto the promoted standby
            assert federation.call(name, "read", qos=RETRY) == 111.0
            assert federation.failovers >= 1
            new_owner = federation.naming.owner_of(name)
            assert new_owner != owner
            # wire stats observed actual connection churn
            stats = federation._socket_transport.stats()
            assert stats["roundtrips"] > 0
        finally:
            federation.shutdown()

    def test_no_retry_budget_surfaces_node_down(self):
        federation, names = build(replication=1)
        try:
            owner = federation.naming.owner_of(names[0])
            federation.kill(owner)
            with pytest.raises(NodeDownError):
                federation.call(names[0], "read")  # zero retries
        finally:
            federation.shutdown()

    def test_interceptor_chain_runs_on_socket_hops(self):
        """Metrics, fault injection, and routing all observe wire hops."""
        federation, names = build(partitions=4)
        try:
            federation.configure_fault("federation.route", 1.0)
            with pytest.raises(Exception):
                federation.call(names[0], "read")
            federation.configure_fault("federation.route", 0.0)
            for name in names:
                federation.call(name, "read")
            assert sum(federation.routed.values()) >= len(names)
            assert federation.faults_injected().get("federation.route", 0) >= 1
            snapshot = federation.metrics.snapshot()
            assert snapshot  # hop timings recorded client-side
        finally:
            federation.shutdown()

    def test_traced_hop_spans_carry_worker_node(self):
        """A traced cross-wire call shows hop spans with the serving node."""
        federation, names = build(partitions=2)
        try:
            federation.observability.tracer.enabled = True
            name = names[0]
            owner = federation.naming.owner_of(name)
            with federation.observability.tracer.client_span(
                "client.read", "trace-1"
            ):
                federation.call(name, "read")
            spans = federation.observability.tracer.export()["spans"]
            hop_spans = [s for s in spans if s["kind"] == "hop"]
            assert hop_spans, f"no hop spans in {spans!r}"
            assert any(s["target"] == owner for s in hop_spans)
            # the hop ran over a real connection, not in-process
            assert federation._socket_transport.stats()["roundtrips"] >= 1
        finally:
            federation.shutdown()

    def test_nested_cross_node_calls_over_sockets(self):
        """A servant calling another partition mid-dispatch crosses the
        wire again from inside the server-side dispatch thread."""
        federation, names = build(partitions=4)

        class Chainer:
            def __init__(self, federation, next_name):
                self._federation = federation
                self._next = next_name

            def __getstate__(self):  # keep replication off our back
                return {}

            def relay(self, amount):
                return self._federation.call(self._next, "bump", amount)

        try:
            # bind the chainer on whatever node owns its partition
            node = federation.node_for("chain")
            module = SimpleNamespace(Counter=Counter, Chainer=Chainer)
            for member in federation.nodes.values():
                member.host(None, module)
            node.bind("chain/Chainer/0", Chainer(federation, names[0]))
            assert federation.call("chain/Chainer/0", "relay", 2.5) == 102.5
            assert federation.call(names[0], "read") == 102.5
        finally:
            federation.shutdown()

    def test_retired_node_endpoint_is_withdrawn(self):
        federation, names = build(partitions=6)
        try:
            victim = "node-2"
            assert victim in federation._endpoints
            federation.retire(victim)
            assert victim not in federation._endpoints
            # calls still succeed, re-routed to surviving listeners
            for name in names:
                federation.call(name, "read", qos=RETRY)
        finally:
            federation.shutdown()
