"""Wire transport: cross-process scaling + socket loopback overhead.

Two claims, one file:

1. **Scaling** — a CPU-bound workload routed over the socket wire to
   worker *processes* scales with the number of workers, because each
   worker owns its own interpreter: target >= 2x going 1 -> 4 node
   processes (CI floor 1.5x).  The in-process federation cannot show
   this on any machine — every node shares one GIL.  The measurement
   records ``cores`` honestly: on a single-core container the floor is
   unreachable and is therefore only enforced where ``cores >= 4``
   (the CI runners).

2. **Overhead** — the price of the wire itself: the same trivial
   workload through the in-process transport vs the loopback socket
   transport, reported as an overhead ratio and per-call microseconds.
   This bounds what the scaling half has to amortize.

Results land in ``BENCH_wire.json`` with a machine-readable ``floor``
so CI can enforce the scaling bar without eyeballing.

Run standalone:  python benchmarks/bench_wire.py
"""

from __future__ import annotations

import os
import threading
import time
from types import SimpleNamespace

from _benchjson import write_bench_json

from repro.deploy.compiler import register_application
from repro.deploy.spec import (
    ApplicationSpec,
    ConcernSpec,
    DeploymentSpec,
    NodeSpec,
    PartitionSpec,
    ServantSpec,
)
from repro.runtime import Federation
from repro.runtime.procfed import ProcessFederation
from repro.uml import (
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)

#: CPU rounds per grind call — the work each routed request pins a
#: worker-process core with (~2 ms of pure interpreter time)
ROUNDS = 20_000
#: total grind calls per topology, spread over the client threads
OPS = 240
#: concurrent closed-loop client threads driving the front-end
CLIENTS = 8
#: worker-process counts compared: scaling = throughput[4] / throughput[1]
TOPOLOGIES = (1, 4)
#: acceptance floor enforced by CI (target is 2x); only meaningful
#: where the host actually has the cores to parallelize onto
FLOOR = 1.5
FLOOR_MIN_CORES = 4

#: calls per overhead measurement (trivial op, both transports)
OVERHEAD_OPS = 400


# ---------------------------------------------------------------------------
# the CPU-bound application, shipped to workers as generated code
# ---------------------------------------------------------------------------


def build_grinder():
    """A one-class PIM: ``Grinder.grind(rounds)`` burns pure CPU."""
    resource, model = new_model("hashwork")
    prims = ensure_primitives(model)
    pkg = add_package(model, "work")
    grinder = add_class(pkg, "Grinder")
    grind = add_operation(
        grinder,
        "grind",
        [("rounds", prims["Integer"])],
        return_type=prims["Integer"],
    )
    apply_stereotype(
        grind,
        "PythonBody",
        body=(
            "h = 1469598103934665603\n"
            "for i in range(rounds):\n"
            "    h = ((h ^ i) * 1099511628211) & 0xFFFFFFFFFFFFFFFF\n"
            "return h % 1000000007"
        ),
    )
    return resource


register_application("hashwork", build_grinder)


def grinder_spec(nodes: int, partitions_per_node: int = 2) -> DeploymentSpec:
    n_partitions = max(nodes * partitions_per_node, 1)
    return DeploymentSpec(
        name="hashwork",
        application=ApplicationSpec(
            name="hashwork",
            builder="hashwork",
            concerns=(
                ConcernSpec(
                    concern="distribution",
                    params={
                        "server_classes": ["Grinder"],
                        "registry_prefix": "work",
                    },
                ),
            ),
        ),
        nodes=tuple(NodeSpec(name=f"node-{i}") for i in range(nodes)),
        partitions=tuple(
            PartitionSpec(
                key=f"part-{k}",
                servants=(
                    ServantSpec(name=f"part-{k}/Grinder/0", type_name="Grinder"),
                ),
            )
            for k in range(n_partitions)
        ),
        seed=1,
    )


def _drive(call, names, ops, clients):
    """Closed-loop client threads; returns (elapsed_s, results)."""
    counter = {"next": 0}
    lock = threading.Lock()
    results = []
    errors = []

    def loop():
        while True:
            with lock:
                i = counter["next"]
                if i >= ops:
                    return
                counter["next"] = i + 1
            try:
                results.append(call(names[i % len(names)]))
            except Exception as exc:  # noqa: BLE001 - a failed op fails the bench
                errors.append(exc)
                return

    threads = [threading.Thread(target=loop) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    assert len(results) == ops
    return elapsed


def run_scaling():
    """Routed grind throughput at each worker-process count."""
    expected = None
    points = {}
    for nodes in TOPOLOGIES:
        spec = grinder_spec(nodes)
        names = [f"{p.key}/Grinder/0" for p in spec.partitions]
        with ProcessFederation(spec) as federation:
            # every grind(ROUNDS) returns the same digest — assert it so
            # a worker that dropped or corrupted work cannot pass
            probe = federation.call(names[0], "grind", ROUNDS)
            if expected is None:
                expected = probe
            assert probe == expected
            elapsed = _drive(
                lambda name: federation.call(name, "grind", ROUNDS),
                names,
                OPS,
                CLIENTS,
            )
            stats = federation.stats()["transport"]
        points[nodes] = {
            "ops": OPS,
            "duration_s": elapsed,
            "throughput_ops_s": OPS / elapsed,
            "roundtrips": stats["roundtrips"],
        }
    low, high = TOPOLOGIES
    scaling = (
        points[high]["throughput_ops_s"] / points[low]["throughput_ops_s"]
    )
    cores = os.cpu_count() or 1
    return {
        "rounds_per_call": ROUNDS,
        "clients": CLIENTS,
        "topologies": list(TOPOLOGIES),
        "per_workers": {str(k): v for k, v in points.items()},
        "scaling": scaling,
        "floor": FLOOR,
        "cores": cores,
        # a single-core host cannot parallelize worker processes; the
        # floor is only a promise where the hardware can honor it
        "floor_enforced": cores >= FLOOR_MIN_CORES,
    }


# ---------------------------------------------------------------------------
# loopback overhead: socket hops vs in-process hops
# ---------------------------------------------------------------------------


class Counter:
    def __init__(self):
        self.value = 0.0

    def bump(self, amount):
        self.value += amount
        return self.value


MODULE = SimpleNamespace(Counter=Counter)


def _loopback_throughput(transport):
    federation = Federation(latency_ms=0.0, transport=transport)
    try:
        for i in range(2):
            federation.add_node(f"node-{i}").host(None, MODULE)
        names = []
        for k in range(4):
            name = f"part-{k}/Counter/0"
            federation.node_for(f"part-{k}").bind(name, Counter())
            names.append(name)
        elapsed = _drive(
            lambda name: federation.call(name, "bump", 1.0),
            names,
            OVERHEAD_OPS,
            clients=4,
        )
        return OVERHEAD_OPS / elapsed
    finally:
        federation.shutdown()


def run_overhead():
    inproc = _loopback_throughput("inproc")
    socket = _loopback_throughput("socket")
    return {
        "ops": OVERHEAD_OPS,
        "inproc_ops_s": inproc,
        "socket_ops_s": socket,
        # how many in-process calls one socket call costs
        "overhead_ratio": inproc / socket,
        "socket_call_us": 1e6 / socket,
        "inproc_call_us": 1e6 / inproc,
    }


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def run_all():
    scaling = run_scaling()
    overhead = run_overhead()
    payload = {"scaling": scaling, "overhead": overhead, **{
        # headline numbers hoisted for the CI gate
        "speedup": scaling["scaling"],
        "floor": scaling["floor"],
        "floor_enforced": scaling["floor_enforced"],
        "cores": scaling["cores"],
    }}
    payload["passed"] = (
        payload["speedup"] >= payload["floor"]
        if payload["floor_enforced"]
        else True
    )
    return payload


def main():
    payload = run_all()
    scaling = payload["scaling"]
    overhead = payload["overhead"]
    print(
        f"cross-process grind({ROUNDS}) x {OPS} ops, "
        f"{CLIENTS} client threads, {payload['cores']} core(s):"
    )
    for workers in TOPOLOGIES:
        point = scaling["per_workers"][str(workers)]
        print(
            f"  {workers} worker process(es): "
            f"{point['throughput_ops_s']:8.0f} ops/s "
            f"({point['duration_s']:.3f}s)"
        )
    enforced = "enforced" if payload["floor_enforced"] else (
        f"not enforced on < {FLOOR_MIN_CORES} cores"
    )
    print(
        f"  scaling {payload['speedup']:.2f}x "
        f"(target >= 2x, floor {FLOOR}x, {enforced})"
    )
    print("loopback socket overhead (trivial op):")
    print(f"  inproc: {overhead['inproc_ops_s']:8.0f} ops/s "
          f"({overhead['inproc_call_us']:.0f} us/call)")
    print(f"  socket: {overhead['socket_ops_s']:8.0f} ops/s "
          f"({overhead['socket_call_us']:.0f} us/call)")
    print(f"  overhead ratio {overhead['overhead_ratio']:.2f}x")
    path = write_bench_json("wire", payload)
    print(f"results written to {path}")
    assert payload["passed"], (
        f"scaling {payload['speedup']:.2f}x below the {FLOOR}x floor "
        f"on a {payload['cores']}-core host"
    )


if __name__ == "__main__":
    main()
