"""E10 — runtime weaving overhead: direct vs woven vs advised dispatch."""

import pytest

from repro.aop import Aspect, Weaver
from repro.aop.advice import AdviceKind


def _make_class():
    class Worker:
        def step(self, x):
            return x * 2

    return Worker


def bench_direct_call_baseline(benchmark):
    Worker = _make_class()
    worker = Worker()
    benchmark(lambda: worker.step(21))


def bench_woven_no_matching_advice(benchmark):
    """The wrapper cost when no deployed advice matches the join point."""
    weaver = Weaver()
    Worker = _make_class()
    weaver.weave_class(Worker)
    other = Aspect("elsewhere")
    other.add_advice(AdviceKind.BEFORE, "call(Unrelated.*)", lambda jp: None)
    weaver.deploy(other)
    worker = Worker()
    benchmark(lambda: worker.step(21))


def bench_woven_zero_aspects(benchmark):
    weaver = Weaver()
    Worker = _make_class()
    weaver.weave_class(Worker)
    worker = Worker()
    benchmark(lambda: worker.step(21))


@pytest.mark.parametrize("kind", ["before", "after", "around"])
def bench_single_advice_kinds(benchmark, kind):
    weaver = Weaver()
    Worker = _make_class()
    weaver.weave_class(Worker)
    aspect = Aspect("one")
    if kind == "around":
        aspect.add_advice(AdviceKind.AROUND, "call(Worker.step)", lambda inv: inv.proceed())
    else:
        aspect.add_advice(AdviceKind(kind), "call(Worker.step)", lambda jp: None)
    weaver.deploy(aspect)
    worker = Worker()
    benchmark(lambda: worker.step(21))


def bench_field_get_woven(benchmark):
    weaver = Weaver()

    class Holder:
        pass

    weaver.weave_field(Holder, "value")
    holder = Holder()
    holder.value = 7
    benchmark(lambda: holder.value)


def bench_pointcut_matching(benchmark):
    """Raw pointcut evaluation against a join point."""
    from repro.aop import JoinPoint, JoinPointKind, parse_pointcut

    pointcut = parse_pointcut(
        "(call(Account.with*) || call(Account.dep*)) && !within(Sav*)"
    )
    jp = JoinPoint(JoinPointKind.EXECUTION, None, "Account", "withdraw")

    def match():
        assert pointcut.matches(jp)

    benchmark(match)
