"""E9 — the semantic-coupling experiment as a benchmark.

Three variants of the same failing bank transfer (the Kienzle/Guerraoui
scenario): unprotected, naively-generic transactional aspect (no Si), and
the paper's Si-specialized concrete aspect.  Correctness of each variant's
*outcome* is asserted inside the measured body, so the benchmark doubles
as the experiment record: only the Si-specialized variant preserves the
money, at a measurable (and modest) cost over the naive aspect.
"""


from repro.aop import Aspect
from repro.codegen import compile_model
from repro.core import MiddlewareServices
from repro.core.registry import default_registry

from conftest import make_bank

_counter = [0]


def _fresh_module():
    _counter[0] += 1
    _, model = make_bank()
    return compile_model(model, f"coupling_bench_{_counter[0]}")


def _run_failing_transfer(module):
    bank = module.Bank()
    source = module.Account(balance=100.0)
    target = module.Account(balance=0.0)
    original = module.Account.deposit

    def poisoned(self, amount):
        raise RuntimeError("deposit crashed")

    module.Account.deposit = poisoned
    try:
        try:
            bank.transfer(source, target, 40.0)
        except Exception:
            pass
    finally:
        module.Account.deposit = original
    return source.balance, target.balance


def bench_unprotected_money_lost(benchmark):
    module = _fresh_module()

    def run():
        source_balance, _ = _run_failing_transfer(module)
        assert source_balance == 60.0  # money vanished
        # restore for the next round
        return source_balance

    benchmark(run)


def bench_naive_generic_aspect_money_lost(benchmark):
    module = _fresh_module()
    services = MiddlewareServices.create()
    services.weaver.weave_class(module.Account)
    services.weaver.weave_class(module.Bank)
    naive = Aspect("naive_tx")

    @naive.around("call(*.*)")
    def wrap(inv):
        with services.transactions.transaction():
            return inv.proceed()  # no Si: nothing enlisted, nothing restored

    services.weaver.deploy(naive)

    def run():
        source_balance, _ = _run_failing_transfer(module)
        assert source_balance == 60.0  # aborted, but still lost

    benchmark(run)


def bench_si_specialized_aspect_atomic(benchmark):
    module = _fresh_module()
    services = MiddlewareServices.create()
    ca = default_registry().get("transactions").specialize(
        transactional_ops=["Bank.transfer", "Account.withdraw", "Account.deposit"],
        state_classes=["Account"],
    ).derive_aspect()
    services.weaver.weave_class(module.Account)
    services.weaver.weave_class(module.Bank)
    services.weaver.deploy(ca.build(services))

    def run():
        source_balance, target_balance = _run_failing_transfer(module)
        assert source_balance == 100.0  # rolled back: the paper's claim holds
        assert target_balance == 0.0

    benchmark(run)
