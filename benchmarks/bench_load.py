"""E18 — open-loop load: a million simulated users on virtual time.

The claims under test:

* **Scale** — the open-loop driver hosts >= 1,000,000 simulated users
  as array-backed state machines on one thread: no threads, no sockets,
  and the whole run (tens of thousands of *real* federation calls)
  finishes in well under a minute of wall clock.
* **Determinism** — the same seed produces the same scenario digest,
  run after run, even at that scale (the virtual-time scheduler fixes
  the event interleaving).
* **Shed, don't collapse** — driven far past saturation, bounded-
  lateness admission sheds the excess *before* execution, so goodput
  holds near the pre-saturation plateau instead of collapsing under
  queue growth.  The CI bar is **overload goodput >= 70% of the
  plateau** (on classic queueing collapse this ratio heads toward
  zero), with every admitted operation still inside its latency SLO.

Run standalone:  python benchmarks/bench_load.py
"""

from __future__ import annotations

import time

from _benchjson import write_bench_json

from repro.runtime import RunConfig, ScenarioRunner

#: simulated-user floor of the scale run
MILLION_USERS = 1_000_000
#: wall-clock ceiling of the whole scale story (both digest runs)
WALL_LIMIT_S = 60.0
#: the CI floor: overload goodput over pre-saturation plateau goodput
FLOOR_GOODPUT_RATIO = 0.70

#: common topology: 3 nodes, serial dispatchers (1 channel each at the
#: modeled 0.2 ms service time -> 5,000 ops/s per node capacity)
BASE = dict(
    nodes=3,
    clients=8,
    workers=4,
    concurrent=False,
    real_latency_ms=0.0,
)


def _run(ops: int, seed: int, **open_loop):
    config = RunConfig(
        scenario="banking_openloop",
        ops=ops,
        seed=seed,
        open_loop=open_loop,
        **BASE,
    )
    result = ScenarioRunner("banking_openloop", config).run()
    assert result.passed, result.invariant_violations
    return result


def bench_million_users():
    """>= 1M users, two same-seed runs, digests compared byte for byte."""
    started = time.perf_counter()
    kwargs = dict(
        ops=30_000,
        seed=17,
        users=MILLION_USERS,
        arrival="poisson:4000",
        zipf_s=1.1,
    )
    first = _run(**kwargs)
    second = _run(**kwargs)
    wall_s = time.perf_counter() - started
    load = first.open_loop
    return {
        "users": load["users"]["size"],
        "active_users": load["users"]["active"],
        "offered": load["offered"],
        "completed_ok": load["completed_ok"],
        "shed": load["shed"],
        "virtual_duration_ms": round(load["virtual_duration_ms"], 3),
        "goodput_ops_s": round(load["goodput"]["goodput_ops_s"], 1),
        "response_p999_ms": round(load["response"]["p999_ms"], 3),
        "wall_s_two_runs": round(wall_s, 2),
        "digest": first.digest(),
        "digest_stable": first.digest() == second.digest(),
    }


def bench_goodput_under_overload():
    """Offered rate 6x past capacity: goodput must hold, not collapse."""
    plateau = _run(
        ops=15_000,
        seed=17,
        users=100_000,
        arrival="constant:4000",
        zipf_s=1.1,
        max_shed_fraction=1.0,
    ).open_loop
    overload = _run(
        ops=30_000,
        seed=17,
        users=100_000,
        arrival="constant:25000",
        zipf_s=1.1,
        max_shed_fraction=1.0,
    ).open_loop
    ratio = (
        overload["goodput"]["goodput_ops_s"] / plateau["goodput"]["goodput_ops_s"]
    )
    return {
        "plateau_offered_ops_s": round(plateau["goodput"]["offered_ops_s"], 1),
        "plateau_goodput_ops_s": round(plateau["goodput"]["goodput_ops_s"], 1),
        "overload_offered_ops_s": round(overload["goodput"]["offered_ops_s"], 1),
        "overload_goodput_ops_s": round(overload["goodput"]["goodput_ops_s"], 1),
        "overload_shed_fraction": round(overload["shed_fraction"], 4),
        "overload_response_max_ms": round(overload["response"]["max_ms"], 3),
        "overload_slo_ms": overload["slo_ms"],
        "goodput_ratio": round(ratio, 4),
    }


def main():
    scale = bench_million_users()
    print(
        f"{scale['users']:,} users: {scale['offered']:,} offered ops, "
        f"{scale['goodput_ops_s']:,.0f} ops/s goodput, "
        f"p99.9 {scale['response_p999_ms']:.3f} ms, "
        f"{scale['wall_s_two_runs']:.1f}s wall for two runs, "
        f"digest stable: {scale['digest_stable']}"
    )
    overload = bench_goodput_under_overload()
    print(
        f"overload: {overload['overload_offered_ops_s']:,.0f} ops/s offered "
        f"-> {overload['overload_goodput_ops_s']:,.0f} ops/s goodput "
        f"({overload['overload_shed_fraction']:.1%} shed), "
        f"{overload['goodput_ratio']:.2f}x of the "
        f"{overload['plateau_goodput_ops_s']:,.0f} ops/s plateau"
    )
    passed = (
        scale["users"] >= MILLION_USERS
        and scale["digest_stable"]
        and scale["wall_s_two_runs"] <= WALL_LIMIT_S
        and overload["goodput_ratio"] >= FLOOR_GOODPUT_RATIO
    )
    write_bench_json(
        "load",
        {
            "million_users": scale,
            "overload": overload,
            "floor_goodput_ratio": FLOOR_GOODPUT_RATIO,
            "wall_limit_s": WALL_LIMIT_S,
            "passed": passed,
        },
    )
    if not passed:
        raise SystemExit(
            "open-loop load floors not met: "
            f"users={scale['users']} (need >= {MILLION_USERS}), "
            f"digest_stable={scale['digest_stable']}, "
            f"wall={scale['wall_s_two_runs']}s (limit {WALL_LIMIT_S}s), "
            f"goodput_ratio={overload['goodput_ratio']} "
            f"(floor {FLOOR_GOODPUT_RATIO})"
        )


if __name__ == "__main__":
    main()
