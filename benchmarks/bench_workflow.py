"""E8 — workflow-guided refinement: gating checks and sequence enumeration."""

import pytest

from repro.workflow import ConcernWizard, WorkflowModel
from repro.core.registry import default_registry


def _chain_workflow(n_steps):
    workflow = WorkflowModel()
    workflow.add_step("step0")
    for i in range(1, n_steps):
        workflow.add_step(f"step{i}", requires=[f"step{i - 1}"])
    return workflow


def _diamond_workflow(width):
    """One root, ``width`` independent middles, one join step."""
    workflow = WorkflowModel()
    workflow.add_step("root")
    middles = []
    for i in range(width):
        name = f"mid{i}"
        workflow.add_step(name, requires=["root"])
        middles.append(name)
    workflow.add_step("join", requires=middles)
    return workflow


@pytest.mark.parametrize("n_steps", [5, 20, 60])
def bench_is_allowed_chain(benchmark, n_steps):
    workflow = _chain_workflow(n_steps)
    history = [f"step{i}" for i in range(n_steps - 1)]

    def check():
        assert workflow.is_allowed(f"step{n_steps - 1}", history)
        assert not workflow.is_allowed("step0", history)

    benchmark(check)


@pytest.mark.parametrize("width", [3, 5, 7])
def bench_complete_sequence_enumeration(benchmark, width):
    """Every legal order of a diamond workflow (width! interleavings)."""
    import math

    workflow = _diamond_workflow(width)

    def enumerate_sequences():
        sequences = workflow.complete_sequences(limit=10_000)
        assert len(sequences) == math.factorial(width)
        return sequences

    benchmark(enumerate_sequences)


def bench_allowed_next(benchmark):
    workflow = _diamond_workflow(6)

    def allowed():
        return workflow.allowed_next(["root", "mid0", "mid1"])

    benchmark(allowed)


def bench_wizard_collect(benchmark):
    """Wizard answer validation into Si."""
    wizard = ConcernWizard(default_registry().get("security"))
    answers = {
        "protected_ops": ["Account.withdraw", "Bank.transfer"],
        "role_grants": {"teller": ["Bank.*"], "auditor": ["*.*"]},
    }

    def collect():
        si = wizard.collect(answers)
        assert si["audit_denials"] is True
        return si

    benchmark(collect)
