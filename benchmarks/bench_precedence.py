"""E4 — aspect precedence from application order.

Measures advice dispatch as the number of deployed aspects grows, and the
cost of the ordering machinery itself.  Correctness (the order actually
matches deployment order) is asserted in the measured bodies.
"""

import pytest

from repro.aop import Aspect, Weaver


def _target_class():
    class Target:
        def work(self, x):
            return x + 1

    return Target


def _around_aspect(name, order_sink):
    aspect = Aspect(name)

    @aspect.around("call(Target.work)")
    def around(inv):
        order_sink.append(name)
        return inv.proceed()

    return aspect


@pytest.mark.parametrize("n_aspects", [1, 4, 8, 16])
def bench_dispatch_with_n_around_aspects(benchmark, n_aspects):
    """One call through a chain of n around advices."""
    weaver = Weaver()
    Target = _target_class()
    weaver.weave_class(Target)
    sink = []
    for i in range(n_aspects):
        weaver.deploy(_around_aspect(f"a{i}", sink))
    target = Target()

    def call():
        sink.clear()
        assert target.work(1) == 2
        assert sink == [f"a{i}" for i in range(n_aspects)]

    benchmark(call)


def bench_reordering_changes_nesting(benchmark):
    """Deploy the same two aspects in both orders; verify mirrored nesting."""

    def run():
        outcomes = []
        for order in (("A", "B"), ("B", "A")):
            weaver = Weaver()
            Target = _target_class()
            weaver.weave_class(Target)
            sink = []
            for name in order:
                weaver.deploy(_around_aspect(name, sink))
            Target().work(0)
            outcomes.append(tuple(sink))
        assert outcomes[0] == ("A", "B") and outcomes[1] == ("B", "A")

    benchmark(run)


def bench_precedence_table_ordered(benchmark):
    """Sorting the precedence table with many deployed aspects."""
    from repro.aop import PrecedenceTable

    table = PrecedenceTable()
    for i in range(64):
        table.deploy(Aspect(f"aspect{i}"))

    def ordered():
        ranked = table.ordered()
        assert len(ranked) == 64
        assert ranked[0][0] == 0

    benchmark(ordered)
