"""E15 — batched pipeline execution vs N sequential ``engine.apply`` calls.

The 10-concern banking scenario: the Fig. 2 bank PIM extended with extra
functional classes, refined along ten concern dimensions (the three paper
concerns' shape, times a spread of marker concerns), each GMT gating on
OCL pre/postconditions that scan the model.

Sequential baseline: one :meth:`TransformationEngine.apply` per CMT —
ten transactions, and every condition pays its own ``allInstances``
walks.  Pipeline: plan → schedule → execute, independent concerns
grouped into batches sharing one transaction, one demarcated savepoint,
and per-phase OCL extent caches; compiled-condition cache hits are
reported by the run's :class:`~repro.pipeline.executor.PipelineStats`.

Run standalone for the speedup summary (used by CI and CHANGES.md)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import time

from conftest import make_bank

from repro.core import Concern, GenericTransformation
from repro.core.registry import ConcernRegistry
from repro.pipeline import ConfigurationPlan, PipelineExecutor, Scheduler
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.uml import add_attribute, add_class, add_operation, add_package
from repro.uml.model import ensure_primitives, find_element


N_CONCERNS = 10

# shared gating idioms: identical condition text across concerns is the
# compile cache's bread and butter (parsed once, hit N-1 times)
WELL_FORMED = "Class.allInstances()->forAll(c | c.name <> '')"
HAS_OPERATIONS = (
    "Class.allInstances()->exists(c | c.operations->notEmpty())"
)
NO_CLASH = "Class.allInstances()->forAll(c | c.name <> marker_name)"
MARKED = "Class.allInstances()->exists(c | c.name = marker_name)"


def make_banking_model(extra_classes: int = 20):
    """The bank PIM plus functional ballast (the '10-concern banking model')."""
    resource, model = make_bank()
    prims = ensure_primitives(model)
    pkg = add_package(model, "services")
    for i in range(extra_classes):
        cls = add_class(pkg, f"Service{i}")
        add_attribute(cls, "state", prims["Real"])
        add_operation(
            cls, "serve", [("x", prims["Real"])], return_type=prims["Real"]
        )
    return resource, model


def make_marker_concern(i: int) -> GenericTransformation:
    """One synthetic concern dimension: gate on the model, add a marker class."""
    concern = Concern(
        f"concern{i}",
        f"synthetic concern dimension {i}",
        viewpoint=HAS_OPERATIONS.replace("exists", "select"),
    )
    gmt = GenericTransformation(f"T_concern{i}", concern)
    gmt.parameter("marker_name", type=str, description="class the rule adds")
    gmt.precondition("well-formed", WELL_FORMED)
    gmt.precondition("has-operations", HAS_OPERATIONS)
    gmt.precondition("no-clash", NO_CLASH)
    gmt.postcondition("marked", MARKED)

    @gmt.rule("add-marker", "introduce the concern's marker class")
    def _add_marker(ctx):
        pkg = find_element(ctx.model, "services")
        cls = add_class(pkg, ctx.require_param("marker_name"))
        ctx.record(sources=[pkg], targets=[cls], note="marker")

    return gmt


def build_registry() -> ConcernRegistry:
    registry = ConcernRegistry()
    for i in range(N_CONCERNS):
        registry.register(make_marker_concern(i))
    return registry


def concrete_transformations(registry):
    return [
        registry.get(f"concern{i}").specialize(marker_name=f"Marker{i}")
        for i in range(N_CONCERNS)
    ]


def build_plan() -> ConfigurationPlan:
    plan = ConfigurationPlan()
    for i in range(N_CONCERNS):
        plan.select(f"concern{i}", marker_name=f"Marker{i}")
    return plan


def run_sequential(registry) -> None:
    """N independent engine.apply calls (today's one-at-a-time loop)."""
    resource, _ = make_banking_model()
    engine = TransformationEngine(ModelRepository(resource))
    for cmt in concrete_transformations(registry):
        engine.apply(cmt)


def run_pipeline(registry, savepoints: bool = False):
    """One batched pipeline run; returns the stats object."""
    resource, _ = make_banking_model()
    repository = ModelRepository(resource)
    steps = build_plan().bind(registry)
    schedule = Scheduler().schedule(steps)
    executor = PipelineExecutor(repository, savepoints=savepoints)
    result = executor.run(schedule)
    assert len(result.applications) == N_CONCERNS
    return result.stats


def bench_sequential_10_concerns(benchmark):
    registry = build_registry()
    benchmark(lambda: run_sequential(registry))


def bench_pipeline_10_concerns(benchmark):
    registry = build_registry()
    benchmark(lambda: run_pipeline(registry))


def bench_pipeline_10_concerns_with_savepoints(benchmark):
    registry = build_registry()
    benchmark(lambda: run_pipeline(registry, savepoints=True))


def measure_speedup(rounds: int = 5):
    """Best-of-N wall-clock comparison; returns (sequential_s, pipeline_s, stats)."""
    registry = build_registry()
    # warm-up: imports, compile cache, code paths
    run_sequential(registry)
    stats = run_pipeline(registry)

    sequential = min(
        _timed(lambda: run_sequential(registry)) for _ in range(rounds)
    )
    pipeline = min(
        _timed(lambda: run_pipeline(registry)) for _ in range(rounds)
    )
    return sequential, pipeline, stats


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def bench_batched_beats_sequential(benchmark):
    """The acceptance check, benchmark-shaped: batched ≥1.3× faster."""
    sequential, pipeline, stats = benchmark.pedantic(
        measure_speedup, args=(3,), rounds=1, iterations=1
    )
    assert pipeline < sequential / 1.3, (
        f"batched pipeline ({pipeline * 1000:.1f} ms) is not ≥1.3x faster "
        f"than sequential applies ({sequential * 1000:.1f} ms)"
    )
    assert stats.ocl_extents.hits > 0


def main() -> int:
    sequential, pipeline, stats = measure_speedup()
    print(f"10-concern banking scenario ({N_CONCERNS} CMTs):")
    print(f"  sequential engine.apply:  {sequential * 1000:8.1f} ms")
    print(f"  batched pipeline:         {pipeline * 1000:8.1f} ms")
    print(f"  speedup:                  {sequential / pipeline:8.2f}x")
    print(stats.report())
    from repro.ocl import default_compile_cache

    cache = default_compile_cache()
    print(
        f"process compile cache since import: {cache.hits} hits, "
        f"{cache.misses} misses ({len(cache)} distinct expressions)"
    )
    return 0 if pipeline < sequential / 1.3 else 1


if __name__ == "__main__":
    raise SystemExit(main())
