"""E14 — code and aspect generation: emission + compilation vs model size."""

import pytest

from repro.codegen import compile_model, generate_aspect_module, generate_module
from repro.core.registry import default_registry

from conftest import SIZES, make_model

_counter = [0]


@pytest.mark.parametrize("size", SIZES)
def bench_generate_functional_source(benchmark, size):
    _, model = make_model(size)

    def generate():
        source = generate_module(model)
        assert f"class C{size - 1}" in source
        return source

    benchmark(generate)


@pytest.mark.parametrize("size", SIZES)
def bench_compile_functional_module(benchmark, size):
    _, model = make_model(size)

    def compile_it():
        _counter[0] += 1
        module = compile_model(model, f"bench_gen_{_counter[0]}")
        assert module.C0
        return module

    benchmark(compile_it)


def bench_generated_code_runs(benchmark):
    """Executing generated operation bodies (the substrate of every example)."""
    _, model = make_model(5)
    module = compile_model(model, "bench_gen_exec")
    obj = module.C0(a0=0.0)

    def run():
        return obj.op0(1.0)

    benchmark(run)


def bench_generate_aspect_source(benchmark):
    registry = default_registry()
    ca = registry.get("security").specialize(
        protected_ops=["Account.withdraw", "Bank.transfer"],
        role_grants={"teller": ["Bank.*"]},
    ).derive_aspect()

    def generate():
        source = generate_aspect_module(ca)
        assert "PARAMETERS" in source
        return source

    benchmark(generate)


def bench_generate_all_three_aspect_sources(benchmark):
    """The per-concern aspect-generator pass of a full Fig. 2 run."""
    registry = default_registry()
    cas = [
        registry.get("distribution").specialize(server_classes=["Account"]).derive_aspect(),
        registry.get("transactions").specialize(
            transactional_ops=["Bank.transfer"], state_classes=["Account"]
        ).derive_aspect(),
        registry.get("security").specialize(
            protected_ops=["Bank.transfer"]
        ).derive_aspect(),
    ]

    def generate():
        sources = [generate_aspect_module(ca) for ca in cas]
        assert len(sources) == 3
        return sources

    benchmark(generate)
