"""E5 — versioned repository: commit, checkout, diff, undo/redo scaling."""

import pytest

from repro.core.registry import default_registry
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.uml import add_class, find_element

from conftest import SIZES, make_model

REGISTRY = default_registry()


@pytest.mark.parametrize("size", SIZES)
def bench_commit_snapshot(benchmark, size):
    """Deep-clone snapshot cost vs model size."""
    resource, _ = make_model(size)
    repo = ModelRepository(resource)

    def commit():
        return repo.commit("snapshot")

    benchmark(commit)


@pytest.mark.parametrize("size", SIZES)
def bench_checkout(benchmark, size):
    """Restoring a committed version (clone + root swap)."""
    resource, _ = make_model(size)
    repo = ModelRepository(resource)
    version = repo.commit("base")

    def checkout():
        repo.checkout(version.id)

    benchmark(checkout)


@pytest.mark.parametrize("size", SIZES)
def bench_diff_versions(benchmark, size):
    """Structural diff between two versions differing in one transformation."""
    resource, _ = make_model(size)
    repo = ModelRepository(resource)
    engine = TransformationEngine(repo)
    v0 = repo.commit("before")
    engine.apply(REGISTRY.get("logging").specialize(log_patterns=["C0.*"]))
    v1 = repo.commit("after")

    def diff():
        entries = repo.diff(v0.id, v1.id)
        assert any(e.kind == "added" for e in entries)
        return entries

    benchmark(diff)


def bench_undo_redo_transformation(benchmark):
    """Undoing and redoing one transformation application (raw replay)."""
    resource, _ = make_model(40)
    repo = ModelRepository(resource)
    engine = TransformationEngine(repo)
    engine.apply(
        REGISTRY.get("distribution").specialize(server_classes=["C0", "C1"])
    )

    def undo_redo():
        repo.undo()
        repo.redo()

    benchmark(undo_redo)


def bench_transaction_recording_overhead(benchmark):
    """Grouping model edits into an undoable unit (recorder active)."""
    resource, _ = make_model(10)
    repo = ModelRepository(resource)
    pkg = find_element(resource.roots[0], "app")
    counter = [0]

    def record():
        counter[0] += 1
        with repo.transaction(f"edit{counter[0]}"):
            cls = add_class(pkg, f"Extra{counter[0]}")
            cls.documentation = "temp"
        repo.undo()

    benchmark(record)
