"""E18 — observability overhead: fully-sampled tracing vs untraced.

The claim under test: **the woven observability plane is cheap enough to
leave on**.  Tracing is compiled into the federation and bus interceptor
chains as ordinary elements; when disabled they fall through after one
flag check, and when enabled at sample rate 1.0 every logical call pays
for a client root span, a hop span per delivery attempt, and a bus span
per servant dispatch — ring-buffer appends and a few clock reads, never
an unbounded structure.

The measurement is the repository's concurrent banking bench (E14,
``bench_runtime.py``): the banking scenario over 2 nodes with
thread-pool dispatchers, 8 concurrent clients, and the same 1.5 ms
real transport latency per hop, run through the ordinary harness.
Overhead is estimated from ``PAIRS`` alternating untraced/traced runs
of the same seeded operation scripts; the headline number is the
**median of per-pair throughput ratios** (with the ratio of summed
durations reported alongside), because on shared CI hardware
single-window ratios swing by +/-10% and a best-of estimator amplifies
exactly that noise.

The CI bar is **traced >= 0.90x untraced throughput** (<= 10% overhead)
on the median pair.  A zero-latency pair is also measured and reported
(``cpu_bound_ratio``) so the worst case — tracing against a federation
doing no network waiting at all — stays visible in the artifact, but
the floor binds on the bench's canonical latency shape.  The traced
runs must actually produce client, hop, and bus spans — a variant that
silently stops tracing cannot pass — and a serial control pair asserts
the traced and untraced runs produce the identical outcome digest
(tracing must observe, never perturb).

Run standalone:  python benchmarks/bench_observability.py
"""

from __future__ import annotations

import gc
import statistics

from _benchjson import write_bench_json

from repro.runtime import run_scenario

#: the CI floor: median traced/untraced throughput ratio (<= 10% overhead)
FLOOR_RATIO = 0.90
SCENARIO = "banking"
NODES = 2
CLIENTS = 8
WORKERS = 4
#: real (slept) transport latency per hop — same as bench_runtime (E14)
HOP_LATENCY_MS = 1.5
#: ops per window — long enough that scheduler noise averages out
OPS = 1_200
#: alternating untraced/traced pairs; the median pair is the estimator
PAIRS = 10
#: full pair-set attempts (best median wins, as bench_runtime does with
#: best-of-3): a depressed attempt means the host degraded mid-bench,
#: and only a sustained shortfall should fail CI
ATTEMPTS = 3
#: an attempt whose median clears the floor by this much ends the bench
EARLY_EXIT_MARGIN = 0.03


def run_once(traced: bool, latency_ms: float = HOP_LATENCY_MS, ops: int = OPS):
    """One harness run of the concurrent banking shape."""
    # start each timed window without inherited collector debt: a gen2
    # collection triggered mid-window would land on one variant only
    gc.collect()
    result = run_scenario(
        SCENARIO,
        nodes=NODES,
        clients=CLIENTS,
        ops=ops,
        seed=1,
        concurrent=True,
        workers=WORKERS,
        real_latency_ms=latency_ms,
        trace=traced,
    )
    assert result.passed, f"banking run failed (traced={traced})"
    return result


def serial_digest_control():
    """Tracing must not perturb outcomes: serial runs digest-identically.

    (The concurrent windows cannot make this check — their digests are
    interleaving-dependent with or without tracing — so a small serial
    pair carries it.)
    """
    common = dict(nodes=NODES, clients=4, ops=120, seed=1, concurrent=False)
    untraced = run_scenario(SCENARIO, **common).digest()
    traced = run_scenario(SCENARIO, trace=True, **common).digest()
    assert untraced == traced, (
        f"tracing changed the outcome digest: {untraced} != {traced}"
    )
    return untraced


def measure_pairs(attempt):
    """One full pair set; returns its stats dict."""
    untraced_ops_s, traced_ops_s, ratios = [], [], []
    last_traced = None
    for pair in range(PAIRS):
        # alternate which variant runs first so slow drift and periodic
        # background load cancel instead of biasing one side
        if pair % 2 == 0:
            untraced = run_once(traced=False)
            traced = run_once(traced=True)
        else:
            traced = run_once(traced=True)
            untraced = run_once(traced=False)
        assert traced.ops == untraced.ops == OPS
        last_traced = traced
        untraced_ops_s.append(untraced.throughput_ops_s)
        traced_ops_s.append(traced.throughput_ops_s)
        ratios.append(traced.throughput_ops_s / untraced.throughput_ops_s)
        print(
            f"attempt {attempt} pair {pair}: "
            f"untraced {untraced_ops_s[-1]:,.0f} ops/s, "
            f"traced {traced_ops_s[-1]:,.0f} ops/s, ratio {ratios[-1]:.3f}"
        )
    tracer_export = last_traced.trace["tracer"]
    kinds = {span["kind"] for span in tracer_export["spans"]}
    assert tracer_export["span_count"] > 0, "traced runs produced no spans"
    assert {"client", "hop", "bus"} <= kinds, f"span kinds missing: {kinds}"
    # same total work both sides, so the throughput ratio over all
    # pairs is the inverse ratio of the total durations
    total_untraced_s = sum(OPS / v for v in untraced_ops_s)
    total_traced_s = sum(OPS / v for v in traced_ops_s)
    return {
        "untraced_ops_s": untraced_ops_s,
        "traced_ops_s": traced_ops_s,
        "ratios": ratios,
        "median_ratio": statistics.median(ratios),
        "sum_ratio": total_untraced_s / total_traced_s,
        "tracer_export": tracer_export,
    }


def main():
    digest = serial_digest_control()
    # warm both variants (imports, code paths, allocator)
    run_once(traced=True)
    run_once(traced=False)

    best = None
    attempts = 0
    for attempt in range(ATTEMPTS):
        attempts += 1
        stats = measure_pairs(attempt)
        if best is None or stats["median_ratio"] > best["median_ratio"]:
            best = stats
        if best["median_ratio"] >= FLOOR_RATIO + EARLY_EXIT_MARGIN:
            break
        print(
            f"attempt {attempt}: median {stats['median_ratio']:.3f} below "
            f"{FLOOR_RATIO + EARLY_EXIT_MARGIN:.2f}, "
            + ("retrying" if attempt + 1 < ATTEMPTS else "out of attempts")
        )

    # informational worst case: no network waiting to hide behind
    cpu_untraced = run_once(traced=False, latency_ms=0.0, ops=2 * OPS)
    cpu_traced = run_once(traced=True, latency_ms=0.0, ops=2 * OPS)
    cpu_bound_ratio = cpu_traced.throughput_ops_s / cpu_untraced.throughput_ops_s

    tracer_export = best["tracer_export"]
    median_ratio = best["median_ratio"]
    sum_ratio = best["sum_ratio"]
    overhead_pct = (1.0 - median_ratio) * 100.0
    passed = median_ratio >= FLOOR_RATIO
    print(
        f"median ratio {median_ratio:.3f} ({overhead_pct:.1f}% overhead), "
        f"ratio of sums {sum_ratio:.3f}, "
        f"cpu-bound ratio {cpu_bound_ratio:.3f}, "
        f"{tracer_export['span_count']} span(s) buffered, "
        f"{tracer_export['dropped']} dropped, digest {digest[:16]}"
    )
    write_bench_json(
        "observability",
        {
            "scenario": SCENARIO,
            "nodes": NODES,
            "clients": CLIENTS,
            "workers": WORKERS,
            "hop_latency_ms": HOP_LATENCY_MS,
            "ops_per_window": OPS,
            "pairs": PAIRS,
            "attempts": attempts,
            "untraced_ops_s": [round(v) for v in best["untraced_ops_s"]],
            "traced_ops_s": [round(v) for v in best["traced_ops_s"]],
            "pair_ratios": [round(v, 4) for v in best["ratios"]],
            "median_ratio": round(median_ratio, 4),
            "sum_ratio": round(sum_ratio, 4),
            "cpu_bound_ratio": round(cpu_bound_ratio, 4),
            "overhead_pct": round(overhead_pct, 2),
            "spans_buffered": tracer_export["span_count"],
            "spans_dropped": tracer_export["dropped"],
            "slow_spans": tracer_export["slow_spans"],
            "serial_digest": digest,
            "floor_ratio": FLOOR_RATIO,
            "passed": passed,
        },
    )
    if not passed:
        raise SystemExit(
            f"tracing overhead {overhead_pct:.1f}% "
            f"(median ratio {median_ratio:.3f}) dropped below the "
            f"{FLOOR_RATIO:.2f}x throughput floor"
        )


if __name__ == "__main__":
    main()
