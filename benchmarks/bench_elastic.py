"""E16 — elastic federation: rebalance cost on join, failover recovery.

Two claims under test:

1. **Rebalance cost.**  A node joining an N-node federation must migrate
   only the bindings consistent hashing assigns to it — ideally a
   ``1/(N+1)`` fraction of the total.  The hard bar (enforced by CI) is
   **2x the ideal fraction**: a join that moves more is not "migrating
   only the affected bindings", it is reshuffling the federation.

2. **Failover recovery.**  After a fail-stop node kill, a client with a
   QoS retry budget should recover transparently: the first dead-node
   fault promotes the replicated standbys, the retry re-resolves onto
   the new primary, and steady-state throughput returns to a healthy
   fraction of the pre-kill rate (reported; the structural assertion is
   that *zero calls fail* and *no effect is lost* across the kill).

Both runs assert effect conservation: every bump that returned success
is present in the final servant states — a migration or failover that
loses state cannot pass.

Results land in ``BENCH_elastic.json`` with machine-readable bars so CI
can enforce them without eyeballing.

Run standalone:  python benchmarks/bench_elastic.py
"""

from __future__ import annotations

import time

from _benchjson import write_bench_json

from repro.middleware.envelope import QoS
from repro.runtime import Federation

#: federation size before the join / before the kill
NODES = 4
#: partitions (one binding each) spread over the ring
PARTITIONS = 64
#: the joining node must take no more than 2x its ideal share
JOIN_BAR_FACTOR = 2.0
#: retry budget that absorbs the dead-node fault during failover
RETRY = QoS(retries=2)
#: ops per throughput window
WINDOW_OPS = 2_000


class Account:
    """Plain servant: elasticity needs state, not weaving."""

    def __init__(self, balance=0.0):
        self.balance = balance

    def deposit(self, amount):
        self.balance += amount
        return self.balance

    def getBalance(self):
        return self.balance


MODULE = type("BenchElasticModule", (), {"Account": Account})


def build_federation(nodes=NODES, partitions=PARTITIONS, replication=0):
    federation = Federation(seed=1, latency_ms=0.0)
    for i in range(nodes):
        federation.add_node(f"node-{i}").module = MODULE
    names = []
    for k in range(partitions):
        partition = f"acct-{k}"
        node = federation.node_for(partition)
        name = f"{partition}/Account/0"
        node.bind(name, Account())
        names.append(name)
    if replication:
        federation.enable_replication(replication)
    return federation, names


def deploy_module(node):
    node.module = MODULE


def window(federation, names, ops, offset=0):
    """One closed-loop throughput window; every call must succeed."""
    start = time.perf_counter()
    for i in range(ops):
        federation.call(names[(offset + i) % len(names)], "deposit", 1.0, qos=RETRY)
    return ops / (time.perf_counter() - start)


def bench_join():
    federation, names = build_federation()
    for name in names:
        federation.call(name, "deposit", 1.0)
    started = time.perf_counter()
    federation.join(f"node-{NODES}", deploy=deploy_module)
    rebalance_ms = (time.perf_counter() - started) * 1000.0
    moved = federation.last_rebalance["moved"]
    total = federation.last_rebalance["total"]
    # effect conservation: nothing lost or duplicated by the migration
    assert all(
        federation.call(name, "getBalance") == 1.0 for name in names
    ), "join migration lost servant state"
    federation.shutdown()
    fraction = moved / total
    ideal = 1.0 / (NODES + 1)
    bar = JOIN_BAR_FACTOR * ideal
    return {
        "nodes_before": NODES,
        "bindings_total": total,
        "bindings_moved": moved,
        "moved_fraction": round(fraction, 4),
        "ideal_fraction": round(ideal, 4),
        "bar_fraction": round(bar, 4),
        "bar_factor": JOIN_BAR_FACTOR,
        "rebalance_ms": round(rebalance_ms, 2),
        "passed": fraction <= bar,
    }


def bench_failover():
    federation, names = build_federation(replication=1)
    ops_per_window = WINDOW_OPS
    pre = window(federation, names, ops_per_window)
    victim = f"node-{NODES - 1}"
    kill_started = time.perf_counter()
    federation.kill(victim)
    # the first window eats the promotion cost (the first dead-node
    # fault triggers it; the QoS retry hides it from the caller)
    first = window(federation, names, ops_per_window, offset=ops_per_window)
    recovery_ms = (time.perf_counter() - kill_started) * 1000.0
    steady = window(federation, names, ops_per_window, offset=2 * ops_per_window)
    # effect conservation across the kill: three windows of deposits on
    # an initial zero balance — every successful call left exactly one mark
    total_deposits = sum(
        federation.call(name, "getBalance", qos=RETRY) for name in names
    )
    assert total_deposits == 3 * ops_per_window, (
        f"failover lost effects: {total_deposits} != {3 * ops_per_window}"
    )
    failovers = federation.failovers
    federation.shutdown()
    return {
        "nodes_before": NODES,
        "standbys_per_partition": 1,
        "window_ops": ops_per_window,
        "pre_kill_ops_s": round(pre),
        "first_window_ops_s": round(first),
        "steady_ops_s": round(steady),
        "recovery_ratio": round(steady / pre, 3),
        "first_window_ratio": round(first / pre, 3),
        "promotion_plus_window_ms": round(recovery_ms, 1),
        "failovers": failovers,
        "calls_failed": 0,  # window() raises on any failure
    }


def main():
    join = bench_join()
    failover = bench_failover()
    print(
        f"join: {join['bindings_moved']}/{join['bindings_total']} bindings "
        f"moved ({join['moved_fraction']:.1%}); ideal {join['ideal_fraction']:.1%}, "
        f"bar {join['bar_fraction']:.1%} -> "
        f"{'PASS' if join['passed'] else 'FAIL'}"
    )
    print(
        f"failover: {failover['pre_kill_ops_s']} ops/s before kill, "
        f"{failover['first_window_ops_s']} ops/s through promotion, "
        f"{failover['steady_ops_s']} ops/s steady "
        f"(recovery {failover['recovery_ratio']:.0%})"
    )
    write_bench_json(
        "elastic",
        {
            "join": join,
            "failover": failover,
            "passed": join["passed"],
        },
    )
    if not join["passed"]:
        raise SystemExit(
            f"join moved {join['moved_fraction']:.1%} of bindings; "
            f"bar is {join['bar_fraction']:.1%}"
        )


if __name__ == "__main__":
    main()
