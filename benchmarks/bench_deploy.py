"""S17 — declarative deployment: compile + bootstrap cost at scale.

One claim under test: lowering a :class:`~repro.deploy.DeploymentSpec`
through the compiler must stay cheap relative to the federation it
materializes — the declarative API may not cost meaningfully more than
the imperative wiring it replaced.  The probe is a **16-node /
64-servant** spec (16 partitions x 4 accounts, the banking application
refined through three concerns):

* ``compile_s`` — phase 1 only: validate, resolve the PIM, bind and
  schedule the concern plan (no side effects);
* ``bootstrap_s`` — phase 2: create 16 nodes, refine the application
  once on the vendor lifecycle, ship the package, replay it on every
  node, bind 64 servants, provision users/classification/replication;
* ``reconcile_s`` — one spec diff (join a 17th node) applied live.

A smoke assertion also exercises correctness: every declared servant is
resolvable and a routed call works after bootstrap.

Results land in ``BENCH_deploy.json`` (uploaded with the other BENCH
artifacts).  Run standalone:  python benchmarks/bench_deploy.py
"""

from __future__ import annotations

import time
from dataclasses import replace

from _benchjson import write_bench_json

from repro.deploy import (
    DeploymentCompiler,
    NodeSpec,
    PartitionSpec,
    ReplicationSpec,
    ServantSpec,
    apply as apply_spec,
)
from repro.runtime.harness import RunConfig
from repro.runtime.scenarios import get_scenario

NODES = 16
PARTITIONS = 16
ACCOUNTS_PER_PARTITION = 4  # 64 servants total
BEST_OF = 3


def build_spec():
    """16 nodes, 64 Account servants, banking app + 3 concerns."""
    scenario = get_scenario("banking")
    config = RunConfig(
        scenario="banking", nodes=NODES, entities_per_node=1, seed=1,
        workers=0, concurrent=False, sim_latency_ms=0.0,
    )
    base = scenario.deployment_spec(config)
    partitions = []
    for p in range(PARTITIONS):
        key = f"branch-{p}"
        servants = []
        for i in range(ACCOUNTS_PER_PARTITION):
            name = f"{key}/Account/{i}"
            servants.append(
                ServantSpec(
                    name=name,
                    type_name="Account",
                    state={"number": name, "balance": 1_000.0},
                    read_only_ops=("getBalance",),
                )
            )
        partitions.append(PartitionSpec(key=key, servants=tuple(servants)))
    return replace(
        base,
        name="bench-deploy",
        partitions=tuple(partitions),
        replication=ReplicationSpec(count=1),
    )


def main() -> None:
    spec = build_spec()
    servant_count = sum(len(p.servants) for p in spec.partitions)
    assert servant_count == PARTITIONS * ACCOUNTS_PER_PARTITION

    compiler = DeploymentCompiler()
    compile_s = min(
        _timed(lambda: compiler.compile(spec)) for _ in range(BEST_OF)
    )

    started = time.perf_counter()
    federation = compiler.deploy(spec)
    bootstrap_s = time.perf_counter() - started
    try:
        # bootstrap smoke: everything declared is live
        for _key, servant_spec in spec.servants():
            assert federation.servant(servant_spec.name) is not None
        assert federation.call("branch-0/Account/0", "getBalance") == 1_000.0

        target = replace(
            spec,
            name="bench-deploy-grown",
            nodes=spec.nodes + (NodeSpec(name=f"node-{NODES}", workers=0),),
        )
        started = time.perf_counter()
        plan = apply_spec(federation, target)
        reconcile_s = time.perf_counter() - started
        moved = federation.last_rebalance.get("moved", 0)
        assert [action.kind for action in plan.actions] == ["join"]
    finally:
        federation.shutdown()

    payload = {
        "nodes": NODES,
        "servants": servant_count,
        "concerns": len(spec.application.concerns),
        "spec_digest": spec.digest(),
        "compile_s": round(compile_s, 6),
        "bootstrap_s": round(bootstrap_s, 6),
        "bootstrap_per_node_s": round(bootstrap_s / NODES, 6),
        "reconcile_join_s": round(reconcile_s, 6),
        "reconcile_bindings_moved": moved,
    }
    path = write_bench_json("deploy", payload)
    print(
        f"deploy bench: compile {compile_s * 1e3:.1f} ms, bootstrap "
        f"{bootstrap_s:.3f} s ({NODES} nodes / {servant_count} servants, "
        f"{bootstrap_s / NODES * 1e3:.0f} ms/node), reconcile join "
        f"{reconcile_s * 1e3:.1f} ms ({moved} bindings moved)"
    )
    print(f"results written to {path}")


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


if __name__ == "__main__":
    main()
