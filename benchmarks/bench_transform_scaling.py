"""E11 — CMT application time vs model size, with the trace ablation."""

import pytest

from repro.core.registry import default_registry
from repro.repository import ModelRepository
from repro.transform import TransformationEngine

from conftest import SIZES, make_model

REGISTRY = default_registry()


@pytest.mark.parametrize("size", SIZES)
def bench_apply_logging_cmt(benchmark, size):
    """The cheapest structural CMT (stereotypes only) across sizes."""
    gmt = REGISTRY.get("logging")

    def apply():
        resource, _ = make_model(size)
        engine = TransformationEngine(ModelRepository(resource))
        result = engine.apply(gmt.specialize(log_patterns=["C*.op0"]))
        assert result.created_elements >= size

    benchmark(apply)


@pytest.mark.parametrize("size", SIZES)
def bench_apply_distribution_cmt(benchmark, size):
    """A structure-building CMT: interfaces + proxies for 25% of classes."""
    gmt = REGISTRY.get("distribution")

    def apply():
        resource, _ = make_model(size)
        servers = [f"C{i}" for i in range(0, size, 4)]
        engine = TransformationEngine(ModelRepository(resource))
        result = engine.apply(gmt.specialize(server_classes=servers))
        assert result.created_elements > 0

    benchmark(apply)


@pytest.mark.parametrize("traced", [True, False], ids=["trace-on", "trace-off"])
def bench_trace_recording_ablation(benchmark, traced):
    """DESIGN.md ablation: provenance recording on vs off."""
    gmt = REGISTRY.get("distribution")

    def apply():
        resource, _ = make_model(40)
        engine = TransformationEngine(
            ModelRepository(resource), record_trace=traced
        )
        engine.apply(gmt.specialize(server_classes=["C0", "C1", "C2", "C3"]))
        if traced:
            assert len(engine.trace) > 0
        else:
            assert len(engine.trace) == 0

    benchmark(apply)


def bench_sequential_concern_stack(benchmark):
    """Applying three different concerns back-to-back (model evolves)."""

    def apply_stack():
        resource, _ = make_model(20)
        engine = TransformationEngine(ModelRepository(resource))
        engine.apply(REGISTRY.get("distribution").specialize(server_classes=["C0"]))
        engine.apply(
            REGISTRY.get("transactions").specialize(
                transactional_ops=["C0.op0"], state_classes=["C0"]
            )
        )
        engine.apply(
            REGISTRY.get("security").specialize(
                protected_ops=["C0.op0"], role_grants={"user": ["C0.*"]}
            )
        )
        assert len(engine.applications) == 3

    benchmark(apply_stack)
