"""E12 — OCL evaluator throughput on condition-shaped queries."""

import pytest

from repro.ocl import OclContext, evaluate, parse
from repro.ocl.evaluator import types_from_package
from repro.uml import UML

from conftest import SIZES, make_model

TYPES = types_from_package(UML.package)


def _context(size):
    resource, _ = make_model(size)
    return OclContext(resource=resource, types=TYPES)


@pytest.mark.parametrize("size", SIZES)
def bench_all_instances_select(benchmark, size):
    ctx = _context(size)
    ast = parse("Class.allInstances()->select(c | c.name.startsWith('C1'))")

    def query():
        result = evaluate(ast, ctx)
        assert result

    benchmark(query)


@pytest.mark.parametrize("size", SIZES)
def bench_forall_over_operations(benchmark, size):
    """The exact shape of the transactions postcondition."""
    ctx = _context(size)
    ast = parse(
        "Class.allInstances()->collect(c | c.operations)"
        "->forAll(o | o.name <> '')"
    )

    def query():
        assert evaluate(ast, ctx) is True

    benchmark(query)


@pytest.mark.parametrize("size", SIZES)
def bench_nested_quantifier(benchmark, size):
    ctx = _context(size)
    ast = parse(
        "Class.allInstances()->forAll(c | "
        "c.attributes->forAll(a | a.name.size() > 0))"
    )

    def query():
        assert evaluate(ast, ctx) is True

    benchmark(query)


def bench_parse_condition_text(benchmark):
    text = (
        "transactional_ops->forAll(n | Class.allInstances()->exists(c | "
        "c.operations->exists(o | c.name.concat('.').concat(o.name) = n)))"
    )

    def parse_it():
        return parse(text)

    benchmark(parse_it)


def bench_parameter_bound_query(benchmark):
    """Condition evaluation with Si variables injected (the E3 hot path)."""
    ctx = _context(40)
    ast = parse(
        "server_classes->forAll(n | Class.allInstances()->exists(c | c.name = n))"
    )
    bound = ctx.with_variables(server_classes=["C0", "C20", "C39"])

    def query():
        assert evaluate(ast, bound) is True

    benchmark(query)


def bench_scalar_expression_throughput(benchmark):
    ast = parse("Sequence{1,2,3,4,5,6,7,8}->collect(x | x * x)->sum()")

    def query():
        assert evaluate(ast) == 204

    benchmark(query)
