"""E13 — middleware substrate characterization: RPC, 2PC, locks, security."""

import pytest

from repro.errors import LockTimeoutError, TransactionAborted
from repro.middleware import (
    Acl,
    AccessController,
    AuthenticationService,
    CredentialStore,
    LockManager,
    LockMode,
    Orb,
    SimClock,
    TransactionManager,
)


class Echo:
    def ping(self, payload):
        return payload


def bench_rpc_small_payload(benchmark):
    orb = Orb()
    orb.register(Echo(), name="echo")
    proxy = orb.proxy("echo")

    def call():
        assert proxy.ping(1) == 1

    benchmark(call)


@pytest.mark.parametrize("items", [10, 100, 1000])
def bench_rpc_marshalling_scaling(benchmark, items):
    orb = Orb()
    orb.register(Echo(), name="echo")
    proxy = orb.proxy("echo")
    payload = list(range(items))

    def call():
        result = proxy.ping(payload)
        assert len(result) == items

    benchmark(call)


def bench_txn_commit_empty(benchmark):
    manager = TransactionManager()

    def commit():
        with manager.transaction():
            pass

    benchmark(commit)


@pytest.mark.parametrize("resources", [1, 8, 32])
def bench_txn_commit_with_enlisted_objects(benchmark, resources):
    manager = TransactionManager()

    class State:
        def __init__(self):
            self.x = 0

    objects = [State() for _ in range(resources)]

    def commit():
        with manager.transaction():
            for obj in objects:
                manager.enlist_object(obj)
                obj.x += 1

    benchmark(commit)


def bench_txn_abort_with_restore(benchmark):
    manager = TransactionManager()

    class State:
        def __init__(self):
            self.x = 0

    state = State()

    def abort():
        try:
            with manager.transaction():
                manager.enlist_object(state)
                state.x = 99
                raise ValueError("fail")
        except ValueError:
            pass
        assert state.x == 0

    benchmark(abort)


def bench_lock_acquire_release(benchmark):
    locks = LockManager()
    counter = [0]

    def cycle():
        counter[0] += 1
        txid = f"t{counter[0]}"
        for key in ("a", "b", "c", "d"):
            locks.acquire(txid, key, LockMode.WRITE)
        locks.release_all(txid)

    benchmark(cycle)


def bench_lock_contention_conflict_path(benchmark):
    locks = LockManager()
    locks.acquire("holder", "hot", LockMode.WRITE)
    counter = [0]

    def conflict():
        counter[0] += 1
        try:
            locks.acquire(f"w{counter[0]}", "hot", LockMode.WRITE)
        except LockTimeoutError:
            pass
        else:
            raise AssertionError("expected conflict")

    benchmark(conflict)


def bench_two_phase_commit_prepare_fault(benchmark):
    manager = TransactionManager()

    class State:
        def __init__(self):
            self.x = 0

    state = State()

    def aborted_commit():
        manager.faults.fail_next("txn.prepare")
        try:
            with manager.transaction():
                manager.enlist_object(state)
                state.x = 1
        except TransactionAborted:
            pass
        assert state.x == 0

    benchmark(aborted_commit)


def bench_auth_login(benchmark):
    store = CredentialStore()
    store.add_user("alice", "pw", roles=["teller"])
    auth = AuthenticationService(store, SimClock(), ttl_ms=1e12)

    def login():
        credential = auth.login("alice", "pw")
        assert credential.principal.name == "alice"

    benchmark(login)


def bench_acl_check(benchmark):
    store = CredentialStore()
    store.add_user("alice", "pw", roles=["teller"])
    clock = SimClock()
    auth = AuthenticationService(store, clock, ttl_ms=1e12)
    acl = Acl()
    for i in range(20):  # realistic rule-list length
        acl.allow_role("other", f"Service{i}.*", ["invoke"])
    acl.allow_role("teller", "Account.*", ["invoke"])
    controller = AccessController(auth, acl)
    token = auth.login("alice", "pw").token

    def check():
        principal = controller.check_access(token, "Account.withdraw", "invoke")
        assert principal.name == "alice"

    benchmark(check)
