"""E2 (Fig. 2) — three concerns T1/T2/T3 → A1/A2/A3 on the bank application.

Regenerates the paper's concrete example: all three middleware concerns
specialized with application parameters, the concrete aspects generated
and deployed in application order, and the resulting woven application
exercised (remote + atomic + secured transfer).
"""


from repro.errors import RemoteInvocationError, TransactionAborted

from conftest import build_full_bank_app


def bench_full_lifecycle_three_concerns(benchmark):
    """PIM → 3 CMT applications → codegen → weave (the entire Fig. 2)."""

    def lifecycle():
        module, services, lifecycle, _ = build_full_bank_app()
        assert len(lifecycle.plan) == 3
        assert lifecycle.plan.order()[0].startswith("A_distribution")
        return module

    benchmark(lifecycle)


def bench_woven_transfer_success(benchmark, bank_app):
    """One authorized, distributed, transactional transfer (happy path)."""
    module, services, _, credential = bank_app
    bank = module.Bank()
    source = module.Account(balance=1e12)
    target = module.Account(balance=0.0)

    def transfer():
        with services.orb.call_context(credentials=credential.token):
            assert bank.transfer(source, target, 1.0) is True

    benchmark(transfer)


def bench_woven_transfer_rollback(benchmark, bank_app):
    """One failing transfer: full abort path with snapshot restoration."""
    module, services, _, credential = bank_app
    bank = module.Bank()
    source = module.Account(balance=10.0)
    target = module.Account(balance=0.0)

    def failing_transfer():
        with services.orb.call_context(credentials=credential.token):
            try:
                bank.transfer(source, target, 10_000.0)
            except (ValueError, RemoteInvocationError, TransactionAborted):
                pass
        assert source.balance == 10.0 and target.balance == 0.0

    benchmark(failing_transfer)


def bench_unwoven_transfer_baseline(benchmark):
    """Baseline: the same functional code with no concerns woven at all."""
    from repro.codegen import compile_model

    from conftest import make_bank

    _, model = make_bank()
    module = compile_model(model, "bench_bank_plain")
    bank = module.Bank()
    source = module.Account(balance=1e12)
    target = module.Account(balance=0.0)

    def transfer():
        assert bank.transfer(source, target, 1.0) is True

    benchmark(transfer)
