"""E7 — XMI import/export: round-trip cost vs model size."""

import pytest

from repro.uml import UML
from repro.xmi import parse_xmi, xmi_string

from conftest import SIZES, make_model


@pytest.mark.parametrize("size", SIZES)
def bench_xmi_write(benchmark, size):
    resource, _ = make_model(size)

    def write():
        text = xmi_string(resource)
        assert text.startswith("<?xml")
        return text

    benchmark(write)


@pytest.mark.parametrize("size", SIZES)
def bench_xmi_read(benchmark, size):
    resource, _ = make_model(size)
    document = xmi_string(resource)

    def read():
        restored = parse_xmi(document, UML.package)
        assert restored.roots
        return restored

    benchmark(read)


@pytest.mark.parametrize("size", SIZES)
def bench_xmi_roundtrip(benchmark, size):
    resource, _ = make_model(size)
    original_count = sum(1 for _ in resource.all_contents())

    def roundtrip():
        restored = parse_xmi(xmi_string(resource), UML.package)
        assert sum(1 for _ in restored.all_contents()) == original_count

    benchmark(roundtrip)


def bench_xmi_with_stereotypes(benchmark):
    """Round-trip of a heavily stereotyped (refined) model."""
    from repro.core.registry import default_registry
    from repro.repository import ModelRepository
    from repro.transform import TransformationEngine

    resource, _ = make_model(20)
    engine = TransformationEngine(ModelRepository(resource))
    registry = default_registry()
    engine.apply(registry.get("distribution").specialize(server_classes=["C0", "C1"]))
    engine.apply(registry.get("logging").specialize(log_patterns=["C*.op0"]))

    def roundtrip():
        restored = parse_xmi(xmi_string(resource), UML.package)
        assert restored.roots
        return restored

    benchmark(roundtrip)
