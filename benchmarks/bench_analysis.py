"""E19 — lock-witness overhead: instrumented locks vs raw stdlib locks.

The claim under test: **the runtime lock witness is cheap enough for
stress CI and invisible when off**.  Every lock in the runtime is
created through :mod:`repro.analysis.witness` factories; with the
witness disabled they return the raw ``threading`` primitives (nothing
wrapped, the disabled cost is one env check at construction), and with
``REPRO_LOCK_WITNESS=record`` every acquisition updates a per-thread
held stack and a global acquisition-order graph.

The measurement is the repository's concurrent banking bench (E14,
``bench_runtime.py``): 2 nodes, thread-pool dispatchers, 8 concurrent
clients, zero injected transport latency — the harshest shape for the
witness, because with no network waits the per-acquire bookkeeping has
nothing to hide behind.  The witness mode is flipped via the
environment between runs: locks read the switch at construction, and
every ``run_scenario`` builds a fresh federation, so alternating
witnessed/raw windows in one process is sound.

The CI bar is **witnessed <= 2x raw median wall time** (the witness
touches every acquisition of every hot lock through one shared
registry, so its budget is far wider than tracing's 10%; measured
~1.35x on a quiet host, and the margin absorbs CI-runner noise).  The witnessed runs must actually record
acquisition edges and observe zero inversions — a variant that
silently stops witnessing cannot pass — and a serial control pair
asserts the witnessed and raw runs produce the identical outcome
digest (instrumentation must observe, never perturb).

Run standalone:  python benchmarks/bench_analysis.py
"""

from __future__ import annotations

import gc
import os
import statistics

from _benchjson import write_bench_json

from repro.analysis import witness
from repro.runtime import run_scenario

#: the CI ceiling: median witnessed/raw wall-time ratio
CEILING_RATIO = 2.0
SCENARIO = "banking"
NODES = 2
CLIENTS = 8
WORKERS = 4
OPS = 800
#: alternating raw/witnessed pairs; the median pair is the estimator
PAIRS = 6
#: full pair-set attempts (best median wins): a spiked attempt means
#: the host degraded mid-bench, and only a sustained overrun should
#: fail CI
ATTEMPTS = 3
EARLY_EXIT_MARGIN = 0.4


def _set_witness(mode):
    if mode is None:
        os.environ.pop("REPRO_LOCK_WITNESS", None)
    else:
        os.environ["REPRO_LOCK_WITNESS"] = mode


def run_once(witnessed: bool, ops: int = OPS, concurrent: bool = True):
    """One harness run; the witness switch is read at lock construction."""
    _set_witness("record" if witnessed else None)
    try:
        gc.collect()
        result = run_scenario(
            SCENARIO,
            nodes=NODES,
            clients=CLIENTS,
            ops=ops,
            seed=1,
            concurrent=concurrent,
            workers=WORKERS,
        )
    finally:
        _set_witness(None)
    assert result.passed, f"banking run failed (witnessed={witnessed})"
    return result


def serial_digest_control():
    """The witness must not perturb outcomes: serial digests identical."""
    witness.reset()
    _set_witness(None)
    raw = run_once(witnessed=False, ops=120, concurrent=False).digest()
    observed = run_once(witnessed=True, ops=120, concurrent=False).digest()
    snapshot = witness.registry().snapshot()
    assert snapshot["edges"], "witnessed control run recorded no lock edges"
    assert not snapshot["inversions"], (
        f"witnessed control run observed inversions: {snapshot['inversions']}"
    )
    return raw == observed, raw, observed


def measure_pairs(attempt):
    """One full pair set; returns its stats dict."""
    raw_ops_s, witnessed_ops_s, ratios = [], [], []
    for pair in range(PAIRS):
        # alternate which variant runs first so slow drift and periodic
        # background load cancel instead of biasing one side
        if pair % 2 == 0:
            raw = run_once(witnessed=False)
            observed = run_once(witnessed=True)
        else:
            observed = run_once(witnessed=True)
            raw = run_once(witnessed=False)
        assert raw.ops == observed.ops == OPS
        raw_ops_s.append(raw.throughput_ops_s)
        witnessed_ops_s.append(observed.throughput_ops_s)
        # wall-time ratio == inverse throughput ratio at equal ops
        ratios.append(raw.throughput_ops_s / observed.throughput_ops_s)
        print(
            f"attempt {attempt} pair {pair}: "
            f"raw {raw_ops_s[-1]:,.0f} ops/s, "
            f"witnessed {witnessed_ops_s[-1]:,.0f} ops/s, "
            f"ratio {ratios[-1]:.3f}"
        )
    return {
        "raw_ops_s": raw_ops_s,
        "witnessed_ops_s": witnessed_ops_s,
        "ratios": ratios,
        "median_ratio": statistics.median(ratios),
    }


def main():
    digest_identical, raw_digest, witnessed_digest = serial_digest_control()
    assert digest_identical, (
        f"witness changed the outcome digest: {raw_digest} != {witnessed_digest}"
    )
    # warm both variants (imports, code paths, allocator)
    run_once(witnessed=True)
    run_once(witnessed=False)
    witness.reset()

    best = None
    attempts = 0
    for attempt in range(ATTEMPTS):
        attempts += 1
        stats = measure_pairs(attempt)
        if best is None or stats["median_ratio"] < best["median_ratio"]:
            best = stats
        if best["median_ratio"] <= CEILING_RATIO - EARLY_EXIT_MARGIN:
            break
        print(
            f"attempt {attempt}: median {stats['median_ratio']:.3f} above "
            f"{CEILING_RATIO - EARLY_EXIT_MARGIN:.2f}, "
            + ("retrying" if attempt + 1 < ATTEMPTS else "out of attempts")
        )

    snapshot = witness.registry().snapshot()
    assert snapshot["edges"], "witnessed windows recorded no lock edges"
    assert not snapshot["inversions"], (
        f"witnessed windows observed inversions: {snapshot['inversions']}"
    )

    median_ratio = best["median_ratio"]
    overhead_pct = (median_ratio - 1.0) * 100.0
    passed = median_ratio <= CEILING_RATIO
    print(
        f"witness overhead ratio {median_ratio:.3f} "
        f"({overhead_pct:+.1f}% wall time, ceiling {CEILING_RATIO}x), "
        f"{len(snapshot['edges'])} acquisition edge(s) witnessed, "
        f"0 inversions, digest {raw_digest[:16]}"
    )
    write_bench_json(
        "analysis",
        {
            "scenario": SCENARIO,
            "nodes": NODES,
            "clients": CLIENTS,
            "workers": WORKERS,
            "ops_per_window": OPS,
            "pairs": PAIRS,
            "attempts": attempts,
            "raw_ops_s": [round(v) for v in best["raw_ops_s"]],
            "witnessed_ops_s": [round(v) for v in best["witnessed_ops_s"]],
            "pair_ratios": [round(v, 4) for v in best["ratios"]],
            "overhead_ratio": round(median_ratio, 4),
            "overhead_pct": round(overhead_pct, 2),
            "ceiling_ratio": CEILING_RATIO,
            "edges_witnessed": len(snapshot["edges"]),
            "inversions": len(snapshot["inversions"]),
            "digest_identical": digest_identical,
            "serial_digest": raw_digest,
            "passed": passed,
        },
    )
    assert passed, (
        f"witness overhead {median_ratio:.3f}x exceeded the "
        f"{CEILING_RATIO}x ceiling"
    )


if __name__ == "__main__":
    main()
