"""Shared benchmark helpers: synthetic model generators and wired stacks.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1..E14).  Models are synthetic but executable: every operation carries a
``<<PythonBody>>`` so generated code runs, which keeps the full pipeline
(codegen → weave → call) honest in end-to-end benchmarks.
"""

from __future__ import annotations

import pytest

from _benchjson import write_bench_json
from repro.core import MdaLifecycle, MiddlewareServices
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)

#: model sizes (number of classes) used by scaling benchmarks
SIZES = (10, 40, 120)


def make_model(n_classes: int, ops_per_class: int = 3, attrs_per_class: int = 2):
    """A synthetic but executable UML model with ``n_classes`` classes."""
    resource, model = new_model(f"synthetic_{n_classes}")
    prims = ensure_primitives(model)
    pkg = add_package(model, "app")
    for i in range(n_classes):
        cls = add_class(pkg, f"C{i}")
        for a in range(attrs_per_class):
            add_attribute(cls, f"a{a}", prims["Real"])
        for o in range(ops_per_class):
            op = add_operation(
                cls, f"op{o}", [("x", prims["Real"])], return_type=prims["Real"]
            )
            apply_stereotype(
                op, "PythonBody", body=f"self.a0 = self.a0 + x\nreturn self.a0"
            )
    return resource, model


def make_bank():
    """The Fig. 2 banking PIM (same shape as the test fixture)."""
    resource, model = new_model("bank")
    prims = ensure_primitives(model)
    pkg = add_package(model, "accounts")
    account = add_class(pkg, "Account")
    add_attribute(account, "balance", prims["Real"])
    deposit = add_operation(
        account, "deposit", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        deposit, "PythonBody", body="self.balance += amount\nreturn self.balance"
    )
    withdraw = add_operation(
        account, "withdraw", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        withdraw,
        "PythonBody",
        body=(
            "if amount > self.balance:\n"
            "    raise ValueError('insufficient funds')\n"
            "self.balance -= amount\n"
            "return self.balance"
        ),
    )
    bank = add_class(pkg, "Bank")
    transfer = add_operation(
        bank,
        "transfer",
        [("source", None), ("target", None), ("amount", prims["Real"])],
        return_type=prims["Boolean"],
    )
    apply_stereotype(
        transfer,
        "PythonBody",
        body="source.withdraw(amount)\ntarget.deposit(amount)\nreturn True",
    )
    return resource, model


BANK_PARAMS = {
    "distribution": dict(server_classes=["Account"], registry_prefix="bank"),
    "transactions": dict(
        transactional_ops=["Bank.transfer", "Account.withdraw", "Account.deposit"],
        state_classes=["Account"],
    ),
    "security": dict(
        protected_ops=["Bank.transfer"], role_grants={"teller": ["Bank.*"]}
    ),
}


_module_counter = [0]


def build_full_bank_app():
    """Refine + generate + weave the bank; returns (module, services, lifecycle)."""
    resource, _ = make_bank()
    services = MiddlewareServices.create()
    lifecycle = MdaLifecycle(resource, services=services)
    for concern, params in BANK_PARAMS.items():
        lifecycle.apply_concern(concern, **params)
    _module_counter[0] += 1
    module = lifecycle.build_application(f"bench_bank_{_module_counter[0]}")
    services.credentials.add_user("alice", "pw", roles=["teller"])
    credential = services.auth.login("alice", "pw")
    return module, services, lifecycle, credential


@pytest.fixture(scope="module")
def bank_app():
    return build_full_bank_app()


def pytest_sessionfinish(session, exitstatus):
    """Dump pytest-benchmark stats as BENCH_pytest.json (cross-PR tracking).

    Every bench run under pytest-benchmark gets the machine-readable hook
    for free; runs with ``--benchmark-disable`` collect no stats and write
    nothing.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    results = {}
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None or not getattr(stats, "data", None):
            continue
        results[bench.fullname] = {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
    if results:
        write_bench_json("pytest", {"results": results})
