"""E17 — log-shipping replication: write throughput vs partition size.

The claim under test: **delta replication decouples write cost from
partition size**.  Full-partition write-through re-copies every servant
in the partition after each mutating call — O(partition) per write — so
throughput collapses as partitions grow.  Per-servant dirty tracking
plus the append-only replication log make the per-write replication
work O(touched servants): one state snapshot appended to the partition
log and replayed onto the standby.

Three variants are measured at each partition size (64 → 4096 servants,
one standby):

* ``full_sync``  — write-through with dirty narrowing disabled (the
  pre-log behavior: every write re-copies the whole partition);
* ``write_through`` — write-through narrowed to the touched servants;
* ``log``       — the replication log: narrowed appends + replay, with
  snapshot+truncate every 64 entries.

The CI bar is **log >= 3x full_sync at 1024 servants**.  Replica lag
(applied-watermark deficit) and failover recovery time with log-replay
promotion are reported alongside.  Every run asserts effect
conservation on the *standby* copies: each successful deposit must be
visible in the replicated state, so a mode that loses writes cannot
pass.

Run standalone:  python benchmarks/bench_replication.py
"""

from __future__ import annotations

import random
import time

from _benchjson import write_bench_json

from repro.middleware.envelope import QoS
from repro.runtime import Federation

#: partition sizes swept (servants in the one replicated partition)
SIZES = (64, 256, 1024, 4096)
#: the CI floor: log-shipping throughput over full-partition sync at 1024
FLOOR_SPEEDUP = 3.0
FLOOR_AT_SIZE = 1024
#: ops per log/narrowed window (cheap writes: fixed count)
OPS_FAST = 1_500
#: full-sync ops shrink with partition size so the O(size^2) total
#: copy work stays bounded; throughput is a rate, so windows need not
#: match across variants
OPS_FULL_BUDGET = 120_000
#: retry budget that absorbs the dead-node fault during failover
RETRY = QoS(timeout_ms=30_000.0, retries=2)

PARTITION = "shard-0"


class Account:
    """Plain servant: replication needs state, not weaving."""

    def __init__(self, balance=0.0):
        self.balance = balance

    def deposit(self, amount):
        self.balance += amount
        return self.balance

    def getBalance(self):
        return self.balance


MODULE = type("BenchReplicationModule", (), {"Account": Account})


def build_federation(size, mode, narrowing=True):
    federation = Federation(seed=1, latency_ms=0.0)
    for i in range(2):
        federation.add_node(f"node-{i}").module = MODULE
    owner = federation.node_for(PARTITION)
    names = []
    for i in range(size):
        name = f"{PARTITION}/Account/{i}"
        owner.bind(name, Account())
        names.append(name)
    # enabled after the binds: seeding syncs once per partition instead
    # of once per bind
    federation.enable_replication(1, mode=mode, snapshot_every=64)
    federation.replicas.dirty_narrowing = narrowing
    return federation, names


def standby_total(federation, names):
    """Sum of balances held by the standby copies (replicated state)."""
    replicas = federation.replicas
    group = replicas._groups[PARTITION]
    total = 0.0
    for standby_name in group.standbys:
        copies = replicas.take(PARTITION, standby_name)
        total += sum(copies[name].balance for name in names)
    return total


def write_window(federation, names, ops, seed):
    """Closed-loop deposits against one replicated partition."""
    rng = random.Random(seed)
    start = time.perf_counter()
    for _ in range(ops):
        federation.call(rng.choice(names), "deposit", 1.0)
    return ops / (time.perf_counter() - start)


def bench_variant(size, mode, narrowing, ops):
    federation, names = build_federation(size, mode, narrowing)
    ops_s = write_window(federation, names, ops, seed=size)
    stats = federation.replicas.stats()
    # effect conservation ON THE STANDBY: every deposit must have been
    # replicated — a variant that drops writes cannot report a speedup
    replicated = standby_total(federation, names)
    assert replicated == float(ops), (
        f"{mode} (narrowing={narrowing}) lost writes: standby holds "
        f"{replicated}, expected {float(ops)}"
    )
    federation.shutdown()
    return {
        "ops": ops,
        "ops_s": round(ops_s),
        "syncs": stats["syncs"],
        "log_appends": stats["log_appends"],
        "snapshots": stats["snapshots"],
        "replica_lag": stats["replica_lag"],
        "max_replica_lag": stats["max_replica_lag"],
    }


def bench_sizes():
    results = []
    for size in SIZES:
        ops_full = max(60, OPS_FULL_BUDGET // size)
        row = {
            "partition_size": size,
            "full_sync": bench_variant(size, "full", False, ops_full),
            "write_through": bench_variant(size, "full", True, OPS_FAST),
            "log": bench_variant(size, "log", True, OPS_FAST),
        }
        row["speedup_log_vs_full"] = round(
            row["log"]["ops_s"] / row["full_sync"]["ops_s"], 2
        )
        results.append(row)
        print(
            f"size {size:5d}: full_sync {row['full_sync']['ops_s']:>7} ops/s, "
            f"write_through {row['write_through']['ops_s']:>7} ops/s, "
            f"log {row['log']['ops_s']:>7} ops/s "
            f"({row['speedup_log_vs_full']:.1f}x vs full)"
        )
    return results


def bench_failover(size=FLOOR_AT_SIZE):
    """Kill the primary after a log-shipped tail; time the promotion."""
    federation, names = build_federation(size, "log")
    write_window(federation, names, 500, seed=99)
    victim = federation.naming.owner_of(PARTITION)
    last = federation.call(names[0], "deposit", 1.0)
    kill_started = time.perf_counter()
    federation.kill(victim)
    # the first read eats the dead-node fault, the (log-riding)
    # promotion, and the retry re-resolve onto the new primary
    recovered = federation.call(names[0], "getBalance", qos=RETRY)
    recovery_ms = (time.perf_counter() - kill_started) * 1000.0
    assert recovered == last, (
        f"promotion lost the log tail: {recovered} != {last}"
    )
    failovers = federation.failovers
    federation.shutdown()
    return {
        "partition_size": size,
        "writes_before_kill": 501,
        "recovery_ms": round(recovery_ms, 2),
        "failovers": failovers,
        "last_write_survived": True,
    }


def main():
    sizes = bench_sizes()
    failover = bench_failover()
    print(
        f"failover at {failover['partition_size']} servants: "
        f"{failover['recovery_ms']:.1f} ms to first successful call, "
        f"last write survived"
    )
    at_floor = next(r for r in sizes if r["partition_size"] == FLOOR_AT_SIZE)
    speedup = at_floor["speedup_log_vs_full"]
    passed = speedup >= FLOOR_SPEEDUP
    write_bench_json(
        "replication",
        {
            "sizes": sizes,
            "failover": failover,
            "floor_speedup": FLOOR_SPEEDUP,
            "floor_at_size": FLOOR_AT_SIZE,
            "speedup_at_floor": speedup,
            "passed": passed,
        },
    )
    if not passed:
        raise SystemExit(
            f"log-shipping speedup {speedup:.2f}x at {FLOOR_AT_SIZE} "
            f"servants dropped below the {FLOOR_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    main()
