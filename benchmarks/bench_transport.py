"""E15 — envelope transports: pipelined/async invocation vs sync round trips.

The claim under test: on a latency-bound workload, a client that
pipelines consecutive same-node calls (one envelope, one transport hop
per batch) or keeps a window of reply futures in flight beats the
classic one-round-trip-per-call client by >= 2x (hard bar 1.5x), because
it pays hop latency once per batch / overlaps it across deliveries
instead of serializing it.

The workload is the banking shape: accounts sharded over a two-node
federation, a single closed-loop client issuing deposits and balance
reads, every federation hop sleeping ``HOP_LATENCY_MS`` of real time.
All three clients run the *same* operation sequence; only the invocation
style differs.  Money conservation is asserted at the end of every run —
a transport that loses or duplicates effects cannot pass.

Results land in ``BENCH_transport.json`` with a machine-readable
``floor`` so CI can enforce the speedup without eyeballing.

Run standalone:  python benchmarks/bench_transport.py
"""

from __future__ import annotations

import time

from _benchjson import write_bench_json

from repro.runtime import Federation

#: real (slept) transport latency per federation hop — what pipelining
#: and async windows amortize
HOP_LATENCY_MS = 1.5
#: consecutive calls shipped as one envelope / kept in flight
BATCH = 8
#: acceptance floor enforced by CI (target is 2x)
FLOOR = 1.5

INITIAL_BALANCE = 1_000.0


class Account:
    """Plain servant: the latency-bound workload needs no weaving."""

    def __init__(self):
        self.balance = INITIAL_BALANCE

    def deposit(self, amount):
        self.balance += amount
        return self.balance

    def getBalance(self):
        return self.balance


def build_federation(nodes=2, accounts=8):
    federation = Federation(
        seed=1, latency_ms=0.0, real_latency_s=HOP_LATENCY_MS / 1000.0
    )
    for i in range(nodes):
        federation.add_node(f"node-{i}", workers=4)
    servants = {}
    for k in range(accounts):
        partition = f"branch-{k}"
        node = federation.node_for(partition)
        name = f"{partition}/Account/0"
        account = Account()
        node.bind(name, account)
        servants[name] = account
    return federation, servants


def workload(names, ops):
    """The shared operation script: (account, operation, amount-or-None)."""
    script = []
    for i in range(ops):
        name = names[i % len(names)]
        if i % 4 == 3:
            script.append((name, "getBalance", None))
        else:
            script.append((name, "deposit", float(1 + i % 7)))
    return script


def expected_total(script, n_accounts):
    deposited = sum(amount for _, op, amount in script if op == "deposit")
    return INITIAL_BALANCE * n_accounts + deposited


def run_sync(script):
    """One blocking round trip per call: latency paid ops times."""
    federation, servants = build_federation()
    try:
        started = time.perf_counter()
        for name, op, amount in script:
            if amount is None:
                federation.call(name, op)
            else:
                federation.call(name, op, amount)
        elapsed = time.perf_counter() - started
        _check_conservation(servants, script)
        return elapsed
    finally:
        federation.shutdown()


def run_async_window(script, window=BATCH):
    """Reply futures with a bounded in-flight window."""
    federation, servants = build_federation()
    federation.delivery_workers = 4
    try:
        started = time.perf_counter()
        pending = []
        for name, op, amount in script:
            args = () if amount is None else (amount,)
            pending.append(federation.call_async(name, op, *args))
            if len(pending) >= window:
                for future in pending:
                    future.result(timeout_ms=30_000)
                pending = []
        for future in pending:
            future.result(timeout_ms=30_000)
        elapsed = time.perf_counter() - started
        _check_conservation(servants, script)
        return elapsed
    finally:
        federation.shutdown()


def run_pipelined(script, batch=BATCH):
    """Consecutive same-node calls share one envelope: latency per batch."""
    federation, servants = build_federation()
    federation.delivery_workers = 4
    try:
        # order the script so consecutive calls target the same node —
        # the locality a real batching client creates on purpose
        by_node = sorted(
            script, key=lambda entry: federation.node_for(entry[0]).name
        )
        started = time.perf_counter()
        pipe = federation.pipeline(max_batch=batch)
        futures = []
        for name, op, amount in by_node:
            args = () if amount is None else (amount,)
            futures.append(pipe.call(name, op, *args))
        pipe.flush()
        for future in futures:
            future.result(timeout_ms=30_000)
        elapsed = time.perf_counter() - started
        _check_conservation(servants, script)
        return elapsed
    finally:
        federation.shutdown()


def _check_conservation(servants, script):
    actual = sum(account.balance for account in servants.values())
    expected = expected_total(script, len(servants))
    assert actual == expected, (
        f"money not conserved: expected {expected}, found {actual}"
    )


def run_all(ops=192):
    names = [f"branch-{k}/Account/0" for k in range(8)]
    script = workload(names, ops)
    sync_s = run_sync(script)
    async_s = run_async_window(script)
    pipelined_s = run_pipelined(script)
    return {
        "ops": ops,
        "hop_latency_ms": HOP_LATENCY_MS,
        "batch": BATCH,
        "floor": FLOOR,
        "sync": {"duration_s": sync_s, "throughput_ops_s": ops / sync_s},
        "async_window": {
            "duration_s": async_s,
            "throughput_ops_s": ops / async_s,
            "speedup": sync_s / async_s,
        },
        "pipelined": {
            "duration_s": pipelined_s,
            "throughput_ops_s": ops / pipelined_s,
            "speedup": sync_s / pipelined_s,
        },
        # the headline number CI enforces: best asynchronous style vs sync
        "speedup": max(sync_s / async_s, sync_s / pipelined_s),
    }


def bench_transport_speedup():
    """CI smoke: pipelined/async invocation beats sync by >= 1.5x."""
    payload = run_all(ops=128)
    payload["passed"] = payload["speedup"] >= payload["floor"]
    write_bench_json("transport", payload)
    assert payload["passed"], (
        f"async/pipelined speedup {payload['speedup']:.2f}x below the "
        f"{FLOOR}x floor (sync {payload['sync']['throughput_ops_s']:.0f} ops/s, "
        f"pipelined {payload['pipelined']['throughput_ops_s']:.0f} ops/s, "
        f"async {payload['async_window']['throughput_ops_s']:.0f} ops/s)"
    )


def main():
    best = None
    for _ in range(3):
        payload = run_all()
        if best is None or payload["speedup"] > best["speedup"]:
            best = payload
    best["passed"] = best["speedup"] >= best["floor"]
    print(
        f"latency-bound banking workload, {best['ops']} ops, "
        f"{HOP_LATENCY_MS}ms/hop, batch/window {BATCH} (best of 3):"
    )
    print(
        f"  sync round trips:   {best['sync']['throughput_ops_s']:8.0f} ops/s "
        f"({best['sync']['duration_s']:.3f}s)"
    )
    print(
        f"  async window:       {best['async_window']['throughput_ops_s']:8.0f} ops/s "
        f"({best['async_window']['speedup']:.2f}x)"
    )
    print(
        f"  pipelined batches:  {best['pipelined']['throughput_ops_s']:8.0f} ops/s "
        f"({best['pipelined']['speedup']:.2f}x)"
    )
    print(f"  speedup: {best['speedup']:.2f}x (target >= 2x, bar {FLOOR}x)")
    path = write_bench_json("transport", best)
    print(f"results written to {path}")
    assert best["passed"]


if __name__ == "__main__":
    main()
