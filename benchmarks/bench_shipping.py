"""E15 — shipping & replay of refined components (§2's open question)."""

import pytest

from repro.core import ComponentPackage, MiddlewareServices, model_fingerprint, replay, ship

from conftest import build_full_bank_app


@pytest.fixture(scope="module")
def package():
    _, _, lifecycle, _ = build_full_bank_app()
    return ship(lifecycle)


def bench_ship_component(benchmark):
    _, _, lifecycle, _ = build_full_bank_app()

    def pack():
        shipped = ship(lifecycle)
        assert len(shipped.steps) == 3
        return shipped

    benchmark(pack)


def bench_package_json_roundtrip(benchmark, package):
    def roundtrip():
        restored = ComponentPackage.from_json(package.to_json())
        assert restored.steps == package.steps

    benchmark(roundtrip)


def bench_replay_with_verification(benchmark, package):
    def run():
        lifecycle = replay(package, services=MiddlewareServices.create())
        assert len(lifecycle.applied) == 3

    benchmark(run)


def bench_replay_without_verification(benchmark, package):
    """Ablation: the fingerprint check's share of a replay."""

    def run():
        replay(package, services=MiddlewareServices.create(), verify=False)

    benchmark(run)


def bench_model_fingerprint(benchmark):
    from conftest import make_model

    resource, _ = make_model(40)

    def fingerprint():
        lines = model_fingerprint(resource)
        assert lines
        return lines

    benchmark(fingerprint)
