"""E3 — OCL pre/postcondition gating: cost and ablation.

Measures the price of the paper's specialized pre/postconditions: checking
a realistic precondition set against models of growing size, and the
ablation DESIGN.md calls out — applying the same transformation with
condition checking enabled vs disabled.
"""

import pytest

from repro.core.registry import default_registry
from repro.ocl.evaluator import types_from_package
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.uml import UML

from conftest import SIZES, make_model

TYPES = types_from_package(UML.package)
REGISTRY = default_registry()


@pytest.mark.parametrize("size", SIZES)
def bench_precondition_check_scaling(benchmark, size):
    """Distribution's three preconditions over a size-parameterized model."""
    resource, _ = make_model(size)
    gmt = REGISTRY.get("distribution")
    parameters = dict(server_classes=["C0", f"C{size - 1}"], registry_prefix="svc")

    def check():
        violated = gmt.preconditions.violations(resource, TYPES, parameters)
        assert violated == []

    benchmark(check)


@pytest.mark.parametrize("size", SIZES)
def bench_postcondition_check_scaling(benchmark, size):
    """Transactions' postconditions (collect over every operation)."""
    resource, _ = make_model(size)
    engine = TransformationEngine(ModelRepository(resource))
    cmt = REGISTRY.get("transactions").specialize(
        transactional_ops=["C0.op0"], state_classes=["C0"]
    )
    engine.apply(cmt)

    def check():
        violated = cmt.postconditions.violations(resource, TYPES, cmt.parameters)
        assert violated == []

    benchmark(check)


@pytest.mark.parametrize("checked", [True, False], ids=["checks-on", "checks-off"])
def bench_apply_with_and_without_checks(benchmark, checked):
    """Ablation: the same CMT application, gated vs ungated."""
    gmt = REGISTRY.get("logging")

    def apply():
        resource, _ = make_model(30)
        engine = TransformationEngine(
            ModelRepository(resource),
            check_preconditions=checked,
            check_postconditions=checked,
        )
        result = engine.apply(gmt.specialize(log_patterns=["C0.*", "C1.*"]))
        assert result.created_elements > 0

    benchmark(apply)


def bench_violated_precondition_fast_fail(benchmark):
    """A failing precondition must be cheap: the model is never touched."""
    resource, _ = make_model(30)
    engine = TransformationEngine(ModelRepository(resource))
    cmt = REGISTRY.get("distribution").specialize(server_classes=["Ghost"])

    def rejected():
        from repro.errors import PreconditionViolation

        try:
            engine.apply(cmt)
        except PreconditionViolation:
            return True
        raise AssertionError("expected a violation")

    benchmark(rejected)
