"""E6 — concern demarcation ("colors"): attribution overhead and queries."""

import pytest

from repro.repository import ModelRepository
from repro.uml import add_class, add_operation, find_element

from conftest import make_model


@pytest.mark.parametrize("painted", [True, False], ids=["painted", "unpainted"])
def bench_transaction_with_painting(benchmark, painted):
    """Ablation: the same edits with and without concern attribution."""
    resource, _ = make_model(10)
    repo = ModelRepository(resource)
    pkg = find_element(resource.roots[0], "app")
    counter = [0]

    def edit():
        counter[0] += 1
        concern = "bench-concern" if painted else None
        with repo.transaction(f"edit{counter[0]}", concern=concern):
            cls = add_class(pkg, f"Painted{counter[0]}")
            add_operation(cls, "noop")
        repo.undo()

    benchmark(edit)


def bench_elements_of_query(benchmark):
    """Looking up every element a concern introduced (association list)."""
    resource, _ = make_model(30)
    repo = ModelRepository(resource)
    pkg = find_element(resource.roots[0], "app")
    with repo.transaction("grow", concern="observability"):
        for i in range(20):
            add_class(pkg, f"Obs{i}")

    def query():
        elements = repo.demarcation.elements_of("observability")
        assert len(elements) == 20
        return elements

    benchmark(query)


def bench_demarcation_report(benchmark):
    """Rendering the concern/color association list."""
    resource, _ = make_model(20)
    repo = ModelRepository(resource)
    pkg = find_element(resource.roots[0], "app")
    for concern in ("c1", "c2", "c3", "c4"):
        with repo.transaction(concern, concern=concern):
            add_class(pkg, f"Cls_{concern}")

    def report():
        text = repo.demarcation.report()
        assert "c1" in text and "c4" in text
        return text

    benchmark(report)


def bench_remaining_concerns(benchmark):
    """The developer-guidance query over covered vs planned concerns."""
    resource, _ = make_model(5)
    repo = ModelRepository(resource)
    with repo.transaction("a", concern="distribution"):
        pass
    planned = ["distribution", "transactions", "security", "logging"]

    def remaining():
        rest = repo.demarcation.remaining_concerns(planned)
        assert rest == ["transactions", "security", "logging"]

    benchmark(remaining)
