"""Machine-readable benchmark results: BENCH_<name>.json emission.

Benchmarks call :func:`write_bench_json` with a payload dict; the file
lands next to the benchmarks as ``BENCH_<name>.json`` with environment
metadata attached, so the perf trajectory can be tracked across PRs (CI
uploads them as artifacts).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def write_bench_json(name: str, payload: dict, directory: Path = BENCH_DIR) -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    document = {
        "bench": name,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **payload,
    }
    path = Path(directory) / f"BENCH_{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    return path
