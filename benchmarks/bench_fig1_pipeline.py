"""E1 (Fig. 1) — the GMT --Si--> CMT / GA --Si--> CA specialization square.

Regenerates Fig. 1 executably: measures each arrow of the square —
parameter binding (specialization), aspect derivation with the shared Si,
and the full one-concern pipeline (specialize → apply → generate CA).
The correctness claims of the figure (1-1 association, identical Si on
both sides) are asserted inside the measured functions.
"""

import pytest

from repro.core import MdaLifecycle, MiddlewareServices
from repro.core.aspect_generator import generate_concrete_aspect
from repro.core.registry import default_registry

from conftest import BANK_PARAMS, make_bank

REGISTRY = default_registry()


def bench_specialize_gmt_to_cmt(benchmark):
    """The <<specialization>> arrow: binding Si into a CMT."""
    gmt = REGISTRY.get("transactions")

    def specialize():
        cmt = gmt.specialize(**BANK_PARAMS["transactions"])
        assert cmt.generic is gmt
        return cmt

    benchmark(specialize)


def bench_derive_ca_with_shared_si(benchmark):
    """The GA-side arrow: deriving A_i<Si> from an existing CMT."""
    cmt = REGISTRY.get("transactions").specialize(**BANK_PARAMS["transactions"])

    def derive():
        ca = generate_concrete_aspect(cmt)
        assert ca.parameter_set is cmt.parameter_set  # the figure's 1-1 claim
        return ca

    benchmark(derive)


def bench_concern_space_viewpoint(benchmark):
    """Evaluating the concern-space viewpoint query with Si bound."""
    from repro.ocl.evaluator import types_from_package
    from repro.uml import UML

    resource, _ = make_bank()
    cmt = REGISTRY.get("distribution").specialize(**BANK_PARAMS["distribution"])
    types = types_from_package(UML.package)

    def viewpoint():
        space = cmt.concern_space(resource, types)
        assert space.names() == ["Account"]
        return space

    benchmark(viewpoint)


@pytest.mark.parametrize("concern", ["distribution", "transactions", "security"])
def bench_single_concern_pipeline(benchmark, concern):
    """One full Fig. 1 traversal: specialize, apply to the model, generate CA."""

    def pipeline():
        resource, _ = make_bank()
        lifecycle = MdaLifecycle(
            resource, services=MiddlewareServices.create()
        )
        result = lifecycle.apply_concern(concern, **BANK_PARAMS[concern])
        assert result.created_elements > 0
        assert len(lifecycle.plan) == 1
        return result

    benchmark(pipeline)
