"""E14 — distributed runtime: concurrent dispatch vs sequential baseline.

The claim under test: the thread-pool dispatcher with per-servant
serialization overlaps the transport latency of independent requests, so
federation throughput on the banking scenario scales well past the
one-request-at-a-time baseline (target >= 2x, hard bar 1.5x).

Both runs execute the *same* per-client operation scripts (same seed)
over the same topology; only the dispatch model differs.  Results land in
``BENCH_runtime.json`` for cross-PR tracking.

Run standalone:  python benchmarks/bench_runtime.py
"""

from __future__ import annotations

from _benchjson import write_bench_json

from repro.runtime import run_scenario

#: real (slept) transport latency per federation hop — the network time
#: concurrent dispatch is expected to overlap
HOP_LATENCY_MS = 1.5


def run_pair(ops=240, clients=8, nodes=2, workers=4, latency_ms=HOP_LATENCY_MS):
    """(sequential result, concurrent result, speedup) on banking."""
    common = dict(
        nodes=nodes,
        clients=clients,
        ops=ops,
        seed=1,
        real_latency_ms=latency_ms,
    )
    sequential = run_scenario("banking", concurrent=False, **common)
    concurrent = run_scenario("banking", concurrent=True, workers=workers, **common)
    assert sequential.passed and concurrent.passed
    speedup = concurrent.throughput_ops_s / sequential.throughput_ops_s
    return sequential, concurrent, speedup


def _payload(sequential, concurrent, speedup):
    return {
        "scenario": "banking",
        "hop_latency_ms": HOP_LATENCY_MS,
        "sequential": {
            "throughput_ops_s": sequential.throughput_ops_s,
            "duration_s": sequential.duration_s,
            "ops": sequential.ops,
        },
        "concurrent": {
            "throughput_ops_s": concurrent.throughput_ops_s,
            "duration_s": concurrent.duration_s,
            "ops": concurrent.ops,
            "workers": concurrent.config["workers"],
            "clients": concurrent.config["clients"],
        },
        "speedup": speedup,
        "operations": concurrent.metrics["operations"],
    }


def bench_concurrent_dispatch_speedup():
    """CI smoke: concurrent dispatch beats sequential by >= 1.5x."""
    sequential, concurrent, speedup = run_pair(ops=160, clients=8, workers=4)
    write_bench_json("runtime", _payload(sequential, concurrent, speedup))
    assert speedup >= 1.5, (
        f"concurrent dispatch speedup {speedup:.2f}x below the 1.5x bar "
        f"(sequential {sequential.throughput_ops_s:.0f} ops/s, "
        f"concurrent {concurrent.throughput_ops_s:.0f} ops/s)"
    )


def main():
    best = None
    for _ in range(3):
        sequential, concurrent, speedup = run_pair()
        if best is None or speedup > best[2]:
            best = (sequential, concurrent, speedup)
    sequential, concurrent, speedup = best
    print(
        f"banking scenario, {concurrent.config['nodes']} nodes, "
        f"{concurrent.config['clients']} clients, "
        f"{HOP_LATENCY_MS}ms hop latency (best of 3):"
    )
    print(
        f"  sequential dispatch: {sequential.throughput_ops_s:8.0f} ops/s "
        f"({sequential.duration_s:.3f}s)"
    )
    print(
        f"  concurrent dispatch: {concurrent.throughput_ops_s:8.0f} ops/s "
        f"({concurrent.duration_s:.3f}s, "
        f"{concurrent.config['workers']} workers/node)"
    )
    print(f"  speedup: {speedup:.2f}x (target >= 2x, bar 1.5x)")
    path = write_bench_json("runtime", _payload(sequential, concurrent, speedup))
    print(f"results written to {path}")
    assert speedup >= 1.5


if __name__ == "__main__":
    main()
