"""Well-formedness validation of model instances against their metamodel.

High-level mutations already enforce type conformance and upper bounds at
write time; the validator re-checks everything (useful after raw replays or
hand-built object graphs) and additionally checks what can only be verified
on a complete model: lower multiplicity bounds, opposite-link symmetry, and
single containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ValidationError
from repro.metamodel.instances import MList, MObject, ModelResource
from repro.metamodel.kernel import UNBOUNDED, MetaReference


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding."""

    obj: MObject
    feature_name: str
    message: str

    def __str__(self):
        return f"{self.obj!r}.{self.feature_name}: {self.message}"


class Validator:
    """Checks a set of objects (or a whole resource) for well-formedness."""

    def validate_resource(self, resource: ModelResource) -> List[Diagnostic]:
        return self.validate_objects(resource.all_contents())

    def validate_objects(self, objects: Iterable[MObject]) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for obj in objects:
            diagnostics.extend(self.validate_object(obj))
        return diagnostics

    def validate_object(self, obj: MObject) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for feature in obj.meta_class.all_features().values():
            value = obj._slots.get(feature.name)
            count = self._cardinality(feature, value)
            if count < feature.lower:
                out.append(
                    Diagnostic(
                        obj,
                        feature.name,
                        f"requires at least {feature.lower} value(s), has {count}",
                    )
                )
            if feature.upper != UNBOUNDED and count > feature.upper:
                out.append(
                    Diagnostic(
                        obj,
                        feature.name,
                        f"allows at most {feature.upper} value(s), has {count}",
                    )
                )
            values = list(value) if isinstance(value, MList) else ([] if value is None else [value])
            for item in values:
                if not feature.type.is_instance(item):
                    out.append(
                        Diagnostic(
                            obj,
                            feature.name,
                            f"value {item!r} does not conform to {feature.type.name}",
                        )
                    )
                elif isinstance(feature, MetaReference):
                    out.extend(self._check_reference(obj, feature, item))
        return out

    @staticmethod
    def _cardinality(feature, value) -> int:
        if value is None:
            return 0
        if isinstance(value, MList):
            return len(value)
        return 1

    def _check_reference(self, obj: MObject, feature: MetaReference, target: MObject):
        out: List[Diagnostic] = []
        if feature.containment:
            if target.container is not obj:
                out.append(
                    Diagnostic(
                        obj,
                        feature.name,
                        f"contained value {target!r} has container {target.container!r}",
                    )
                )
        opposite = feature.opposite
        if opposite is not None:
            back = target._slots.get(opposite.name)
            linked = (
                any(x is obj for x in back) if isinstance(back, MList) else back is obj
            )
            if not linked:
                out.append(
                    Diagnostic(
                        obj,
                        feature.name,
                        f"opposite {opposite.name} on {target!r} does not link back",
                    )
                )
        return out


def validate(target, raise_on_error: bool = True) -> List[Diagnostic]:
    """Validate a :class:`ModelResource`, a single object, or an iterable.

    Returns the diagnostics; raises :class:`~repro.errors.ValidationError`
    when any were found and ``raise_on_error`` is true.
    """
    validator = Validator()
    if isinstance(target, ModelResource):
        diagnostics = validator.validate_resource(target)
    elif isinstance(target, MObject):
        diagnostics = validator.validate_object(target)
        diagnostics += validator.validate_objects(target.all_contents())
    else:
        diagnostics = validator.validate_objects(target)
    if diagnostics and raise_on_error:
        raise ValidationError(diagnostics)
    return diagnostics
