"""Dynamic model instances: :class:`MObject`, :class:`MList`, :class:`ModelResource`.

Mutation model
--------------
All state lives in per-feature *slots*.  Two layers of mutation exist:

* **raw** operations (``_slot_set``, ``_slot_unset``, ``MList._raw_insert``,
  ``MList._raw_remove``) change exactly one slot, emit exactly one
  :class:`~repro.metamodel.notifications.Notification`, and maintain the
  *derived* container pointer for containment features — nothing else;
* **high-level** operations (``set``, ``unset``, ``append``, ``remove`` ...)
  validate types and multiplicities and orchestrate the raw operations
  needed to keep bidirectional (opposite) references consistent.

Because every raw change is notified, replaying inverted notifications in
reverse order restores any prior state — the foundation of the repository's
undo/redo (S5).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from repro.errors import (
    ContainmentError,
    ModelError,
    MultiplicityError,
    TypeConformanceError,
)
from repro.metamodel.kernel import (
    UNBOUNDED,
    MetaClass,
    MetaFeature,
    MetaReference,
)
from repro.metamodel.notifications import (
    Notification,
    NotificationKind,
    NotificationMixin,
)

_id_counter = itertools.count(1)


class _RootsFeature:
    """Sentinel pseudo-feature used for resource root add/remove notifications."""

    name = "<roots>"
    containment = True
    many = True


ROOTS_FEATURE = _RootsFeature()


def _check_conformance(feature: MetaFeature, value) -> None:
    if not feature.type.is_instance(value):
        raise TypeConformanceError(
            f"value {value!r} does not conform to {feature.type.name} "
            f"(feature {feature.qualified_name})"
        )


class MObject(NotificationMixin):
    """A dynamic instance of a :class:`~repro.metamodel.kernel.MetaClass`.

    Features are accessed either reflectively (``obj.get("name")`` /
    ``obj.set("name", v)``) or as Python attributes (``obj.name = v``).
    Many-valued features always read as an :class:`MList`.
    """

    __slots__ = (
        "_meta",
        "_slots",
        "_container",
        "_containing_feature",
        "_resource",
        "_observers",
        "_uuid",
        "__weakref__",
    )

    def __init__(self, meta_class: MetaClass):
        object.__setattr__(self, "_meta", meta_class)
        object.__setattr__(self, "_slots", {})
        object.__setattr__(self, "_container", None)
        object.__setattr__(self, "_containing_feature", None)
        object.__setattr__(self, "_resource", None)
        object.__setattr__(self, "_observers", [])
        object.__setattr__(self, "_uuid", f"o{next(_id_counter)}")
        for feature in meta_class.all_features().values():
            default = feature.default_value()
            if default is not None:
                self._slots[feature.name] = default

    # -- identity ------------------------------------------------------------

    @property
    def meta_class(self) -> MetaClass:
        return self._meta

    @property
    def uuid(self) -> str:
        """Process-unique, creation-ordered identifier (used by XMI and diffs)."""
        return self._uuid

    def isinstance_of(self, meta_class: MetaClass) -> bool:
        return self._meta.conforms_to(meta_class)

    # -- container / resource --------------------------------------------------

    @property
    def container(self) -> Optional["MObject"]:
        """The object that contains this one through a containment feature."""
        return self._container

    @property
    def containing_feature(self) -> Optional[MetaReference]:
        return self._containing_feature

    @property
    def resource(self) -> Optional["ModelResource"]:
        """The resource holding the containment tree this object is part of."""
        top = self
        while top._container is not None:
            top = top._container
        return top._resource

    def ancestors(self) -> Iterator["MObject"]:
        cur = self._container
        while cur is not None:
            yield cur
            cur = cur._container

    def all_contents(self) -> Iterator["MObject"]:
        """Depth-first iteration over the containment subtree (self excluded)."""
        for ref in self._meta.containment_references():
            value = self._slots.get(ref.name)
            if value is None:
                continue
            children = value if ref.many else [value]
            for child in list(children):
                yield child
                yield from child.all_contents()

    # -- notifications ---------------------------------------------------------

    def _notify(self, notification: Notification) -> None:
        self._dispatch(notification)
        resource = self.resource
        if resource is not None:
            resource._dispatch(notification)

    # -- raw layer ---------------------------------------------------------------

    def _raw_get(self, feature: MetaFeature):
        return self._slots.get(feature.name)

    def _slot_set(self, feature: MetaFeature, value) -> None:
        old = self._slots.get(feature.name)
        self._slots[feature.name] = value
        if isinstance(feature, MetaReference) and feature.containment:
            if isinstance(old, MObject):
                _clear_containment(old)
            if isinstance(value, MObject):
                _assign_containment(value, self, feature)
        self._notify(Notification(self, feature, NotificationKind.SET, old, value))

    def _slot_unset(self, feature: MetaFeature) -> None:
        old = self._slots.pop(feature.name, None)
        if isinstance(feature, MetaReference) and feature.containment:
            if isinstance(old, MObject):
                _clear_containment(old)
        self._notify(Notification(self, feature, NotificationKind.UNSET, old, None))

    # -- high-level access ---------------------------------------------------------

    def _resolve_feature(self, name: str) -> MetaFeature:
        return self._meta.feature(name)

    def get(self, name: str):
        """Read a feature; many-valued features return a live :class:`MList`."""
        feature = self._resolve_feature(name)
        if feature.many:
            current = self._slots.get(feature.name)
            if current is None:
                current = MList(self, feature)
                self._slots[feature.name] = current
            return current
        return self._slots.get(feature.name)

    def is_set(self, name: str) -> bool:
        feature = self._resolve_feature(name)
        value = self._slots.get(feature.name)
        if feature.many:
            return bool(value)
        return value is not None

    def set(self, name: str, value) -> None:
        """Assign a single-valued feature, keeping opposites consistent."""
        feature = self._resolve_feature(name)
        if feature.many:
            raise ModelError(
                f"feature {feature.qualified_name} is many-valued; mutate its collection"
            )
        if not feature.changeable:
            raise ModelError(f"feature {feature.qualified_name} is not changeable")
        if value is None:
            self.unset(name)
            return
        _check_conformance(feature, value)
        old = self._slots.get(feature.name)
        if old is value:
            return
        if isinstance(feature, MetaReference):
            self._set_reference(feature, old, value)
        else:
            self._slot_set(feature, value)

    def _set_reference(self, feature: MetaReference, old, value: "MObject") -> None:
        if feature.containment:
            _guard_containment_cycle(value, self)
            if value._container is not None and value._container is not self:
                value._container.remove_from(value._containing_feature.name, value)
            elif value._resource is not None:
                value._resource.remove_root(value)
        opposite = feature.opposite
        if opposite is not None:
            if old is not None:
                _raw_remove_link(old, opposite, self)
            _displace_single_opposite(value, feature, opposite, self)
        self._slot_set(feature, value)
        if opposite is not None:
            _raw_add_link(value, opposite, self)

    def unset(self, name: str) -> None:
        """Clear a feature (single-valued: remove value; many: remove all)."""
        feature = self._resolve_feature(name)
        if feature.many:
            self.get(name).clear()
            return
        old = self._slots.get(feature.name)
        if old is None:
            return
        if isinstance(feature, MetaReference) and feature.opposite is not None:
            _raw_remove_link(old, feature.opposite, self)
        self._slot_unset(feature)

    def remove_from(self, name: str, value) -> None:
        """Remove ``value`` from the many-valued feature ``name``."""
        self.get(name).remove(value)

    # -- attribute-style access ------------------------------------------------------

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        meta = object.__getattribute__(self, "_meta")
        if meta.has_feature(name):
            return self.get(name)
        raise AttributeError(
            f"{meta.qualified_name} instance has no feature or attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        if name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        if self._meta.has_feature(name):
            feature = self._meta.feature(name)
            if feature.many:
                collection = self.get(name)
                collection.clear()
                collection.extend(value)
            else:
                self.set(name, value)
            return
        raise AttributeError(
            f"{self._meta.qualified_name} instance has no feature {name!r}"
        )

    # -- lifecycle ----------------------------------------------------------------------

    def delete(self) -> None:
        """Detach this object from its container/resource and sever opposite links.

        Contained children are deleted recursively.  Unidirectional inbound
        references from *outside* the deleted subtree are not discoverable
        from here; use :meth:`ModelResource.purge` to also clean those.
        """
        for child in list(self.all_contents()):
            child._sever_cross_links()
        self._sever_cross_links()
        if self._container is not None:
            feature = self._containing_feature
            if feature.many:
                self._container.get(feature.name).remove(self)
            else:
                self._container.unset(feature.name)
        elif self._resource is not None:
            self._resource.remove_root(self)

    def _sever_cross_links(self) -> None:
        for feature in list(self._meta.all_features().values()):
            if not isinstance(feature, MetaReference) or feature.containment:
                continue
            if feature.opposite is None:
                continue
            if feature.many:
                collection = self._slots.get(feature.name)
                if collection:
                    for other in list(collection):
                        collection.remove(other)
            elif self._slots.get(feature.name) is not None:
                self.unset(feature.name)

    def __repr__(self):  # pragma: no cover - debugging aid
        label = self._slots.get("name")
        suffix = f" {label!r}" if isinstance(label, str) else f" {self._uuid}"
        return f"<{self._meta.name}{suffix}>"


# ---------------------------------------------------------------------------
# containment helpers
# ---------------------------------------------------------------------------


def _guard_containment_cycle(child: MObject, new_parent: MObject) -> None:
    if child is new_parent or any(a is child for a in new_parent.ancestors()):
        raise ContainmentError(
            f"containment cycle: {child!r} would contain its own ancestor"
        )


def _assign_containment(child: MObject, parent: MObject, feature: MetaReference) -> None:
    if child._container is not None and child._container is not parent:
        raise ContainmentError(
            f"{child!r} is already contained by {child._container!r}"
        )
    object.__setattr__(child, "_container", parent)
    object.__setattr__(child, "_containing_feature", feature)
    object.__setattr__(child, "_resource", None)


def _clear_containment(child: MObject) -> None:
    object.__setattr__(child, "_container", None)
    object.__setattr__(child, "_containing_feature", None)


# ---------------------------------------------------------------------------
# opposite-link helpers (raw, notification-emitting)
# ---------------------------------------------------------------------------


def _raw_add_link(target: MObject, opposite: MetaReference, source: MObject) -> None:
    """Record ``source`` on ``target``'s opposite slot (raw layer)."""
    if opposite.many:
        collection = target.get(opposite.name)
        if source not in collection:
            collection._raw_insert(len(collection), source)
    else:
        target._slot_set(opposite, source)


def _raw_remove_link(target: MObject, opposite: MetaReference, source: MObject) -> None:
    """Drop ``source`` from ``target``'s opposite slot (raw layer)."""
    if opposite.many:
        collection = target._slots.get(opposite.name)
        if collection is not None and source in collection:
            collection._raw_remove(collection.index(source))
    else:
        if target._slots.get(opposite.name) is source:
            target._slot_unset(opposite)


def _displace_single_opposite(
    value: MObject, feature: MetaReference, opposite: MetaReference, source: MObject
) -> None:
    """If ``value`` is already linked to another object through a single-valued
    opposite, sever that other object's forward link first."""
    if opposite.many:
        return
    previous = value._slots.get(opposite.name)
    if previous is None or previous is source:
        return
    if feature.many:
        collection = previous._slots.get(feature.name)
        if collection is not None and value in collection:
            collection._raw_remove(collection.index(value))
    else:
        if previous._slots.get(feature.name) is value:
            previous._slot_unset(feature)
    value._slot_unset(opposite)


# ---------------------------------------------------------------------------
# MList
# ---------------------------------------------------------------------------


class MList:
    """A live, owned collection backing a many-valued feature.

    Mutations validate type conformance and the upper multiplicity bound,
    maintain opposite references, and emit one notification per raw change.
    Reference-typed collections are *unique* (inserting an element twice
    raises :class:`~repro.errors.ModelError`); attribute collections may
    hold duplicates.
    """

    __slots__ = ("_owner", "_feature", "_items")

    def __init__(self, owner: MObject, feature: MetaFeature):
        self._owner = owner
        self._feature = feature
        self._items: list = []

    # -- raw layer ---------------------------------------------------------------

    def _raw_insert(self, index: int, value) -> None:
        self._items.insert(index, value)
        feature = self._feature
        if isinstance(feature, MetaReference) and feature.containment:
            _assign_containment(value, self._owner, feature)
        self._owner._notify(
            Notification(self._owner, feature, NotificationKind.ADD, None, value, index)
        )

    def _raw_remove(self, index: int):
        value = self._items.pop(index)
        feature = self._feature
        if isinstance(feature, MetaReference) and feature.containment:
            _clear_containment(value)
        self._owner._notify(
            Notification(self._owner, feature, NotificationKind.REMOVE, value, None, index)
        )
        return value

    # -- validation --------------------------------------------------------------

    def _check_insertable(self, value) -> None:
        feature = self._feature
        if not feature.changeable:
            raise ModelError(f"feature {feature.qualified_name} is not changeable")
        _check_conformance(feature, value)
        if feature.upper != UNBOUNDED and len(self._items) >= feature.upper:
            raise MultiplicityError(
                f"feature {feature.qualified_name} holds at most {feature.upper} values"
            )
        if isinstance(feature, MetaReference) and any(v is value for v in self._items):
            raise ModelError(
                f"{value!r} is already in {feature.qualified_name} (unique collection)"
            )

    # -- high-level mutation -------------------------------------------------------

    def insert(self, index: int, value) -> None:
        self._check_insertable(value)
        feature = self._feature
        if isinstance(feature, MetaReference):
            if feature.containment:
                _guard_containment_cycle(value, self._owner)
                if value._container is not None:
                    value._container.remove_from(value._containing_feature.name, value)
                elif value._resource is not None:
                    value._resource.remove_root(value)
            opposite = feature.opposite
            if opposite is not None:
                _displace_single_opposite(value, feature, opposite, self._owner)
        index = min(max(index, 0), len(self._items))
        self._raw_insert(index, value)
        if isinstance(feature, MetaReference) and feature.opposite is not None:
            _raw_add_link(value, feature.opposite, self._owner)

    def append(self, value) -> None:
        self.insert(len(self._items), value)

    def extend(self, values: Iterable) -> None:
        for value in values:
            self.append(value)

    def remove(self, value) -> None:
        for i, item in enumerate(self._items):
            if item is value or item == value:
                self._remove_at(i)
                return
        raise ModelError(f"{value!r} not in {self._feature.qualified_name}")

    def _remove_at(self, index: int):
        value = self._raw_remove(index)
        feature = self._feature
        if isinstance(feature, MetaReference) and feature.opposite is not None:
            _raw_remove_link(value, feature.opposite, self._owner)
        return value

    def pop(self, index: int = -1):
        if not self._items:
            raise ModelError(f"pop from empty {self._feature.qualified_name}")
        if index < 0:
            index += len(self._items)
        return self._remove_at(index)

    def clear(self) -> None:
        while self._items:
            self._remove_at(len(self._items) - 1)

    def __setitem__(self, index: int, value) -> None:
        if not isinstance(index, int):
            raise ModelError("MList only supports integer index assignment")
        size = len(self._items)
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise ModelError(f"index {index} out of range for {self._feature.qualified_name}")
        self._remove_at(index)
        self.insert(index, value)

    # -- read access -----------------------------------------------------------------

    def index(self, value) -> int:
        for i, item in enumerate(self._items):
            if item is value or item == value:
                return i
        raise ValueError(f"{value!r} not in list")

    def __contains__(self, value) -> bool:
        return any(item is value or item == value for item in self._items)

    def __iter__(self):
        return iter(list(self._items))

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._items[index])
        return self._items[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, MList):
            return self._items == other._items
        if isinstance(other, (list, tuple)):
            return self._items == list(other)
        return NotImplemented

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"MList({self._feature.name}, {self._items!r})"


# ---------------------------------------------------------------------------
# ModelResource
# ---------------------------------------------------------------------------


class ModelResource(NotificationMixin):
    """A named holder of root objects; the unit of versioning and XMI export.

    Observers subscribed on a resource receive every notification emitted by
    any object inside its containment trees, plus root add/remove events
    (feature :data:`ROOTS_FEATURE`).
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._roots: list[MObject] = []
        self._observers = []

    @property
    def roots(self) -> tuple:
        return tuple(self._roots)

    def add_root(self, obj: MObject) -> MObject:
        if obj._container is not None:
            raise ContainmentError(f"{obj!r} is contained; cannot be a resource root")
        if obj._resource is self:
            return obj
        if obj._resource is not None:
            obj._resource.remove_root(obj)
        self._roots.append(obj)
        object.__setattr__(obj, "_resource", self)
        self._dispatch(
            Notification(self, ROOTS_FEATURE, NotificationKind.ADD, None, obj, len(self._roots) - 1)
        )
        return obj

    def remove_root(self, obj: MObject) -> None:
        try:
            index = next(i for i, r in enumerate(self._roots) if r is obj)
        except StopIteration:
            raise ModelError(f"{obj!r} is not a root of resource {self.name!r}") from None
        self._roots.pop(index)
        object.__setattr__(obj, "_resource", None)
        self._dispatch(
            Notification(self, ROOTS_FEATURE, NotificationKind.REMOVE, obj, None, index)
        )

    def all_contents(self) -> Iterator[MObject]:
        """Every object in the resource, depth-first from each root."""
        for root in list(self._roots):
            yield root
            yield from root.all_contents()

    def objects_of(self, meta_class: MetaClass) -> Iterator[MObject]:
        """All instances (direct or via subclassing) of ``meta_class``."""
        for obj in self.all_contents():
            if obj.isinstance_of(meta_class):
                yield obj

    def find(self, meta_class: MetaClass, **attrs) -> Optional[MObject]:
        """First object of ``meta_class`` whose features equal ``attrs``."""
        for obj in self.objects_of(meta_class):
            if all(obj.get(k) == v for k, v in attrs.items()):
                return obj
        return None

    def by_uuid(self, uuid: str) -> Optional[MObject]:
        for obj in self.all_contents():
            if obj.uuid == uuid:
                return obj
        return None

    def purge(self, obj: MObject) -> None:
        """Delete ``obj`` and scrub any dangling unidirectional references to it
        (or to objects of its subtree) from the rest of the resource."""
        doomed = {id(obj)}
        doomed.update(id(c) for c in obj.all_contents())
        obj.delete()
        for other in self.all_contents():
            for feature in other.meta_class.all_features().values():
                if not isinstance(feature, MetaReference) or feature.containment:
                    continue
                if feature.many:
                    collection = other._slots.get(feature.name)
                    if collection is None:
                        continue
                    for item in list(collection):
                        if id(item) in doomed:
                            collection.remove(item)
                else:
                    value = other._slots.get(feature.name)
                    if value is not None and id(value) in doomed:
                        other.unset(feature.name)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<ModelResource {self.name!r} roots={len(self._roots)}>"


# ---------------------------------------------------------------------------
# deep cloning (used by repository snapshots and model diff baselines)
# ---------------------------------------------------------------------------


def deep_clone(roots: Iterable[MObject]):
    """Clone the containment subtrees of ``roots``.

    Returns ``(clones, mapping)`` where ``mapping`` maps original objects to
    their clones (by identity).  Cross-references *within* the cloned forest
    are remapped to the clones; references leaving the forest keep pointing
    at the original targets.
    """
    roots = list(roots)
    mapping: dict[int, MObject] = {}
    originals: dict[int, MObject] = {}

    def _shallow(obj: MObject) -> MObject:
        clone = MObject(obj.meta_class)
        mapping[id(obj)] = clone
        originals[id(obj)] = obj
        return clone

    for root in roots:
        _shallow(root)
        for child in root.all_contents():
            _shallow(child)

    for oid, original in originals.items():
        clone = mapping[oid]
        for feature in original.meta_class.all_features().values():
            value = original._slots.get(feature.name)
            if value is None:
                continue
            if isinstance(feature, MetaReference):
                if feature.opposite is not None and not feature.containment:
                    opp = feature.opposite
                    # Replay only one side of each bidirectional pair; choose
                    # the containment side if there is one, else the side
                    # whose (class, name) sorts first for determinism.
                    if opp.containment:
                        continue
                    if not feature.containment:
                        self_key = (feature.owning_class.qualified_name, feature.name)
                        opp_key = (opp.owning_class.qualified_name, opp.name)
                        if self_key > opp_key:
                            continue
                values = list(value) if feature.many else [value]
                for item in values:
                    target = mapping.get(id(item), item)
                    if feature.many:
                        clone.get(feature.name).append(target)
                    else:
                        clone.set(feature.name, target)
            else:
                if feature.many:
                    clone.get(feature.name).extend(list(value))
                else:
                    clone._slot_set(feature, value)

    clones = [mapping[id(r)] for r in roots]
    return clones, {originals[k].uuid: v for k, v in mapping.items()}
