"""S1 — Metamodeling kernel (EMOF-equivalent, built from scratch).

This package provides the reflective metamodeling substrate the paper
assumes (a MOF repository): metaclasses with typed attributes and
references (including containment and bidirectional opposites), dynamic
instances, change notification, resources holding object trees, and a
well-formedness validator.

Quick tour::

    from repro.metamodel import MetaPackage, MetaClass, STRING, UNBOUNDED

    pkg = MetaPackage("library")
    book = MetaClass("Book", package=pkg)
    book.add_attribute("title", STRING, lower=1)
    shelf = MetaClass("Shelf", package=pkg)
    shelf.add_reference("books", book, upper=UNBOUNDED, containment=True)

    b = book(title="TAOCP")
    s = shelf()
    s.books.append(b)
    assert b.container is s
"""

from repro.metamodel.kernel import (
    UNBOUNDED,
    MetaAttribute,
    MetaClass,
    MetaClassifier,
    MetaDataType,
    MetaElement,
    MetaEnum,
    MetaEnumLiteral,
    MetaFeature,
    MetaPackage,
    MetaReference,
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    ANY,
)
from repro.metamodel.instances import MObject, MList, ModelResource
from repro.metamodel.notifications import Notification, NotificationKind
from repro.metamodel.builder import MetamodelBuilder
from repro.metamodel.validation import Diagnostic, Validator, validate

__all__ = [
    "UNBOUNDED",
    "MetaElement",
    "MetaPackage",
    "MetaClassifier",
    "MetaDataType",
    "MetaEnum",
    "MetaEnumLiteral",
    "MetaClass",
    "MetaFeature",
    "MetaAttribute",
    "MetaReference",
    "STRING",
    "INTEGER",
    "REAL",
    "BOOLEAN",
    "ANY",
    "MObject",
    "MList",
    "ModelResource",
    "Notification",
    "NotificationKind",
    "MetamodelBuilder",
    "Diagnostic",
    "Validator",
    "validate",
]
