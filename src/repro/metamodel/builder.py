"""Fluent construction of metamodels with deferred opposite resolution.

Defining bidirectional references is awkward with the raw kernel API because
both metaclasses must exist before the opposite pair can be linked.  The
builder records opposite declarations by *name* and resolves them in
:meth:`MetamodelBuilder.build`::

    b = MetamodelBuilder("library")
    book = b.metaclass("Book")
    author = b.metaclass("Author")
    b.reference(book, "authors", author, upper=UNBOUNDED, opposite="books")
    b.reference(author, "books", book, upper=UNBOUNDED)
    pkg = b.build()
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import MetamodelError
from repro.metamodel.kernel import (
    ANY,
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    UNBOUNDED,
    MetaAttribute,
    MetaClass,
    MetaDataType,
    MetaEnum,
    MetaPackage,
    MetaReference,
)


class MetamodelBuilder:
    """Accumulates metamodel definitions and resolves cross-links at build time."""

    #: Re-exported primitives so callers need a single import.
    STRING = STRING
    INTEGER = INTEGER
    REAL = REAL
    BOOLEAN = BOOLEAN
    ANY = ANY
    UNBOUNDED = UNBOUNDED

    def __init__(self, package_name: str):
        self.package = MetaPackage(package_name)
        self._pending_opposites: list[tuple[MetaReference, MetaClass, str]] = []
        self._built = False

    def subpackage(self, name: str) -> MetaPackage:
        sub = MetaPackage(name)
        self.package.add_subpackage(sub)
        return sub

    def metaclass(
        self,
        name: str,
        superclasses: Iterable[MetaClass] = (),
        abstract: bool = False,
        package: Optional[MetaPackage] = None,
    ) -> MetaClass:
        return MetaClass(
            name,
            package=package or self.package,
            superclasses=superclasses,
            abstract=abstract,
        )

    def enum(self, name: str, literals: Iterable[str], package=None) -> MetaEnum:
        enum = MetaEnum(name, literals)
        (package or self.package).add_classifier(enum)
        return enum

    def datatype(self, name: str, python_types: tuple, package=None) -> MetaDataType:
        dt = MetaDataType(name, python_types)
        (package or self.package).add_classifier(dt)
        return dt

    def attribute(
        self, owner: MetaClass, name: str, type_, lower=0, upper=1, default=None, **kw
    ) -> MetaAttribute:
        return owner.add_attribute(name, type_, lower, upper, default, **kw)

    def reference(
        self,
        owner: MetaClass,
        name: str,
        type_: MetaClass,
        lower=0,
        upper=1,
        containment=False,
        opposite: Optional[str] = None,
        **kw,
    ) -> MetaReference:
        ref = owner.add_reference(name, type_, lower, upper, containment, **kw)
        if opposite is not None:
            self._pending_opposites.append((ref, type_, opposite))
        return ref

    def build(self) -> MetaPackage:
        """Resolve pending opposites and return the finished package."""
        if self._built:
            return self.package
        for ref, target_class, opposite_name in self._pending_opposites:
            feature = target_class.feature(opposite_name)
            if not isinstance(feature, MetaReference):
                raise MetamodelError(
                    f"opposite {target_class.name}.{opposite_name} is not a reference"
                )
            if feature.opposite is None or feature.opposite is ref:
                ref.set_opposite(feature)
            elif feature.opposite is not ref:
                raise MetamodelError(
                    f"{feature.qualified_name} already paired with "
                    f"{feature.opposite.qualified_name}"
                )
        self._pending_opposites.clear()
        self._built = True
        return self.package
