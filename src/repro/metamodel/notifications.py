"""Change notification for model instances.

Every *raw* slot mutation on an :class:`~repro.metamodel.instances.MObject`
emits exactly one :class:`Notification`.  Higher-level operations (setting a
bidirectional reference, moving a contained object) emit one notification
per raw change they perform, which makes the stream *replayable*: applying
the inverse of each notification in reverse order restores the previous
state.  The repository's undo/redo log (S5) is built directly on this
property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional


class NotificationKind(enum.Enum):
    """The kind of raw change a notification describes."""

    SET = "set"        #: single-valued slot changed from ``old`` to ``new``
    UNSET = "unset"    #: single-valued slot cleared (``old`` holds prior value)
    ADD = "add"        #: ``new`` inserted into a many-valued slot at ``index``
    REMOVE = "remove"  #: ``old`` removed from a many-valued slot at ``index``


@dataclass(frozen=True)
class Notification:
    """An immutable record of one raw model change."""

    obj: Any                      #: the MObject whose slot changed
    feature: Any                  #: the MetaFeature that changed
    kind: NotificationKind
    old: Any = None
    new: Any = None
    index: Optional[int] = None   #: position for ADD/REMOVE

    def describe(self) -> str:
        """Human-readable one-liner, used by diagnostics and the repository log."""
        fname = f"{self.obj.meta_class.name}.{self.feature.name}"
        if self.kind is NotificationKind.SET:
            return f"set {fname}: {self.old!r} -> {self.new!r}"
        if self.kind is NotificationKind.UNSET:
            return f"unset {fname} (was {self.old!r})"
        if self.kind is NotificationKind.ADD:
            return f"add {self.new!r} to {fname}[{self.index}]"
        return f"remove {self.old!r} from {fname}[{self.index}]"


#: Signature of notification observers.
Observer = Callable[[Notification], None]


class NotificationMixin:
    """Mixin providing observer registration and dispatch.

    Subclasses must provide ``_observers`` (a list); objects additionally
    forward notifications to their resource.
    """

    __slots__ = ()

    def subscribe(self, observer: Observer) -> Observer:
        """Register ``observer`` to receive every future notification."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Observer) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _dispatch(self, notification: Notification) -> None:
        for observer in tuple(self._observers):
            observer(notification)
