"""Meta-level definitions: packages, classifiers, classes, and features.

The kernel mirrors Essential MOF: a :class:`MetaPackage` owns
:class:`MetaClassifier` objects; a :class:`MetaClass` owns
:class:`MetaAttribute` and :class:`MetaReference` features and may inherit
from other metaclasses.  Instances of metaclasses are dynamic
:class:`~repro.metamodel.instances.MObject` objects created by *calling*
the metaclass.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import MetamodelError

#: Marker for an unbounded upper multiplicity (``*`` in UML/MOF notation).
UNBOUNDED = -1


class MetaElement:
    """Common superclass of every element of a metamodel definition.

    Provides a ``name``, free-form ``annotations`` (a plain dict usable by
    tools, e.g. documentation strings or generator hints), and a qualified
    name computed by walking the ownership chain.
    """

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise MetamodelError(f"meta element needs a non-empty name, got {name!r}")
        self.name = name
        self.annotations: dict = {}
        self._owner: Optional[MetaElement] = None

    @property
    def owner(self) -> Optional["MetaElement"]:
        """The metamodel element that owns this one, if any."""
        return self._owner

    @property
    def qualified_name(self) -> str:
        """Dot-separated path from the root package to this element."""
        parts = [self.name]
        cur = self._owner
        while cur is not None:
            parts.append(cur.name)
            cur = cur._owner
        return ".".join(reversed(parts))

    def annotate(self, **entries) -> "MetaElement":
        """Attach annotation entries and return ``self`` (chainable)."""
        self.annotations.update(entries)
        return self

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.qualified_name}>"


class MetaPackage(MetaElement):
    """A namespace owning classifiers and sub-packages."""

    def __init__(self, name: str):
        super().__init__(name)
        self._classifiers: dict[str, MetaClassifier] = {}
        self._subpackages: dict[str, MetaPackage] = {}

    @property
    def classifiers(self) -> tuple:
        return tuple(self._classifiers.values())

    @property
    def subpackages(self) -> tuple:
        return tuple(self._subpackages.values())

    def add_classifier(self, classifier: "MetaClassifier") -> "MetaClassifier":
        if classifier.name in self._classifiers:
            raise MetamodelError(
                f"package {self.qualified_name} already has classifier {classifier.name!r}"
            )
        self._classifiers[classifier.name] = classifier
        classifier._owner = self
        return classifier

    def add_subpackage(self, package: "MetaPackage") -> "MetaPackage":
        if package.name in self._subpackages:
            raise MetamodelError(
                f"package {self.qualified_name} already has subpackage {package.name!r}"
            )
        self._subpackages[package.name] = package
        package._owner = self
        return package

    def classifier(self, name: str) -> "MetaClassifier":
        """Look up a directly-owned classifier by simple name."""
        try:
            return self._classifiers[name]
        except KeyError:
            raise MetamodelError(
                f"no classifier {name!r} in package {self.qualified_name}"
            ) from None

    def resolve(self, qualified: str) -> "MetaClassifier":
        """Resolve a classifier by path relative to this package.

        ``pkg.resolve("sub.Klass")`` descends through sub-packages.
        """
        parts = qualified.split(".")
        scope: MetaPackage = self
        for part in parts[:-1]:
            try:
                scope = scope._subpackages[part]
            except KeyError:
                raise MetamodelError(
                    f"no subpackage {part!r} under {scope.qualified_name}"
                ) from None
        return scope.classifier(parts[-1])

    def all_classifiers(self) -> Iterator["MetaClassifier"]:
        """All classifiers of this package and its sub-packages, depth-first."""
        yield from self._classifiers.values()
        for sub in self._subpackages.values():
            yield from sub.all_classifiers()

    def all_metaclasses(self) -> Iterator["MetaClass"]:
        for c in self.all_classifiers():
            if isinstance(c, MetaClass):
                yield c


class MetaClassifier(MetaElement):
    """Anything that can type a feature: data types, enums and classes."""

    @property
    def package(self) -> Optional[MetaPackage]:
        owner = self._owner
        return owner if isinstance(owner, MetaPackage) else None

    def is_instance(self, value) -> bool:
        """Whether ``value`` conforms to this classifier."""
        raise NotImplementedError


class MetaDataType(MetaClassifier):
    """A primitive data type backed by one or more Python types."""

    def __init__(self, name: str, python_types: tuple, default=None):
        super().__init__(name)
        self.python_types = python_types
        self.default = default

    def is_instance(self, value) -> bool:
        if not self.python_types:  # the ANY type accepts everything
            return True
        # bool is an int subclass in Python; keep Boolean and Integer disjoint.
        if bool not in self.python_types and isinstance(value, bool):
            return False
        return isinstance(value, self.python_types)


#: Built-in primitive types usable by every metamodel.
STRING = MetaDataType("String", (str,), default=None)
INTEGER = MetaDataType("Integer", (int,), default=None)
REAL = MetaDataType("Real", (float, int), default=None)
BOOLEAN = MetaDataType("Boolean", (bool,), default=None)
ANY = MetaDataType("Any", (), default=None)


class MetaEnumLiteral(MetaElement):
    """One literal of an enumeration; its value is its name string."""

    def __init__(self, name: str, enum: "MetaEnum"):
        super().__init__(name)
        self._owner = enum


class MetaEnum(MetaClassifier):
    """An enumeration type; values of enum-typed features are literal names."""

    def __init__(self, name: str, literals: Iterable[str] = ()):
        super().__init__(name)
        self._literals: dict[str, MetaEnumLiteral] = {}
        for lit in literals:
            self.add_literal(lit)

    @property
    def literals(self) -> tuple:
        return tuple(self._literals)

    def add_literal(self, name: str) -> MetaEnumLiteral:
        if name in self._literals:
            raise MetamodelError(f"enum {self.name} already has literal {name!r}")
        lit = MetaEnumLiteral(name, self)
        self._literals[name] = lit
        return lit

    def is_instance(self, value) -> bool:
        return isinstance(value, str) and value in self._literals

    @property
    def default(self):
        return next(iter(self._literals), None)


class MetaFeature(MetaElement):
    """A structural feature of a metaclass (attribute or reference)."""

    def __init__(
        self,
        name: str,
        type_: MetaClassifier,
        lower: int = 0,
        upper: int = 1,
        ordered: bool = True,
        changeable: bool = True,
    ):
        super().__init__(name)
        if not isinstance(type_, MetaClassifier):
            raise MetamodelError(f"feature {name!r} needs a MetaClassifier type")
        if upper != UNBOUNDED and upper < 1:
            raise MetamodelError(f"feature {name!r}: upper bound must be >=1 or UNBOUNDED")
        if upper != UNBOUNDED and lower > upper:
            raise MetamodelError(f"feature {name!r}: lower {lower} > upper {upper}")
        if lower < 0:
            raise MetamodelError(f"feature {name!r}: lower bound must be >= 0")
        self.type = type_
        self.lower = lower
        self.upper = upper
        self.ordered = ordered
        self.changeable = changeable

    @property
    def many(self) -> bool:
        """True when the feature holds a collection (upper bound != 1)."""
        return self.upper != 1

    @property
    def required(self) -> bool:
        return self.lower >= 1

    @property
    def owning_class(self) -> Optional["MetaClass"]:
        owner = self._owner
        return owner if isinstance(owner, MetaClass) else None

    def default_value(self):
        if self.many:
            return None  # collections are materialized lazily per object
        return None


class MetaAttribute(MetaFeature):
    """A feature typed by a data type or enumeration."""

    def __init__(self, name, type_, lower=0, upper=1, default=None, **kw):
        if isinstance(type_, MetaClass):
            raise MetamodelError(
                f"attribute {name!r} cannot be typed by a metaclass; use a reference"
            )
        super().__init__(name, type_, lower, upper, **kw)
        self.default = default

    def default_value(self):
        if self.many:
            return None
        if self.default is not None:
            return self.default
        return None


class MetaReference(MetaFeature):
    """A feature typed by a metaclass, optionally containing or bidirectional."""

    def __init__(self, name, type_, lower=0, upper=1, containment=False, **kw):
        if not isinstance(type_, MetaClass):
            raise MetamodelError(f"reference {name!r} must be typed by a metaclass")
        super().__init__(name, type_, lower, upper, **kw)
        self.containment = containment
        self.opposite: Optional[MetaReference] = None

    def set_opposite(self, other: "MetaReference") -> None:
        """Declare ``other`` as the inverse end of this reference.

        Both ends are linked; containment on both ends is rejected, as is
        re-linking an already-paired reference to a different opposite.
        """
        if not isinstance(other, MetaReference):
            raise MetamodelError("opposite must be a MetaReference")
        if self.opposite is not None and self.opposite is not other:
            raise MetamodelError(f"reference {self.qualified_name} already has an opposite")
        if other.opposite is not None and other.opposite is not self:
            raise MetamodelError(f"reference {other.qualified_name} already has an opposite")
        if self.containment and other.containment:
            raise MetamodelError("both ends of an opposite pair cannot be containment")
        self.opposite = other
        other.opposite = self


class MetaClass(MetaClassifier):
    """A metaclass: named type with features, inheritance, and instances.

    Calling a metaclass creates a dynamic instance::

        person = MetaClass("Person", package=pkg)
        person.add_attribute("name", STRING)
        p = person(name="Ada")
    """

    def __init__(
        self,
        name: str,
        package: Optional[MetaPackage] = None,
        superclasses: Iterable["MetaClass"] = (),
        abstract: bool = False,
    ):
        super().__init__(name)
        self.abstract = abstract
        self._superclasses: list[MetaClass] = []
        self._own_features: dict[str, MetaFeature] = {}
        for sup in superclasses:
            self.add_superclass(sup)
        if package is not None:
            package.add_classifier(self)

    # -- inheritance --------------------------------------------------------

    @property
    def superclasses(self) -> tuple:
        return tuple(self._superclasses)

    def add_superclass(self, sup: "MetaClass") -> None:
        if not isinstance(sup, MetaClass):
            raise MetamodelError(f"superclass of {self.name} must be a MetaClass")
        if sup is self or self in sup.all_superclasses():
            raise MetamodelError(f"inheritance cycle involving {self.name}")
        if sup not in self._superclasses:
            self._superclasses.append(sup)

    def all_superclasses(self) -> list:
        """Transitive superclasses, nearest first, without duplicates."""
        seen: list[MetaClass] = []
        stack = list(self._superclasses)
        while stack:
            cur = stack.pop(0)
            if cur not in seen:
                seen.append(cur)
                stack.extend(cur._superclasses)
        return seen

    def conforms_to(self, other: "MetaClass") -> bool:
        """True when instances of ``self`` are acceptable where ``other`` is expected."""
        return other is self or other in self.all_superclasses()

    # -- features ------------------------------------------------------------

    @property
    def own_features(self) -> tuple:
        return tuple(self._own_features.values())

    def _check_fresh_feature_name(self, name: str) -> None:
        if name in self.all_features():
            raise MetamodelError(
                f"metaclass {self.qualified_name} already has a feature {name!r}"
            )

    def add_feature(self, feature: MetaFeature) -> MetaFeature:
        self._check_fresh_feature_name(feature.name)
        self._own_features[feature.name] = feature
        feature._owner = self
        return feature

    def add_attribute(self, name, type_, lower=0, upper=1, default=None, **kw) -> MetaAttribute:
        return self.add_feature(MetaAttribute(name, type_, lower, upper, default, **kw))

    def add_reference(
        self, name, type_, lower=0, upper=1, containment=False, opposite=None, **kw
    ) -> MetaReference:
        ref = MetaReference(name, type_, lower, upper, containment, **kw)
        self.add_feature(ref)
        if opposite is not None:
            ref.set_opposite(opposite)
        return ref

    def all_features(self) -> dict:
        """Name → feature map including inherited features.

        A feature declared on a subclass shadows a same-named inherited one
        (the kernel forbids creating such shadows, but merged metamodels may
        contain them; nearest definition wins).
        """
        merged: dict[str, MetaFeature] = {}
        for sup in reversed(self.all_superclasses()):
            for f in sup._own_features.values():
                merged[f.name] = f
        merged.update(self._own_features)
        return merged

    def feature(self, name: str) -> MetaFeature:
        feats = self.all_features()
        try:
            return feats[name]
        except KeyError:
            raise MetamodelError(
                f"metaclass {self.qualified_name} has no feature {name!r}"
            ) from None

    def has_feature(self, name: str) -> bool:
        return name in self.all_features()

    def references(self) -> Iterator[MetaReference]:
        for f in self.all_features().values():
            if isinstance(f, MetaReference):
                yield f

    def containment_references(self) -> Iterator[MetaReference]:
        for r in self.references():
            if r.containment:
                yield r

    # -- instantiation -------------------------------------------------------

    def is_instance(self, value) -> bool:
        from repro.metamodel.instances import MObject

        return isinstance(value, MObject) and value.meta_class.conforms_to(self)

    def __call__(self, **kwargs):
        """Instantiate this metaclass; keyword arguments initialize features."""
        from repro.metamodel.instances import MObject

        if self.abstract:
            raise MetamodelError(f"cannot instantiate abstract metaclass {self.qualified_name}")
        obj = MObject(self)
        for key, value in kwargs.items():
            feature = self.feature(key)
            if feature.many:
                obj.get(key).extend(value)
            else:
                obj.set(key, value)
        return obj
