"""Generic aspect for the logging concern.

The built aspect records ``(event, Class.operation)`` tuples in its own
``records`` list — inspectable by tests and by the precedence experiment,
which reads interleavings of log events against other aspects' effects.
"""

from __future__ import annotations

import fnmatch

from repro.aop.aspect import Aspect
from repro.core.aspect import GenericAspect
from repro.concerns.logging_concern.transformation import SIGNATURE


def build(parameters, services) -> Aspect:
    """GA(logging) factory — invoked with Si and the middleware services."""
    patterns = list(parameters["log_patterns"])
    level = parameters.get("level", "info")
    aspect = Aspect("A_logging", "records entry/exit of matched operations")
    aspect.records = []  # inspectable sink
    if not patterns:
        return aspect

    def _matches(jp):
        return any(fnmatch.fnmatchcase(jp.signature, p) for p in patterns)

    @aspect.before("call(*.*)")
    def log_entry(jp):
        if _matches(jp):
            aspect.records.append((level, "enter", jp.signature))

    @aspect.after("call(*.*)")
    def log_exit(jp):
        if _matches(jp):
            outcome = "raise" if jp.exception is not None else "return"
            aspect.records.append((level, outcome, jp.signature))

    return aspect


GENERIC_ASPECT = GenericAspect(
    "A_logging",
    SIGNATURE,
    build,
    factory_ref="repro.concerns.logging_concern.aspect:build",
    description="GA(logging): entry/exit recording for matched operations.",
)

from repro.concerns.logging_concern.transformation import TRANSFORMATION  # noqa: E402

TRANSFORMATION.associate_aspect(GENERIC_ASPECT)
