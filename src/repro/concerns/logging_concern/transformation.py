"""Generic model transformation for the logging concern."""

from __future__ import annotations

import fnmatch

from repro.core.concern import Concern
from repro.core.parameters import ParameterSignature
from repro.core.transformation import GenericTransformation
from repro.uml.model import classes_of
from repro.uml.profiles import apply_stereotype

CONCERN = Concern(
    "logging",
    "Record entry/exit of selected operations.",
    viewpoint="Class.allInstances()->select(c | c.operations->notEmpty())",
)

SIGNATURE = ParameterSignature()
SIGNATURE.declare(
    "log_patterns",
    type=str,
    many=True,
    description="fnmatch patterns over qualified Class.operation names",
)
SIGNATURE.declare(
    "level",
    type=str,
    required=False,
    default="info",
    choices=("debug", "info", "warning"),
    description="log level recorded on the stereotype",
)


def _matched_operations(ctx):
    patterns = ctx.require_param("log_patterns")
    for cls in classes_of(ctx.model):
        for operation in cls.operations:
            qualified = f"{cls.name}.{operation.name}"
            if any(fnmatch.fnmatchcase(qualified, p) for p in patterns):
                yield cls, operation


TRANSFORMATION = GenericTransformation(
    "T_logging",
    CONCERN,
    SIGNATURE,
    description="GMT(logging): mark operations <<Logged>>.",
)

TRANSFORMATION.precondition(
    "patterns-present",
    "log_patterns->notEmpty()",
    "at least one pattern must be configured",
)

TRANSFORMATION.postcondition(
    "something-logged",
    "Class.allInstances()->collect(c | c.operations)"
    "->exists(o | o.stereotypes->exists(s | s.name = 'Logged'))",
    "the configured patterns must match at least one operation",
)


@TRANSFORMATION.rule("mark-logged", "stereotype the matched operations")
def _mark_logged(ctx):
    level = ctx.require_param("level")
    for cls, operation in _matched_operations(ctx):
        app = apply_stereotype(operation, "Logged", level=level)
        ctx.record(sources=[cls, operation], targets=[app], note="Logged")
