"""Extension concern — call logging (observation only).

Not one of the paper's three example concerns, but a fourth dimension that
exercises the machinery cheaply: its transformation only marks operations
``<<Logged>>`` (no structural refinement), and its aspect records call
events.  Used by the workflow and precedence experiments.
"""

from repro.concerns.logging_concern.transformation import (
    CONCERN,
    SIGNATURE,
    TRANSFORMATION,
)
from repro.concerns.logging_concern.aspect import GENERIC_ASPECT, build

__all__ = ["CONCERN", "SIGNATURE", "TRANSFORMATION", "GENERIC_ASPECT", "build"]
