"""Generic aspect for the transactions concern.

The built aspect wraps each operation named in ``Si`` in a transaction:
begin (joining any enclosing transaction), enlist every touched instance
of a configured *state class* (write lock + before-image snapshot),
proceed, commit — or roll every enlisted object back when the body raises.

Join semantics matter: a transactional ``transfer`` that calls
transactional ``withdraw`` and ``deposit`` commits exactly once, at the
``transfer`` boundary, so a failing ``deposit`` undoes the already-
executed ``withdraw`` — the observable behaviour the semantic-coupling
experiment (E9) measures.  Without ``Si`` a generic aspect knows neither
*which* operations bound transactions nor *which objects' state* must be
snapshot; both arrive from the model-level configuration.
"""

from __future__ import annotations

from repro.aop.aspect import Aspect
from repro.core.aspect import GenericAspect
from repro.concerns.transactions.transformation import SIGNATURE


def build(parameters, services) -> Aspect:
    """GA(C2) factory — invoked with Si and the middleware services."""
    transactional_ops = list(parameters["transactional_ops"])
    state_classes = set(parameters["state_classes"])
    manager = services.transactions
    aspect = Aspect(
        "A_transactions",
        "atomic execution with rollback for the operations named in Si",
    )
    if not transactional_ops:
        return aspect

    def _enlist_state(jp):
        candidates = [jp.target, *jp.args, *jp.kwargs.values()]
        for value in candidates:
            if type(value).__name__ in state_classes:
                manager.enlist_object(value)

    pointcut = " || ".join(f"call({name})" for name in transactional_ops)

    @aspect.around(pointcut)
    def transactional(inv):
        jp = inv.join_point
        with manager.transaction():
            _enlist_state(jp)
            return inv.proceed()

    return aspect


GENERIC_ASPECT = GenericAspect(
    "A_transactions",
    SIGNATURE,
    build,
    factory_ref="repro.concerns.transactions.aspect:build",
    description="GA(C2): transaction demarcation and state enlistment from Si.",
)

from repro.concerns.transactions.transformation import TRANSFORMATION  # noqa: E402

TRANSFORMATION.associate_aspect(GENERIC_ASPECT)
