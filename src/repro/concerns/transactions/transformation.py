"""Generic model transformation for the transactions concern.

Parameters (Pik):

* ``transactional_ops`` — qualified ``Class.operation`` names that must
  execute atomically;
* ``state_classes`` — the classes whose instances form the transactional
  state (enlisted and snapshot for rollback).  This is the application
  semantics Kienzle & Guerraoui showed a generic transactional aspect
  cannot know — here it arrives through ``Si``;
* ``isolation`` — recorded on the ``<<Transactional>>`` stereotype.

Model refinement: stereotype the selected operations, add the transaction-
manager broker to the ``middleware`` package, and add a ``uses``
dependency from each owning class to the broker.
"""

from __future__ import annotations

from repro.core.concern import Concern
from repro.core.parameters import ParameterSignature
from repro.core.transformation import GenericTransformation
from repro.uml.metamodel import UML
from repro.uml.model import add_class, add_operation, add_package, classes_of
from repro.uml.profiles import apply_stereotype

CONCERN = Concern(
    "transactions",
    "Execute selected operations atomically with rollback on failure.",
    viewpoint=(
        "Class.allInstances()->collect(c | c.operations)"
        "->select(o | transactional_ops->includes("
        "o.oclContainer().name.concat('.').concat(o.name)))"
    ),
)

SIGNATURE = ParameterSignature()
SIGNATURE.declare(
    "transactional_ops",
    type=str,
    many=True,
    description="qualified Class.operation names to make atomic",
)
SIGNATURE.declare(
    "state_classes",
    type=str,
    many=True,
    description="classes whose instances are transactional state",
)
SIGNATURE.declare(
    "isolation",
    type=str,
    required=False,
    default="serializable",
    choices=("serializable", "read-committed"),
    description="isolation level recorded on the stereotype",
)


def _middleware_package(ctx):
    for element in ctx.model.ownedElements:
        if element.isinstance_of(UML.Package) and element.name == "middleware":
            return element
    pkg = add_package(ctx.model, "middleware")
    ctx.record(sources=[ctx.model], targets=[pkg], note="middleware package")
    return pkg


def _matched_operations(ctx):
    wanted = set(ctx.require_param("transactional_ops"))
    for cls in classes_of(ctx.model):
        for operation in cls.operations:
            if f"{cls.name}.{operation.name}" in wanted:
                yield cls, operation


TRANSFORMATION = GenericTransformation(
    "T_transactions",
    CONCERN,
    SIGNATURE,
    description="GMT(C2): transactional stereotypes + transaction-manager broker.",
)

TRANSFORMATION.precondition(
    "operations-exist",
    "transactional_ops->forAll(n | Class.allInstances()->exists(c | "
    "c.operations->exists(o | c.name.concat('.').concat(o.name) = n)))",
    "every configured Class.operation must exist in the model",
)
TRANSFORMATION.precondition(
    "state-classes-exist",
    "state_classes->forAll(n | Class.allInstances()->exists(c | c.name = n))",
    "every configured state class must exist in the model",
)
TRANSFORMATION.precondition(
    "not-already-transactional",
    "Class.allInstances()->collect(c | c.operations)"
    "->select(o | transactional_ops->includes("
    "o.oclContainer().name.concat('.').concat(o.name)))"
    "->forAll(o | o.stereotypes->forAll(s | s.name <> 'Transactional'))",
    "an operation may be made transactional only once",
)

TRANSFORMATION.postcondition(
    "all-ops-marked",
    "Class.allInstances()->collect(c | c.operations)"
    "->select(o | transactional_ops->includes("
    "o.oclContainer().name.concat('.').concat(o.name)))"
    "->forAll(o | o.stereotypes->exists(s | s.name = 'Transactional'))",
)
TRANSFORMATION.postcondition(
    "broker-exists",
    "Class.allInstances()->exists(c | c.name = 'TransactionManagerBroker')",
)


@TRANSFORMATION.rule("mark-transactional", "stereotype the selected operations")
def _mark_operations(ctx):
    isolation = ctx.require_param("isolation")
    for cls, operation in _matched_operations(ctx):
        app = apply_stereotype(operation, "Transactional", isolation=isolation)
        ctx.record(sources=[cls, operation], targets=[app], note="Transactional")


@TRANSFORMATION.rule("mark-state-classes", "stereotype the state classes")
def _mark_state(ctx):
    for name in ctx.require_param("state_classes"):
        for cls in classes_of(ctx.model):
            if cls.name == name:
                app = apply_stereotype(cls, "TransactionalState")
                ctx.record(sources=[cls], targets=[app], note="state class")


@TRANSFORMATION.rule("ensure-broker", "transaction-manager broker class")
def _ensure_broker(ctx):
    pkg = _middleware_package(ctx)
    for element in pkg.ownedElements:
        if (
            element.isinstance_of(UML.Class)
            and element.name == "TransactionManagerBroker"
        ):
            return
    broker = add_class(pkg, "TransactionManagerBroker")
    add_operation(broker, "begin")
    add_operation(broker, "commit")
    add_operation(broker, "rollback")
    apply_stereotype(broker, "Generated", by="transactions")
    ctx.record(sources=[pkg], targets=[broker], note="transaction broker")


@TRANSFORMATION.rule("wire-dependencies", "owning classes use the broker")
def _wire_dependencies(ctx):
    pkg = _middleware_package(ctx)
    broker = next(
        element
        for element in pkg.ownedElements
        if element.isinstance_of(UML.Class)
        and element.name == "TransactionManagerBroker"
    )
    seen = set()
    for cls, _op in _matched_operations(ctx):
        if id(cls) in seen:
            continue
        seen.add(id(cls))
        dependency = UML.Dependency(name=f"{cls.name}_uses_txm")
        dependency.client = cls
        dependency.supplier = broker
        dependency.kind = "uses"
        pkg.ownedElements.append(dependency)
        ctx.record(sources=[cls], targets=[dependency], note="uses broker")
