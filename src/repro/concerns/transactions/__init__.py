"""C2 — the transactions concern (GMT + GA pair)."""

from repro.concerns.transactions.transformation import (
    CONCERN,
    SIGNATURE,
    TRANSFORMATION,
)
from repro.concerns.transactions.aspect import GENERIC_ASPECT, build

__all__ = ["CONCERN", "SIGNATURE", "TRANSFORMATION", "GENERIC_ASPECT", "build"]
