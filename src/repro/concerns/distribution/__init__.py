"""C1 — the distribution concern (GMT + GA pair)."""

from repro.concerns.distribution.transformation import (
    CONCERN,
    SIGNATURE,
    TRANSFORMATION,
)
from repro.concerns.distribution.aspect import GENERIC_ASPECT, build

__all__ = ["CONCERN", "SIGNATURE", "TRANSFORMATION", "GENERIC_ASPECT", "build"]
