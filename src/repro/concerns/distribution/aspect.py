"""Generic aspect for the distribution concern.

Specialized with the *same* ``Si`` as the model transformation, the built
aspect routes every call on a server class through the ORB: arguments are
marshalled (pass-by-value), the bus charges latency and byte statistics,
and instances are auto-registered as servants and bound under
``<registry_prefix>/<ClassName>/<n>`` on first use.

The server-side re-entry guard: when the ORB dispatches the request to the
servant, the advice sees ``__dispatching__`` in the call context and
proceeds locally instead of looping through the bus forever.
"""

from __future__ import annotations

import itertools

from repro.aop.aspect import Aspect
from repro.core.aspect import GenericAspect
from repro.concerns.distribution.transformation import SIGNATURE

_instance_counter = itertools.count(1)


def build(parameters, services) -> Aspect:
    """GA(C1) factory — invoked with Si and the middleware services."""
    server_classes = list(parameters["server_classes"])
    registry_prefix = parameters["registry_prefix"]
    orb = services.orb
    aspect = Aspect(
        "A_distribution",
        "routes server-class calls through the ORB (marshalling, latency)",
    )
    if not server_classes:
        return aspect

    def _ensure_registered(obj):
        ref = orb.ref_of(obj)
        if ref is None:
            binding = (
                f"{registry_prefix}/{type(obj).__name__}/{next(_instance_counter)}"
            )
            ref = orb.register(obj, name=binding)
        return ref

    pointcut = " || ".join(f"call({name}.*)" for name in server_classes)

    @aspect.around(pointcut)
    def remote_call(inv):
        jp = inv.join_point
        if orb.current_context().get("__dispatching__"):
            return inv.proceed()  # server side: run the real method locally
        ref = _ensure_registered(jp.target)
        # arguments that are themselves server objects travel by reference
        for arg in jp.args:
            if type(arg).__name__ in server_classes:
                _ensure_registered(arg)
        for value in jp.kwargs.values():
            if type(value).__name__ in server_classes:
                _ensure_registered(value)
        return orb.invoke(ref, jp.member_name, jp.args, jp.kwargs)

    return aspect


GENERIC_ASPECT = GenericAspect(
    "A_distribution",
    SIGNATURE,
    build,
    factory_ref="repro.concerns.distribution.aspect:build",
    description="GA(C1): ORB routing for the classes named in Si.",
)

# the 1–1 association of Fig. 1
from repro.concerns.distribution.transformation import TRANSFORMATION  # noqa: E402

TRANSFORMATION.associate_aspect(GENERIC_ASPECT)
