"""Generic model transformation for the distribution concern.

Parameters (Pik):

* ``server_classes`` — the application classes to expose remotely; this is
  exactly the application-specific knowledge a generic "distribute
  everything" aspect could never infer (the semantic-coupling problem);
* ``registry_prefix`` — naming-service path prefix for the servant
  bindings.

Model refinement (the concern space is the selected classes):

1. mark each server class ``<<Remote>>`` with its registry binding name;
2. add a ``middleware`` package with a ``<<Generated>>`` broker class
   representing the naming service;
3. derive a remote interface ``I<Class>`` carrying the class's public
   operations;
4. derive a client proxy ``<Class>_Proxy`` realizing the interface, with a
   ``delegates`` dependency on the original class.
"""

from __future__ import annotations

from repro.core.concern import Concern
from repro.core.parameters import ParameterSignature
from repro.core.transformation import GenericTransformation
from repro.uml.metamodel import UML
from repro.uml.model import (
    add_class,
    add_interface,
    add_operation,
    add_package,
    add_parameter,
    classes_of,
)
from repro.uml.profiles import apply_stereotype

CONCERN = Concern(
    "distribution",
    "Expose selected application classes through the object request broker.",
    viewpoint=(
        "Class.allInstances()->select(c | server_classes->includes(c.name))"
    ),
)

SIGNATURE = ParameterSignature()
SIGNATURE.declare(
    "server_classes",
    type=str,
    many=True,
    description="names of the application classes to expose remotely",
)
SIGNATURE.declare(
    "registry_prefix",
    type=str,
    required=False,
    default="services",
    description="naming-service path prefix for servant bindings",
)


def _model_class(ctx, name):
    for cls in classes_of(ctx.model):
        if cls.name == name:
            return cls
    return None


def _middleware_package(ctx):
    for element in ctx.model.ownedElements:
        if element.isinstance_of(UML.Package) and element.name == "middleware":
            return element
    pkg = add_package(ctx.model, "middleware")
    ctx.record(sources=[ctx.model], targets=[pkg], note="middleware package")
    return pkg


def _copy_public_operations(source_class, target, ctx):
    created = []
    for operation in source_class.operations:
        if operation.visibility != "public":
            continue
        copy = add_operation(target, operation.name, visibility="public")
        for parameter in operation.parameters:
            add_parameter(copy, parameter.name, parameter.type, parameter.direction)
        created.append(copy)
    return created


TRANSFORMATION = GenericTransformation(
    "T_distribution",
    CONCERN,
    SIGNATURE,
    description="GMT(C1): remote interfaces, proxies, and registry bindings.",
)

TRANSFORMATION.precondition(
    "server-classes-exist",
    "server_classes->forAll(n | Class.allInstances()->exists(c | c.name = n))",
    "every configured server class must exist in the model",
)
TRANSFORMATION.precondition(
    "not-already-remote",
    "Class.allInstances()->select(c | server_classes->includes(c.name))"
    "->forAll(c | c.stereotypes->forAll(s | s.name <> 'Remote'))",
    "a class may be distributed only once",
)
TRANSFORMATION.precondition(
    "servers-have-operations",
    "Class.allInstances()->select(c | server_classes->includes(c.name))"
    "->forAll(c | c.operations->notEmpty())",
    "a remote class without operations is useless",
)

TRANSFORMATION.postcondition(
    "all-marked-remote",
    "Class.allInstances()->select(c | server_classes->includes(c.name))"
    "->forAll(c | c.stereotypes->exists(s | s.name = 'Remote'))",
)
TRANSFORMATION.postcondition(
    "remote-interfaces-exist",
    "server_classes->forAll(n | Interface.allInstances()"
    "->exists(i | i.name = 'I'.concat(n)))",
)
TRANSFORMATION.postcondition(
    "proxies-exist",
    "server_classes->forAll(n | Class.allInstances()"
    "->exists(p | p.name = n.concat('_Proxy')))",
)


@TRANSFORMATION.rule("mark-remote", "stereotype the server classes")
def _mark_remote(ctx):
    prefix = ctx.require_param("registry_prefix")
    for name in ctx.require_param("server_classes"):
        cls = _model_class(ctx, name)
        app = apply_stereotype(
            cls, "Remote", registryName=f"{prefix}/{name}"
        )
        ctx.record(sources=[cls], targets=[app], note="Remote stereotype")


@TRANSFORMATION.rule("ensure-broker", "naming-service broker class")
def _ensure_broker(ctx):
    pkg = _middleware_package(ctx)
    for element in pkg.ownedElements:
        if element.isinstance_of(UML.Class) and element.name == "NamingServiceBroker":
            return
    broker = add_class(pkg, "NamingServiceBroker")
    add_operation(broker, "bind")
    add_operation(broker, "resolve")
    apply_stereotype(broker, "Generated", by="distribution")
    ctx.record(sources=[pkg], targets=[broker], note="naming broker")


@TRANSFORMATION.rule("derive-remote-interfaces", "I<Class> per server class")
def _derive_interfaces(ctx):
    pkg = _middleware_package(ctx)
    for name in ctx.require_param("server_classes"):
        cls = _model_class(ctx, name)
        interface = add_interface(pkg, f"I{name}")
        apply_stereotype(interface, "Generated", by="distribution")
        _copy_public_operations(cls, interface, ctx)
        cls.interfaces.append(interface)
        ctx.record(sources=[cls], targets=[interface], note="remote interface")


@TRANSFORMATION.rule("derive-proxies", "<Class>_Proxy per server class")
def _derive_proxies(ctx):
    pkg = _middleware_package(ctx)
    for name in ctx.require_param("server_classes"):
        cls = _model_class(ctx, name)
        proxy = add_class(pkg, f"{name}_Proxy")
        apply_stereotype(proxy, "Proxy", target=name)
        apply_stereotype(proxy, "Generated", by="distribution")
        _copy_public_operations(cls, proxy, ctx)
        dependency = UML.Dependency(name=f"{name}_Proxy_delegates")
        dependency.client = proxy
        dependency.supplier = cls
        dependency.kind = "delegates"
        pkg.ownedElements.append(dependency)
        ctx.record(sources=[cls], targets=[proxy, dependency], note="client proxy")
