"""Generic aspect for the security concern.

The built aspect installs the role grants from ``Si`` into the middleware
ACL and guards every protected operation with a before-advice that

1. pulls the caller's bearer token from the ORB call context
   (``orb.call_context(credentials=token)`` on the client side — the same
   channel the distribution concern propagates implicitly), and
2. asks the :class:`~repro.middleware.security.AccessController` whether
   the authenticated principal may ``invoke`` ``Class.operation``.

Authentication failures and denials surface as the library's security
exceptions and are written to the audit log.
"""

from __future__ import annotations

from repro.aop.aspect import Aspect
from repro.core.aspect import GenericAspect
from repro.concerns.security.transformation import SIGNATURE


def build(parameters, services) -> Aspect:
    """GA(C3) factory — invoked with Si and the middleware services."""
    protected_ops = list(parameters["protected_ops"])
    role_grants = parameters.get("role_grants") or {}
    aspect = Aspect(
        "A_security",
        "authenticate + authorize callers of the operations named in Si",
    )
    if not protected_ops:
        return aspect

    for role, patterns in role_grants.items():
        for pattern in patterns:
            services.acl.allow_role(role, pattern, ["invoke"])

    pointcut = " || ".join(f"call({name})" for name in protected_ops)

    @aspect.before(pointcut)
    def check_access(jp):
        token = services.orb.current_context().get("credentials")
        services.access.check_access(token, jp.signature, "invoke")

    return aspect


GENERIC_ASPECT = GenericAspect(
    "A_security",
    SIGNATURE,
    build,
    factory_ref="repro.concerns.security.aspect:build",
    description="GA(C3): ACL installation and access checks from Si.",
)

from repro.concerns.security.transformation import TRANSFORMATION  # noqa: E402

TRANSFORMATION.associate_aspect(GENERIC_ASPECT)
