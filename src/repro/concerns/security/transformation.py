"""Generic model transformation for the security concern.

Parameters (Pik):

* ``protected_ops`` — qualified ``Class.operation`` names requiring an
  authenticated, authorized caller;
* ``role_grants`` — role → list of ``Class.operation`` patterns
  (``fnmatch`` wildcards) that role may invoke;
* ``audit_denials`` — whether denials must be audited (recorded on the
  stereotype; the audit log itself lives in the middleware).

Model refinement: stereotype the protected operations ``<<Secured>>``
(tag: the action checked at run time), stereotype their owning classes
``<<AccessControlled>>``, and add the access-controller broker.
"""

from __future__ import annotations

from repro.core.concern import Concern
from repro.core.parameters import ParameterSignature
from repro.core.transformation import GenericTransformation
from repro.uml.metamodel import UML
from repro.uml.model import add_class, add_operation, add_package, classes_of
from repro.uml.profiles import apply_stereotype

CONCERN = Concern(
    "security",
    "Authenticate and authorize callers of selected operations.",
    viewpoint=(
        "Class.allInstances()->collect(c | c.operations)"
        "->select(o | protected_ops->includes("
        "o.oclContainer().name.concat('.').concat(o.name)))"
    ),
)

SIGNATURE = ParameterSignature()
SIGNATURE.declare(
    "protected_ops",
    type=str,
    many=True,
    description="qualified Class.operation names requiring authorization",
)
SIGNATURE.declare(
    "role_grants",
    type=dict,
    required=False,
    default=None,
    description="role name -> list of Class.operation fnmatch patterns",
)
SIGNATURE.declare(
    "audit_denials",
    type=bool,
    required=False,
    default=True,
    description="record denied accesses in the audit log",
)


def _middleware_package(ctx):
    for element in ctx.model.ownedElements:
        if element.isinstance_of(UML.Package) and element.name == "middleware":
            return element
    pkg = add_package(ctx.model, "middleware")
    ctx.record(sources=[ctx.model], targets=[pkg], note="middleware package")
    return pkg


def _matched_operations(ctx):
    wanted = set(ctx.require_param("protected_ops"))
    for cls in classes_of(ctx.model):
        for operation in cls.operations:
            if f"{cls.name}.{operation.name}" in wanted:
                yield cls, operation


TRANSFORMATION = GenericTransformation(
    "T_security",
    CONCERN,
    SIGNATURE,
    description="GMT(C3): secured stereotypes + access-controller broker.",
)

TRANSFORMATION.precondition(
    "operations-exist",
    "protected_ops->forAll(n | Class.allInstances()->exists(c | "
    "c.operations->exists(o | c.name.concat('.').concat(o.name) = n)))",
    "every configured Class.operation must exist in the model",
)
TRANSFORMATION.precondition(
    "not-already-secured",
    "Class.allInstances()->collect(c | c.operations)"
    "->select(o | protected_ops->includes("
    "o.oclContainer().name.concat('.').concat(o.name)))"
    "->forAll(o | o.stereotypes->forAll(s | s.name <> 'Secured'))",
    "an operation may be secured only once",
)

TRANSFORMATION.postcondition(
    "all-ops-secured",
    "Class.allInstances()->collect(c | c.operations)"
    "->select(o | protected_ops->includes("
    "o.oclContainer().name.concat('.').concat(o.name)))"
    "->forAll(o | o.stereotypes->exists(s | s.name = 'Secured'))",
)
TRANSFORMATION.postcondition(
    "broker-exists",
    "Class.allInstances()->exists(c | c.name = 'AccessControllerBroker')",
)


@TRANSFORMATION.rule("mark-secured", "stereotype the protected operations")
def _mark_operations(ctx):
    audit = ctx.require_param("audit_denials")
    for cls, operation in _matched_operations(ctx):
        app = apply_stereotype(
            operation,
            "Secured",
            action="invoke",
            resource=f"{cls.name}.{operation.name}",
            audit=bool(audit),
        )
        ctx.record(sources=[cls, operation], targets=[app], note="Secured")
        cls_app = apply_stereotype(cls, "AccessControlled")
        ctx.record(sources=[cls], targets=[cls_app], note="AccessControlled")


@TRANSFORMATION.rule("ensure-broker", "access-controller broker class")
def _ensure_broker(ctx):
    pkg = _middleware_package(ctx)
    for element in pkg.ownedElements:
        if (
            element.isinstance_of(UML.Class)
            and element.name == "AccessControllerBroker"
        ):
            return
    broker = add_class(pkg, "AccessControllerBroker")
    add_operation(broker, "authenticate")
    add_operation(broker, "checkAccess")
    apply_stereotype(broker, "Generated", by="security")
    ctx.record(sources=[pkg], targets=[broker], note="access broker")
