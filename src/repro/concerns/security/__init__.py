"""C3 — the security concern (GMT + GA pair)."""

from repro.concerns.security.transformation import (
    CONCERN,
    SIGNATURE,
    TRANSFORMATION,
)
from repro.concerns.security.aspect import GENERIC_ASPECT, build

__all__ = ["CONCERN", "SIGNATURE", "TRANSFORMATION", "GENERIC_ASPECT", "build"]
