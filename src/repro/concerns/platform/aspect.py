"""Generic aspects for the platform mappings — intentionally inert.

Platform projection informs the *code generator*, not the runtime: there
is no cross-cutting behaviour to weave.  The aspects exist so the Fig. 1
square stays total (every GMT has its GA) and so the aspect generator can
still emit a (trivially empty) concrete artifact for auditability.
"""

from __future__ import annotations

from repro.aop.aspect import Aspect
from repro.core.aspect import GenericAspect
from repro.concerns.platform.transformation import (
    ABSTRACTION,
    ABSTRACTION_SIGNATURE,
    PROJECTION,
    SIGNATURE,
)


def build(parameters, services) -> Aspect:
    """GA(platform) factory — a deliberately empty aspect."""
    return Aspect(
        "A_platform",
        f"no runtime behaviour (platform {parameters.get('platform')!r} "
        "is realized by the code generator)",
    )


def build_abstraction(parameters, services) -> Aspect:
    """GA(platform-abstraction) factory — a deliberately empty aspect."""
    return Aspect("A_platform_abstraction", "no runtime behaviour")


GENERIC_ASPECT = GenericAspect(
    "A_platform",
    SIGNATURE,
    build,
    factory_ref="repro.concerns.platform.aspect:build",
    description="GA(platform): inert; projection is a generator concern.",
)
PROJECTION.associate_aspect(GENERIC_ASPECT)

ABSTRACTION_ASPECT = GenericAspect(
    "A_platform_abstraction",
    ABSTRACTION_SIGNATURE,
    build_abstraction,
    factory_ref="repro.concerns.platform.aspect:build_abstraction",
    description="GA(platform-abstraction): inert.",
)
ABSTRACTION.associate_aspect(ABSTRACTION_ASPECT)
