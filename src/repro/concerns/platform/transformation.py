"""PIM→PSM projection and PSM→PIM abstraction transformations."""

from __future__ import annotations

from repro.core.concern import Concern
from repro.core.parameters import ParameterSignature
from repro.core.transformation import GenericTransformation
from repro.transform.mappings import (
    MappingKind,
    mark_platform_specific,
    unmark_platform_specific,
)
from repro.uml.metamodel import UML
from repro.uml.model import classes_of, owned_elements
from repro.uml.profiles import apply_stereotype, remove_stereotype

#: UML primitive name → Python platform type
PYTHON_TYPE_MAP = {
    "String": "str",
    "Integer": "int",
    "Real": "float",
    "Boolean": "bool",
}

CONCERN = Concern(
    "platform",
    "Project the PIM onto the python-inprocess execution platform.",
    viewpoint="Class.allInstances()",
)

SIGNATURE = ParameterSignature()
SIGNATURE.declare(
    "platform",
    type=str,
    required=False,
    default="python-inprocess",
    choices=("python-inprocess",),
    description="target platform identifier",
)
SIGNATURE.declare(
    "module_name",
    type=str,
    required=False,
    default="generated_app",
    description="Python module the classes are generated into",
)

PROJECTION = GenericTransformation(
    "T_platform_projection",
    CONCERN,
    SIGNATURE,
    description="PIM-to-PSM projection for the python-inprocess platform.",
    mapping_kind=MappingKind.PIM_TO_PSM,
)

PROJECTION.precondition(
    "has-classes",
    "Class.allInstances()->notEmpty()",
    "an empty model has nothing to project",
)
PROJECTION.postcondition(
    "all-classes-marked",
    "Class.allInstances()->forAll(c | "
    "c.stereotypes->exists(s | s.name = 'PythonClass'))",
)


@PROJECTION.rule("mark-root", "stamp the model root as platform-specific")
def _mark_root(ctx):
    mark_platform_specific(ctx.model, ctx.require_param("platform"))
    ctx.record(targets=[ctx.model], note="PlatformSpecific")


@PROJECTION.rule("map-classes", "bind every class to its Python module")
def _map_classes(ctx):
    module_name = ctx.require_param("module_name")
    for cls in classes_of(ctx.model):
        app = apply_stereotype(cls, "PythonClass", module=module_name)
        ctx.record(sources=[cls], targets=[app], note="PythonClass")


@PROJECTION.rule("map-primitives", "bind primitive datatypes to Python types")
def _map_primitives(ctx):
    for element in owned_elements(ctx.model):
        if not element.isinstance_of(UML.DataType):
            continue
        if element.isinstance_of(UML.Enumeration):
            mapped = "enum.Enum"
        else:
            mapped = PYTHON_TYPE_MAP.get(element.name)
            if mapped is None:
                continue
        app = apply_stereotype(element, "PythonType", maps_to=mapped)
        ctx.record(sources=[element], targets=[app], note="PythonType")


ABSTRACTION_CONCERN = Concern(
    "platform-abstraction",
    "Recover the PIM by stripping every platform-specific mark.",
)

ABSTRACTION_SIGNATURE = ParameterSignature()

ABSTRACTION = GenericTransformation(
    "T_platform_abstraction",
    ABSTRACTION_CONCERN,
    ABSTRACTION_SIGNATURE,
    description="PSM-to-PIM abstraction: remove platform marks.",
    mapping_kind=MappingKind.PSM_TO_PIM,
)

ABSTRACTION.postcondition(
    "no-platform-marks-left",
    "Class.allInstances()->forAll(c | "
    "c.stereotypes->forAll(s | s.name <> 'PythonClass'))",
)


@ABSTRACTION.rule("strip-marks", "remove every platform stereotype")
def _strip_marks(ctx):
    unmark_platform_specific(ctx.model)
    for element in owned_elements(ctx.model):
        if element.meta_class.has_feature("stereotypes"):
            remove_stereotype(element, "PythonClass")
            remove_stereotype(element, "PythonType")
    ctx.record(targets=[ctx.model], note="platform marks removed")
