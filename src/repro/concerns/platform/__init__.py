"""Platform projection/abstraction — the PIM↔PSM mappings of §2.

Two transformation pairs:

* ``platform`` (PIM→PSM): projects the model onto the **python-inprocess**
  platform — marks the root ``<<PlatformSpecific>>``, every class
  ``<<PythonClass>>`` (tagged with its module), and every primitive
  datatype ``<<PythonType>>`` (tagged with the Python type it maps to);
* ``platform-abstraction`` (PSM→PIM): strips every platform mark,
  recovering the PIM ("abstract models of existing implementations into
  platform-independent models").

Both have deliberately empty generic aspects: platform projection has no
cross-cutting *runtime* behaviour — it informs the code generator.
"""

from repro.concerns.platform.transformation import (
    ABSTRACTION,
    CONCERN,
    PROJECTION,
    SIGNATURE,
)
from repro.concerns.platform.aspect import build, build_abstraction

__all__ = [
    "CONCERN",
    "SIGNATURE",
    "PROJECTION",
    "ABSTRACTION",
    "build",
    "build_abstraction",
]
