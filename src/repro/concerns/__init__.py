"""S11 — The built-in concern library.

The paper's running example names three middleware concerns: distribution
(C1), transactions (C2), and security (C3).  Each sub-package provides the
full Fig. 1 square for one concern:

* a :class:`~repro.core.concern.Concern` with an OCL viewpoint,
* one shared :class:`~repro.core.parameters.ParameterSignature` (the Pik),
* the generic model transformation (GMT) with OCL pre/postconditions and
  refinement rules, and
* the 1–1 associated generic aspect (GA) whose factory builds the runtime
  behaviour against the middleware substrate (S10).

A fourth concern, ``logging``, exercises the machinery with a minimal
observation-only aspect (useful for workflow and precedence experiments).
"""

from repro.concerns import (
    distribution,
    logging_concern,
    platform,
    security,
    transactions,
)


def register_builtin_concerns(registry) -> None:
    """Register every built-in GMT (with its GA) into ``registry``."""
    registry.register(distribution.TRANSFORMATION)
    registry.register(transactions.TRANSFORMATION)
    registry.register(security.TRANSFORMATION)
    registry.register(logging_concern.TRANSFORMATION)
    registry.register(platform.PROJECTION)
    registry.register(platform.ABSTRACTION)


__all__ = [
    "distribution",
    "transactions",
    "security",
    "logging_concern",
    "platform",
    "register_builtin_concerns",
]
