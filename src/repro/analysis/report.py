"""Findings and text rendering for the concurrency analyzer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass
class Finding:
    """One analyzer result: a cycle, a guard violation, drift, …"""

    kind: str
    severity: str  # "error" | "warning"
    message: str
    file: str = ""
    line: int = 0

    @property
    def location(self) -> str:
        if not self.file:
            return ""
        return f"{self.file}:{self.line}" if self.line else self.file

    def render(self) -> str:
        prefix = f"{self.location}: " if self.file else ""
        return f"{prefix}{self.severity}: [{self.kind}] {self.message}"


def render_findings(findings: Sequence[Finding]) -> str:
    """Human-readable findings list, errors first, with a summary line."""
    ordered = sorted(
        findings,
        key=lambda f: (f.severity != "error", f.kind, f.file, f.line),
    )
    lines = [finding.render() for finding in ordered]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        lines.append("")
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_graph(graph, hierarchy: Optional[Iterable[Iterable[str]]] = None) -> str:
    """The acquired-while-holding graph as sorted text.

    Try-acquire-only edges are tagged ``[try]``; each edge shows one
    observation site.  When a hierarchy (layers, outer first) is given
    the lock list is grouped by layer first.
    """
    lines: List[str] = []
    nodes = graph.nodes()
    if hierarchy:
        lines.append("hierarchy (outer -> inner):")
        for rank, layer in enumerate(hierarchy):
            names = ", ".join(sorted(layer))
            lines.append(f"  [{rank}] {names}")
        ranked = {name for layer in hierarchy for name in layer}
        loose = sorted(nodes - ranked)
        if loose:
            lines.append(f"  [unranked] {', '.join(loose)}")
        lines.append("")
    lines.append(f"acquired-while-holding edges ({len(graph.edges)}):")
    for (src, dst), edge in sorted(graph.edges.items()):
        tag = " [try]" if edge.trylock else ""
        site = ""
        if edge.sites:
            path, lineno, via = edge.sites[0]
            site = f"  ({via} at {path}:{lineno})"
        lines.append(f"  {src} -> {dst}{tag}{site}")
    if graph.self_nests:
        lines.append("")
        lines.append("same-name nesting observed (needs self_nest_ok):")
        for name in sorted(graph.self_nests):
            lines.append(f"  {name}")
    return "\n".join(lines)
