"""Interprocedural lock-order graph from the scanned IR.

The evaluator abstract-interprets every function's op list with a
*held-lock tuple*: entering a ``with lock:`` region or a successful
``.acquire()`` appends the lock, and each acquisition adds
``held -> acquired`` edges to the :class:`LockGraph`.  Calls are
followed through the index (``self`` methods, typed attribute chains,
module functions), locks passed as arguments are bound to the callee's
parameters, and helpers that *return* locks (``with
self._servant_lock(key):``) resolve through the callee's return specs —
so an acquisition three calls deep still lands its edge.

Two passes share one memo:

1. **every** function evaluated as a root with guard checking off —
   edge completeness does not depend on knowing the entry points;
2. the *entry points* (public methods, public module functions, and
   methods referenced as callbacks — thread targets, installed guards)
   re-evaluated with guard checking on, so a ``# guarded_by:`` field
   mutated on any path from an entry point without its lock held is a
   finding, while ``_locked``-suffix helpers evaluated out of context
   are not.

Acquisitions whose ``blocking``/``timeout`` arguments are not the
literal ``True`` default are carried as *try-acquire* edges: they are
real ordering observations but cannot wait, so cycle detection (in
:mod:`repro.analysis.baseline`) ignores them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.lockscan import (
    Acquire,
    Call,
    CallSpec,
    ClassInfo,
    FuncInfo,
    Index,
    Mutate,
    Op,
    Region,
    Release,
    scan_paths,
)
from repro.analysis.report import Finding

#: (file path, line, function qualname) — where an edge was observed
Site = Tuple[str, int, str]

_MAX_CANDIDATES = 6
_MAX_DEPTH = 48
_MAX_SITES = 4


@dataclass
class Edge:
    src: str
    dst: str
    #: True only while *every* observation of this edge is a try-acquire
    trylock: bool = True
    sites: List[Site] = field(default_factory=list)

    def observe(self, trylock: bool, site: Site) -> None:
        self.trylock = self.trylock and trylock
        if len(self.sites) < _MAX_SITES and site not in self.sites:
            self.sites.append(site)


@dataclass
class LockGraph:
    """Acquired-while-holding edges between lock hierarchy names."""

    edges: Dict[Tuple[str, str], Edge] = field(default_factory=dict)
    #: lock id -> sites where same-name re-entry was statically visible
    self_nests: Dict[str, List[Site]] = field(default_factory=dict)

    def add(self, src: str, dst: str, trylock: bool, site: Site) -> None:
        edge = self.edges.get((src, dst))
        if edge is None:
            edge = self.edges[(src, dst)] = Edge(src, dst)
        edge.observe(trylock, site)

    def blocking_pairs(self) -> Set[Tuple[str, str]]:
        """Edges that can actually wait (cycle-relevant)."""
        return {pair for pair, edge in self.edges.items() if not edge.trylock}

    def all_pairs(self) -> Set[Tuple[str, str]]:
        return set(self.edges)

    def nodes(self) -> Set[str]:
        found: Set[str] = set()
        for src, dst in self.edges:
            found.add(src)
            found.add(dst)
        return found


@dataclass
class Analysis:
    index: Index
    graph: LockGraph
    findings: List[Finding]


#: parameter name -> resolved lock ids it is bound to at a call site
Env = Dict[str, FrozenSet[str]]


class _Interp:
    def __init__(self, index: Index):
        self.index = index
        self.graph = LockGraph()
        self.findings: List[Finding] = []
        self._finding_keys: Set[Tuple] = set()
        self._memo: Set[Tuple] = set()
        self._active: Set[str] = set()

    # -- driving -------------------------------------------------------------

    def run(self) -> Tuple[LockGraph, List[Finding]]:
        for func in self._all_functions():
            self._eval(func, held=(), env={}, check_guards=False, depth=0)
        for func in self._guard_roots():
            self._eval(func, held=(), env={}, check_guards=True, depth=0)
        return self.graph, self.findings

    def _all_functions(self) -> List[FuncInfo]:
        found: List[FuncInfo] = []
        for info in self.index.modules.values():
            found.extend(info.functions.values())
            for cls in info.classes.values():
                found.extend(cls.methods.values())
        return found

    def _guard_roots(self) -> List[FuncInfo]:
        roots: Dict[str, FuncInfo] = {}

        def is_entry(name: str) -> bool:
            if not name.startswith("_"):
                return True
            return name in ("__call__", "__enter__", "__exit__")

        for info in self.index.modules.values():
            for name, func in info.functions.items():
                if is_entry(name):
                    roots[func.qualname] = func
            for cls in info.classes.values():
                for name, func in cls.methods.items():
                    if is_entry(name):
                        roots[func.qualname] = func
            for cls_name, meth in info.callback_refs:
                cls = self.index.resolve_class(info.module, cls_name)
                if cls is None:
                    continue
                func = self.index.lookup_method(cls, meth)
                if func is not None:
                    roots[func.qualname] = func
        return list(roots.values())

    # -- evaluation ----------------------------------------------------------

    def _eval(
        self,
        func: FuncInfo,
        held: Tuple[str, ...],
        env: Env,
        check_guards: bool,
        depth: int,
    ) -> None:
        if depth > _MAX_DEPTH or func.qualname in self._active:
            return
        env_key = tuple(sorted((k, tuple(sorted(v))) for k, v in env.items()))
        key = (func.qualname, frozenset(held), env_key, check_guards)
        if key in self._memo:
            return
        self._memo.add(key)
        self._active.add(func.qualname)
        try:
            self._walk(func, func.ops, held, env, check_guards, depth)
        finally:
            self._active.discard(func.qualname)

    def _walk(
        self,
        func: FuncInfo,
        ops: Sequence[Op],
        held: Tuple[str, ...],
        env: Env,
        check_guards: bool,
        depth: int,
    ) -> Tuple[str, ...]:
        for op in ops:
            if isinstance(op, Region):
                ids = self._resolve(op.lock, func, env, depth)
                inner = held
                for lock_id in ids:
                    inner = self._acquire(
                        func, op.lineno, lock_id, inner, trylock=False,
                        edge_base=held,
                    )
                self._walk(func, op.body, inner, env, check_guards, depth)
            elif isinstance(op, Acquire):
                for lock_id in self._resolve(op.lock, func, env, depth):
                    held = self._acquire(
                        func, op.lineno, lock_id, held, trylock=op.trylock,
                    )
            elif isinstance(op, Release):
                for lock_id in self._resolve(op.lock, func, env, depth):
                    held = self._drop(held, lock_id)
            elif isinstance(op, Mutate):
                if check_guards:
                    self._check_guard(func, op, held)
            elif isinstance(op, Call):
                self._follow_call(func, op, held, env, check_guards, depth)
        return held

    def _acquire(
        self,
        func: FuncInfo,
        lineno: int,
        lock_id: str,
        held: Tuple[str, ...],
        trylock: bool,
        edge_base: Optional[Tuple[str, ...]] = None,
    ) -> Tuple[str, ...]:
        site: Site = (func.path, lineno, func.qualname)
        decl = self.index.locks.get(lock_id)
        reentrant = decl.reentrant if decl is not None else True
        if lock_id in held:
            if reentrant:
                self.graph.self_nests.setdefault(lock_id, [])
                nests = self.graph.self_nests[lock_id]
                if len(nests) < _MAX_SITES and site not in nests:
                    nests.append(site)
            elif not trylock:
                self._finding(
                    "self-deadlock", "error",
                    f"non-reentrant lock {lock_id} acquired while already "
                    f"held on this path (via {func.qualname})",
                    func.path, lineno,
                )
            return held
        base = held if edge_base is None else edge_base
        for holder in base:
            if holder != lock_id:
                self.graph.add(holder, lock_id, trylock, site)
        return held + (lock_id,)

    @staticmethod
    def _drop(held: Tuple[str, ...], lock_id: str) -> Tuple[str, ...]:
        for index in range(len(held) - 1, -1, -1):
            if held[index] == lock_id:
                return held[:index] + held[index + 1:]
        return held

    # -- guards --------------------------------------------------------------

    def _check_guard(self, func: FuncInfo, op: Mutate, held: Tuple[str, ...]) -> None:
        if func.cls is None or func.name == "__init__":
            return
        cls = self.index.classes.get(f"{func.module}.{func.cls}")
        if cls is None:
            return
        guard = self.index.lookup_guard(cls, op.attr)
        if guard is None:
            return
        guard_attr, decl_cls = guard
        decl = self.index.lookup_lock_attr(cls, guard_attr)
        if decl is None:
            family = self.index.lookup_family(cls, guard_attr)
            if family is None:
                self._finding(
                    "bad-guard", "warning",
                    f"{decl_cls.name}.{op.attr} is guarded_by {guard_attr!r}, "
                    "which is not a known lock attribute",
                    func.path, op.lineno,
                )
                return
            lock_id = family
        else:
            lock_id = decl.lock_id
        if lock_id not in held:
            self._finding(
                "guarded-by", "error",
                f"{decl_cls.name}.{op.attr} mutated ({op.desc}) in "
                f"{func.qualname} without holding {lock_id}",
                func.path, op.lineno,
            )

    def _finding(
        self, kind: str, severity: str, message: str, path: str, lineno: int
    ) -> None:
        key = (kind, path, lineno, message)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(Finding(kind, severity, message, path, lineno))

    # -- calls ---------------------------------------------------------------

    def _follow_call(
        self,
        func: FuncInfo,
        op: Call,
        held: Tuple[str, ...],
        env: Env,
        check_guards: bool,
        depth: int,
    ) -> None:
        callees = self._resolve_callees(op.spec, func, depth)
        if not callees or len(callees) > _MAX_CANDIDATES:
            return
        for callee in callees:
            callee_env: Env = {}
            for index, spec in op.pos_locks.items():
                ids = self._resolve(spec, func, env, depth)
                if ids and index < len(callee.params):
                    callee_env[callee.params[index]] = frozenset(ids)
            for name, spec in op.kw_locks.items():
                ids = self._resolve(spec, func, env, depth)
                if ids and name in callee.params:
                    callee_env[name] = frozenset(ids)
            self._eval(callee, held, callee_env, check_guards, depth + 1)

    def _class_of(self, func: FuncInfo) -> Optional[ClassInfo]:
        if func.cls is None:
            return None
        return self.index.classes.get(f"{func.module}.{func.cls}")

    def _resolve_callees(
        self, spec: CallSpec, func: FuncInfo, depth: int
    ) -> List[FuncInfo]:
        if spec is None or depth > _MAX_DEPTH:
            return []
        index = self.index
        if spec.kind == "self":
            cls = self._class_of(func)
            if cls is None:
                return []
            method = index.lookup_method(cls, spec.name)
            return [method] if method is not None else []
        if spec.kind in ("selfpath", "localpath"):
            if spec.kind == "selfpath":
                start = self._class_of(func)
                classes = [start] if start is not None else []
            else:
                classes = [
                    cls
                    for cls in (
                        index.resolve_class(func.module, name)
                        for name in spec.types
                    )
                    if cls is not None
                ]
            for attr in spec.path:
                step: Dict[str, ClassInfo] = {}
                for cls in classes:
                    for nxt in index.lookup_attr_types(cls, attr):
                        step[nxt.qualname] = nxt
                classes = list(step.values())
                if not classes or len(classes) > _MAX_CANDIDATES:
                    return []
            found: Dict[str, FuncInfo] = {}
            for cls in classes:
                method = index.lookup_method(cls, spec.name)
                if method is not None:
                    found[method.qualname] = method
            return list(found.values())
        if spec.kind == "clsname":
            cls = index.resolve_class(func.module, spec.types[0])
            if cls is None:
                return []
            method = index.lookup_method(cls, spec.name)
            return [method] if method is not None else []
        if spec.kind == "func":
            info = index.modules.get(func.module)
            if info is None:
                return []
            if spec.name in info.functions:
                return [info.functions[spec.name]]
            target = info.imports.get(spec.name)
            if target is not None:
                mod, _, fname = target.rpartition(".")
                other = index.modules.get(mod)
                if other is not None and fname in other.functions:
                    return [other.functions[fname]]
            return []
        return []

    def _resolve(
        self, spec, func: FuncInfo, env: Env, depth: int
    ) -> List[str]:
        """LockSpec -> sorted lock ids, following helper returns."""
        if spec is None or depth > _MAX_DEPTH:
            return []
        kind = spec[0]
        if kind == "concrete":
            return [spec[1]]
        if kind == "attr":
            cls = self._class_of(func)
            if cls is None:
                return []
            decl = self.index.lookup_lock_attr(cls, spec[1])
            if decl is not None:
                return [decl.lock_id]
            family = self.index.lookup_family(cls, spec[1])
            return [family] if family is not None else []
        if kind == "param":
            return sorted(env.get(spec[1], ()))
        if kind == "call":
            found: Set[str] = set()
            for callee in self._resolve_callees(spec[1], func, depth)[
                :_MAX_CANDIDATES
            ]:
                for ret in callee.returns:
                    found.update(self._resolve(ret, callee, {}, depth + 1))
            return sorted(found)
        return []


def analyze(index: Index) -> Analysis:
    """Evaluate a scanned index into a lock graph plus findings."""
    graph, findings = _Interp(index).run()
    return Analysis(index=index, graph=graph, findings=findings)


def analyze_paths(paths: Sequence[str]) -> Analysis:
    """Scan ``paths`` and evaluate them in one step."""
    return analyze(scan_paths(paths))
