"""Checked-in lock-hierarchy baseline and drift detection.

The baseline file (``tools/concurrency_baseline.json``) holds three
things:

* ``hierarchy`` — the intended lock layers, outer first.  An edge that
  acquires an *outer* lock while holding an *inner* one contradicts the
  documented order and is flagged even if it does not (yet) close a
  cycle.
* ``edges`` — the exact acquired-while-holding edge set of the shipped
  tree.  Any difference — a new edge **or** a stale one — is drift: the
  graph changed, so the baseline (and the reviewer) must acknowledge
  it.  Regenerate with ``tools/check_concurrency.py --update-baseline``.
* ``self_nest_ok`` — lock names allowed to nest within themselves on
  one thread with *different* objects (the per-servant lock family,
  justified by a key-ordering argument in docs/CONCURRENCY.md).

Cycle detection runs on blocking edges only: a try-acquire
(``acquire(blocking=False)`` / any ``timeout=``) cannot wait, so it can
never complete a deadlock, and the failover path relies on exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.analysis.lockgraph import LockGraph
from repro.analysis.report import Finding


@dataclass
class Baseline:
    hierarchy: List[List[str]] = field(default_factory=list)
    edges: Set[Tuple[str, str]] = field(default_factory=set)
    self_nest_ok: Set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            hierarchy=[list(layer) for layer in data.get("hierarchy", [])],
            edges={(src, dst) for src, dst in data.get("edges", [])},
            self_nest_ok=set(data.get("self_nest_ok", [])),
        )

    def save(self, path) -> None:
        data = {
            "hierarchy": [sorted(layer) for layer in self.hierarchy],
            "edges": sorted(list(pair) for pair in self.edges),
            "self_nest_ok": sorted(self.self_nest_ok),
        }
        Path(path).write_text(
            json.dumps(data, indent=2) + "\n", encoding="utf-8"
        )

    def ranks(self) -> Dict[str, int]:
        return {
            name: rank
            for rank, layer in enumerate(self.hierarchy)
            for name in layer
        }

    def updated(self, graph: LockGraph) -> "Baseline":
        """This baseline with its edge set replaced by the graph's."""
        return Baseline(
            hierarchy=[list(layer) for layer in self.hierarchy],
            edges=graph.all_pairs(),
            self_nest_ok=set(self.self_nest_ok),
        )


def find_cycles(graph: LockGraph) -> List[List[str]]:
    """Simple cycles among blocking edges, each rotated to a stable form."""
    digraph = nx.DiGraph()
    digraph.add_edges_from(graph.blocking_pairs())
    cycles = []
    for cycle in nx.simple_cycles(digraph):
        pivot = cycle.index(min(cycle))
        cycles.append(cycle[pivot:] + cycle[:pivot])
    return sorted(cycles)


def _edge_site(graph: LockGraph, src: str, dst: str) -> str:
    edge = graph.edges.get((src, dst))
    if edge is None or not edge.sites:
        return ""
    path, lineno, via = edge.sites[0]
    return f" ({via} at {path}:{lineno})"


def check_cycles(graph: LockGraph) -> List[Finding]:
    findings = []
    for cycle in find_cycles(graph):
        arrows = " -> ".join(cycle + [cycle[0]])
        sites = "".join(
            _edge_site(graph, a, b)
            for a, b in zip(cycle, cycle[1:] + [cycle[0]])
        )
        findings.append(Finding(
            "lock-cycle", "error",
            f"potential deadlock cycle: {arrows}{sites}",
        ))
    return findings


def check_baseline(graph: LockGraph, baseline: Baseline) -> List[Finding]:
    """Cycles, hierarchy-rank violations, and edge-set drift."""
    findings = check_cycles(graph)
    ranks = baseline.ranks()
    observed = graph.all_pairs()
    for src, dst in sorted(observed - baseline.edges):
        findings.append(Finding(
            "unbaselined-edge", "error",
            f"new lock-order edge {src} -> {dst} is not in the baseline"
            f"{_edge_site(graph, src, dst)}; review it against the "
            "hierarchy, then run --update-baseline",
        ))
    for src, dst in sorted(baseline.edges - observed):
        findings.append(Finding(
            "stale-baseline", "error",
            f"baseline edge {src} -> {dst} is no longer observed; "
            "run --update-baseline",
        ))
    for src, dst in sorted(observed):
        edge = graph.edges[(src, dst)]
        if edge.trylock:
            continue
        if src in ranks and dst in ranks and ranks[src] > ranks[dst]:
            findings.append(Finding(
                "hierarchy-violation", "error",
                f"{dst} (layer {ranks[dst]}) must be acquired before "
                f"{src} (layer {ranks[src]}), but {src} -> {dst} was "
                f"observed{_edge_site(graph, src, dst)}",
            ))
    for name in sorted(graph.self_nests):
        if name not in baseline.self_nest_ok:
            path, lineno, via = graph.self_nests[name][0]
            findings.append(Finding(
                "self-nest", "error",
                f"{name} nests within itself (via {via}) but is not in "
                "self_nest_ok",
                path, lineno,
            ))
    return findings


def check_witness_edges(
    edges: Iterable[Tuple[str, str]],
    baseline: Baseline,
    self_nests: Sequence[str] = (),
) -> List[Finding]:
    """Validate runtime-observed edges against the hierarchy ranks.

    The witness sees a subset of the static edge set (only exercised
    paths) plus dynamic-only edges (callbacks through servant objects),
    so drift is not checked — only rank order and self-nest allowance.
    """
    findings = []
    ranks = baseline.ranks()
    for src, dst in sorted(set(edges)):
        if src == dst:
            continue
        if src in ranks and dst in ranks and ranks[src] > ranks[dst]:
            findings.append(Finding(
                "hierarchy-violation", "error",
                f"witness observed {src} -> {dst}, contradicting the "
                f"hierarchy (layer {ranks[src]} holds layer {ranks[dst]})",
            ))
    for name in sorted(set(self_nests)):
        if name not in baseline.self_nest_ok:
            findings.append(Finding(
                "self-nest", "error",
                f"witness observed {name} nesting within itself but it "
                "is not in self_nest_ok",
            ))
    return findings
