"""AST scan: turn Python sources into a lock-aware intermediate form.

The scanner finds every lock a class owns, how functions acquire them,
which fields are declared ``guarded_by`` a lock, and how calls thread
locks through helpers.  It is deliberately syntactic — no imports are
executed — and recognizes the project's conventions:

* ``self._x = threading.Lock() / RLock() / Condition()`` declares an
  *anonymous* lock attribute, canonically named ``module.Class._x``;
* ``self._x = named_lock("layer.name")`` (and ``named_rlock`` /
  ``named_condition``, from :mod:`repro.analysis.witness`) declares a
  *named* lock — the name is its identity in the hierarchy;
* ``threading.Condition(self._mutex)`` / ``named_condition(n, lock=…)``
  aliases the condition to the mutex it wraps (one region, two handles);
* ``self._locks.setdefault(key, named_rlock("family"))`` marks
  ``self._locks`` as a *lock family* attribute — every value it yields
  (via ``get``/``setdefault``/subscript) is one lock class in the graph;
* a ``# guarded_by: _lock`` comment on a field's assignment line (or a
  class-level ``GUARDED_BY = {"_field": "_lock"}`` map) declares that
  the field may only be **mutated** while ``self._lock`` is held;
* ``lock.acquire(blocking=…)`` with anything but a literal ``True`` is
  a *try-acquire*: it cannot wait, so it cannot close a deadlock cycle.

Receivers are typed through ordinary annotations — ``self.federation:
"Federation" = federation``, annotated ``__init__`` parameters, ``->
Node`` return annotations, and ``Dict[str, Node]`` value types — so the
interprocedural pass can follow ``self.federation.naming.swap(…)``
chains without executing anything.

Limitations (documented in docs/CONCURRENCY.md): nested ``def`` bodies
are not walked (lambdas are), and a context manager that holds a lock
across its ``yield`` must be expressed as ``with lock:`` at the call
site to be seen as a region.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

_LOCK_FACTORIES = {
    "Lock": ("lock", False),
    "RLock": ("rlock", True),
    "Condition": ("condition", True),
}
_NAMED_FACTORIES = {
    "named_lock": ("lock", False),
    "named_rlock": ("rlock", True),
    "named_condition": ("condition", True),
}
#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear", "sort", "reverse",
}
_GUARDED_RE = re.compile(r"#\s*guarded_by:\s*([A-Za-z_][A-Za-z0-9_]*)")


# ---------------------------------------------------------------------------
# the intermediate form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockDecl:
    """One lock attribute of one class."""

    lock_id: str
    kind: str            # "lock" | "rlock" | "condition"
    reentrant: bool
    module: str
    cls: str
    attr: str
    lineno: int


# A LockSpec is how IR refers to a lock before interprocedural
# resolution: ("attr", name) for self.<name>, ("param", name),
# ("concrete", lock_id), or ("call", CallSpec) for
# `with self._helper(key):`.
LockSpec = Tuple


@dataclass(frozen=True)
class CallSpec:
    """One call site's callee shape, resolved later against the index.

    ``kind`` selects how the receiver is found: ``"self"`` (a method of
    the enclosing class), ``"selfpath"`` (follow ``path`` through typed
    attributes starting at self), ``"localpath"`` (start from a local
    variable with candidate ``types``), ``"clsname"`` (explicit class
    receiver), or ``"func"`` (module-level function).
    """

    kind: str
    name: str
    path: Tuple[str, ...] = ()
    types: Tuple[str, ...] = ()


@dataclass
class Op:
    lineno: int


@dataclass
class Region(Op):
    lock: LockSpec = None
    trylock: bool = False
    body: List[Op] = field(default_factory=list)


@dataclass
class Acquire(Op):
    lock: LockSpec = None
    trylock: bool = False


@dataclass
class Release(Op):
    lock: LockSpec = None


@dataclass
class Call(Op):
    spec: CallSpec = None
    #: positional index -> LockSpec for arguments that are locks
    pos_locks: Dict[int, LockSpec] = field(default_factory=dict)
    #: keyword name -> LockSpec
    kw_locks: Dict[str, LockSpec] = field(default_factory=dict)


@dataclass
class Mutate(Op):
    attr: str = ""
    desc: str = ""


@dataclass
class FuncInfo:
    module: str
    cls: Optional[str]
    name: str
    params: List[str] = field(default_factory=list)
    ops: List[Op] = field(default_factory=list)
    #: lock specs appearing in `return <lock>` statements
    returns: List[LockSpec] = field(default_factory=list)
    #: candidate return type names (from `-> Node` annotations)
    return_types: Tuple[str, ...] = ()
    lineno: int = 0
    path: str = ""

    @property
    def qualname(self) -> str:
        if self.cls:
            return f"{self.module}.{self.cls}.{self.name}"
        return f"{self.module}.{self.name}"


@dataclass
class ClassInfo:
    module: str
    name: str
    bases: List[str] = field(default_factory=list)      # local names
    lock_attrs: Dict[str, LockDecl] = field(default_factory=dict)
    alias_attrs: Dict[str, str] = field(default_factory=dict)
    family_attrs: Dict[str, str] = field(default_factory=dict)
    #: attribute -> candidate class local names (from assignments and
    #: annotations)
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: attribute -> value types of a Dict[...] container attribute
    attr_value_types: Dict[str, Set[str]] = field(default_factory=dict)
    guards: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, FuncInfo] = field(default_factory=dict)
    lineno: int = 0

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    module: str
    path: str
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FuncInfo] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)
    #: (class local name or None, method name) referenced as callbacks
    callback_refs: Set[Tuple[Optional[str], str]] = field(default_factory=set)


@dataclass
class Index:
    """Everything the interprocedural pass needs, keyed for lookup."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: class qualname -> ClassInfo
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: lock id -> representative LockDecl (first wins; named locks share)
    locks: Dict[str, LockDecl] = field(default_factory=dict)

    def resolve_class(self, module: str, local_name: str) -> Optional[ClassInfo]:
        info = self.modules.get(module)
        if info is not None:
            if local_name in info.classes:
                return info.classes[local_name]
            target = info.imports.get(local_name)
            if target is not None and target in self.classes:
                return self.classes[target]
        # unqualified fallback: unique class of that name anywhere
        candidates = [
            cls for cls in self.classes.values() if cls.name == local_name
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """The class plus its analyzable bases, breadth-first."""
        seen = [cls]
        queue = list(cls.bases)
        visited = {cls.qualname}
        while queue:
            base_name = queue.pop(0)
            base = self.resolve_class(cls.module, base_name)
            if base is None or base.qualname in visited:
                continue
            visited.add(base.qualname)
            seen.append(base)
            queue.extend(base.bases)
        return seen

    def lookup_method(self, cls: ClassInfo, name: str) -> Optional[FuncInfo]:
        for klass in self.mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def lookup_lock_attr(self, cls: ClassInfo, attr: str) -> Optional[LockDecl]:
        for klass in self.mro(cls):
            seen: Set[str] = set()
            name = attr
            while name in klass.alias_attrs and name not in seen:
                seen.add(name)
                name = klass.alias_attrs[name]
            if name in klass.lock_attrs:
                return klass.lock_attrs[name]
        return None

    def lookup_family(self, cls: ClassInfo, attr: str) -> Optional[str]:
        for klass in self.mro(cls):
            if attr in klass.family_attrs:
                return klass.family_attrs[attr]
        return None

    def lookup_guard(self, cls: ClassInfo, attr: str) -> Optional[Tuple[str, ClassInfo]]:
        for klass in self.mro(cls):
            if attr in klass.guards:
                return klass.guards[attr], klass
        return None

    def lookup_attr_types(self, cls: ClassInfo, attr: str) -> List[ClassInfo]:
        found: Dict[str, ClassInfo] = {}
        for klass in self.mro(cls):
            for local in klass.attr_types.get(attr, ()):
                resolved = self.resolve_class(klass.module, local)
                if resolved is not None:
                    found[resolved.qualname] = resolved
        return list(found.values())

    def lookup_attr_value_types(self, cls: ClassInfo, attr: str) -> List[ClassInfo]:
        found: Dict[str, ClassInfo] = {}
        for klass in self.mro(cls):
            for local in klass.attr_value_types.get(attr, ()):
                resolved = self.resolve_class(klass.module, local)
                if resolved is not None:
                    found[resolved.qualname] = resolved
        return list(found.values())


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_threading_factory(node: ast.Call) -> Optional[Tuple[str, bool]]:
    """(kind, reentrant) when the call creates a stdlib lock primitive."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading" and func.attr in _LOCK_FACTORIES:
            return _LOCK_FACTORIES[func.attr]
    return None


def _is_named_factory(node: ast.Call) -> Optional[Tuple[str, bool, Optional[str]]]:
    """(kind, reentrant, literal name) for named_lock/rlock/condition."""
    name = _call_name(node)
    if name not in _NAMED_FACTORIES:
        return None
    kind, reentrant = _NAMED_FACTORIES[name]
    literal = None
    if node.args and isinstance(node.args[0], ast.Constant):
        if isinstance(node.args[0].value, str):
            literal = node.args[0].value
    return kind, reentrant, literal


def _condition_wrapped_lock(node: ast.Call) -> Optional[ast.expr]:
    """The lock expression a Condition was built over, if any."""
    named = _is_named_factory(node)
    if named is not None and named[0] == "condition":
        for kw in node.keywords:
            if kw.arg == "lock":
                return kw.value
        if len(node.args) > 1:
            return node.args[1]
        return None
    stdlib = _is_threading_factory(node)
    if stdlib is not None and stdlib[0] == "condition" and node.args:
        return node.args[0]
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _type_names(annotation: Optional[ast.expr]) -> Tuple[str, ...]:
    """Candidate class names from a simple annotation expression."""
    if annotation is None:
        return ()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip().strip("'\"")
        return (name,) if name.isidentifier() else ()
    if isinstance(annotation, ast.Name):
        return (annotation.id,)
    if isinstance(annotation, ast.Attribute):
        return (annotation.attr,)
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        base_name = (
            base.id if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name == "Optional":
            return _type_names(annotation.slice)
        return ()
    return ()


def _dict_value_types(annotation: Optional[ast.expr]) -> Tuple[str, ...]:
    """Value-type names from a ``Dict[k, V]`` annotation."""
    if not isinstance(annotation, ast.Subscript):
        return ()
    base = annotation.value
    base_name = (
        base.id if isinstance(base, ast.Name)
        else base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in ("Dict", "dict"):
        return ()
    if isinstance(annotation.slice, ast.Tuple) and len(annotation.slice.elts) == 2:
        return _type_names(annotation.slice.elts[1])
    return ()


def _looks_like_class(name: Optional[str]) -> bool:
    return bool(name) and name.lstrip("_")[:1].isupper()


# ---------------------------------------------------------------------------
# scanning one module
# ---------------------------------------------------------------------------


class _ModuleScanner:
    def __init__(self, module: str, path: Path, source: str):
        self.info = ModuleInfo(module=module, path=str(path))
        self.source_lines = source.splitlines()
        self.tree = ast.parse(source)

    def scan(self) -> ModuleInfo:
        for node in self.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._scan_import(node)
            elif isinstance(node, ast.ClassDef):
                self._scan_class(node)
            elif isinstance(node, ast.FunctionDef):
                self.info.functions[node.name] = self._scan_function(node, None)
        return self.info

    def _scan_import(self, node) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                self.info.imports[local] = alias.name
        else:
            if node.module is None or node.level:
                return
            for alias in node.names:
                local = alias.asname or alias.name
                self.info.imports[local] = f"{node.module}.{alias.name}"

    # -- classes -------------------------------------------------------------

    def _scan_class(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(module=self.info.module, name=node.name, lineno=node.lineno)
        for base in node.bases:
            if isinstance(base, ast.Name):
                cls.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                cls.bases.append(base.attr)
        self.info.classes[node.name] = cls
        methods = []
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                methods.append(item)
            elif isinstance(item, ast.Assign):
                self._scan_guard_map(cls, item)
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                self._note_types(cls, item.target.id, item.annotation)
        # pass A: declarations (locks, aliases, families, guards, types)
        for method in methods:
            param_types = {
                arg.arg: _type_names(arg.annotation)
                for arg in method.args.posonlyargs
                + method.args.args
                + method.args.kwonlyargs
                if arg.annotation is not None
            }
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign):
                    self._scan_attr_assign(cls, sub, param_types)
                elif isinstance(sub, ast.AnnAssign):
                    attr = _self_attr(sub.target)
                    if attr is not None:
                        self._note_types(cls, attr, sub.annotation)
                        guard = self._guard_comment(sub.lineno)
                        if guard is not None and attr not in cls.guards:
                            cls.guards[attr] = guard
                elif isinstance(sub, ast.Call):
                    self._scan_family_call(cls, sub)
        # pass B: behaviour
        for method in methods:
            cls.methods[method.name] = self._scan_function(method, cls)

    def _note_types(self, cls: ClassInfo, attr: str, annotation) -> None:
        for name in _type_names(annotation):
            if _looks_like_class(name):
                cls.attr_types.setdefault(attr, set()).add(name)
        for name in _dict_value_types(annotation):
            if _looks_like_class(name):
                cls.attr_value_types.setdefault(attr, set()).add(name)

    def _scan_guard_map(self, cls: ClassInfo, node: ast.Assign) -> None:
        """Class-level ``GUARDED_BY = {"_field": "_lock"}`` maps."""
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "GUARDED_BY":
                if isinstance(node.value, ast.Dict):
                    for key, value in zip(node.value.keys, node.value.values):
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            cls.guards[key.value] = value.value

    def _guard_comment(self, lineno: int) -> Optional[str]:
        if 0 < lineno <= len(self.source_lines):
            match = _GUARDED_RE.search(self.source_lines[lineno - 1])
            if match:
                return match.group(1)
        return None

    def _scan_attr_assign(
        self,
        cls: ClassInfo,
        node: ast.Assign,
        param_types: Dict[str, Tuple[str, ...]],
    ) -> None:
        if len(node.targets) != 1:
            return
        attr = _self_attr(node.targets[0])
        if attr is None:
            return
        guard = self._guard_comment(node.lineno)
        if guard is not None and attr not in cls.guards:
            cls.guards[attr] = guard
        value = node.value
        if isinstance(value, ast.Name) and value.id in param_types:
            for name in param_types[value.id]:
                if _looks_like_class(name):
                    cls.attr_types.setdefault(attr, set()).add(name)
            return
        if isinstance(value, ast.Call):
            named = _is_named_factory(value)
            stdlib = _is_threading_factory(value)
            if named is not None:
                kind, reentrant, literal = named
                wrapped = _condition_wrapped_lock(value)
                wrapped_attr = _self_attr(wrapped) if wrapped is not None else None
                if wrapped_attr is not None:
                    cls.alias_attrs.setdefault(attr, wrapped_attr)
                    return
                lock_id = literal or f"{cls.qualname}.{attr}"
                cls.lock_attrs.setdefault(attr, LockDecl(
                    lock_id, kind, reentrant, cls.module, cls.name, attr,
                    node.lineno,
                ))
                return
            if stdlib is not None:
                kind, reentrant = stdlib
                wrapped = _condition_wrapped_lock(value)
                wrapped_attr = _self_attr(wrapped) if wrapped is not None else None
                if wrapped_attr is not None:
                    cls.alias_attrs.setdefault(attr, wrapped_attr)
                    return
                cls.lock_attrs.setdefault(attr, LockDecl(
                    f"{cls.qualname}.{attr}", kind, reentrant,
                    cls.module, cls.name, attr, node.lineno,
                ))
                return
            callee = _call_name(value)
            if _looks_like_class(callee):
                cls.attr_types.setdefault(attr, set()).add(callee)
            return
        other = _self_attr(value)
        if other is not None and other != attr:
            cls.alias_attrs.setdefault(attr, other)

    def _scan_family_call(self, cls: ClassInfo, node: ast.Call) -> None:
        """``self._locks.setdefault(key, <lock factory>)`` family marks."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "setdefault"):
            return
        attr = _self_attr(func.value)
        if attr is None or len(node.args) < 2:
            return
        default = node.args[1]
        if not isinstance(default, ast.Call):
            return
        named = _is_named_factory(default)
        if named is not None:
            literal = named[2] or f"{cls.qualname}.{attr}[]"
            cls.family_attrs.setdefault(attr, literal)
            return
        if _is_threading_factory(default) is not None:
            cls.family_attrs.setdefault(attr, f"{cls.qualname}.{attr}[]")

    # -- functions -----------------------------------------------------------

    def _scan_function(self, node: ast.FunctionDef, cls: Optional[ClassInfo]) -> FuncInfo:
        func = FuncInfo(
            module=self.info.module,
            cls=cls.name if cls else None,
            name=node.name,
            lineno=node.lineno,
            path=self.info.path,
        )
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        if cls is not None and params and params[0] == "self":
            params = params[1:]
        func.params = params + [a.arg for a in node.args.kwonlyargs]
        func.return_types = tuple(
            n for n in _type_names(node.returns) if _looks_like_class(n)
        )
        builder = _FuncBuilder(self, cls, func)
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            for name in _type_names(arg.annotation):
                if _looks_like_class(name):
                    builder.local_types.setdefault(arg.arg, set()).add(name)
        func.ops = builder.build_block(node.body)
        return func


class _FuncBuilder:
    """Builds one function's op list, tracking local lock bindings."""

    def __init__(self, scanner: _ModuleScanner, cls: Optional[ClassInfo], func: FuncInfo):
        self.scanner = scanner
        self.cls = cls
        self.func = func
        self.local_locks: Dict[str, LockSpec] = {}
        self.local_types: Dict[str, Set[str]] = {}

    # -- lock expression resolution -----------------------------------------

    def resolve_lock(self, node: Optional[ast.expr]) -> Optional[LockSpec]:
        if node is None:
            return None
        attr = _self_attr(node)
        if attr is not None and self.cls is not None:
            if self._is_lockish_attr(attr):
                return ("attr", attr)
            return None
        if isinstance(node, ast.Name):
            if node.id in self.local_locks:
                return self.local_locks[node.id]
            if node.id in self.func.params and node.id not in self.local_types:
                return ("param", node.id)
            return None
        if isinstance(node, ast.Call):
            named = _is_named_factory(node)
            if named is not None and named[2] is not None:
                return ("concrete", named[2])
            # self._locks.get(k) / self._locks.setdefault(k, …) on a
            # family attribute yields that family's lock class
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "get", "setdefault",
            ):
                owner = _self_attr(func.value)
                if owner is not None:
                    family = self._family_of(owner)
                    if family is not None:
                        return ("concrete", family)
            # `with self._servant_lock(key):` — resolved via the callee's
            # return locks during interpretation
            spec = self._call_spec(node)
            if spec is not None and spec.kind in ("self", "selfpath", "localpath"):
                return ("call", spec)
            return None
        if isinstance(node, ast.Subscript):
            owner = _self_attr(node.value)
            if owner is not None:
                family = self._family_of(owner)
                if family is not None:
                    return ("concrete", family)
        return None

    def _is_lockish_attr(self, attr: str) -> bool:
        """Lock-attribute check against this class and same-module bases."""
        classes = self.scanner.info.classes
        stack = [self.cls] if self.cls is not None else []
        visited: Set[str] = set()
        while stack:
            klass = stack.pop()
            if klass is None or klass.name in visited:
                continue
            visited.add(klass.name)
            name = attr
            seen: Set[str] = set()
            while name in klass.alias_attrs and name not in seen:
                seen.add(name)
                name = klass.alias_attrs[name]
            if name in klass.lock_attrs:
                return True
            stack.extend(classes.get(base) for base in klass.bases)
        return False

    def _family_of(self, attr: str) -> Optional[str]:
        classes = self.scanner.info.classes
        stack = [self.cls] if self.cls is not None else []
        visited: Set[str] = set()
        while stack:
            klass = stack.pop()
            if klass is None or klass.name in visited:
                continue
            visited.add(klass.name)
            if attr in klass.family_attrs:
                return klass.family_attrs[attr]
            stack.extend(classes.get(base) for base in klass.bases)
        return None

    # -- call receiver shapes -----------------------------------------------

    def _call_spec(self, node: ast.Call) -> Optional[CallSpec]:
        func = node.func
        if isinstance(func, ast.Name):
            return CallSpec("func", func.id)
        if not isinstance(func, ast.Attribute):
            return None
        # unwind the attribute chain down to its root
        chain: List[str] = []
        probe = func.value
        while isinstance(probe, ast.Attribute):
            chain.append(probe.attr)
            probe = probe.value
        chain.reverse()
        if isinstance(probe, ast.Name):
            if probe.id == "self":
                if not chain:
                    return CallSpec("self", func.attr)
                return CallSpec("selfpath", func.attr, path=tuple(chain))
            if probe.id in self.local_types:
                return CallSpec(
                    "localpath", func.attr, path=tuple(chain),
                    types=tuple(sorted(self.local_types[probe.id])),
                )
            if not chain and _looks_like_class(probe.id):
                return CallSpec("clsname", func.attr, types=(probe.id,))
        return None

    # -- statement walking ---------------------------------------------------

    def build_block(self, stmts: Sequence[ast.stmt]) -> List[Op]:
        ops: List[Op] = []
        for stmt in stmts:
            ops.extend(self.build_stmt(stmt))
        return ops

    def build_stmt(self, stmt: ast.stmt) -> List[Op]:
        if isinstance(stmt, ast.With):
            return self._build_with(stmt)
        if isinstance(stmt, ast.Assign):
            return self._build_assign(stmt)
        if isinstance(stmt, ast.AugAssign):
            ops = self.walk_expr(stmt.value)
            attr = _self_attr(stmt.target)
            if attr is not None:
                ops.append(Mutate(stmt.lineno, attr=attr, desc="augmented assignment"))
            elif isinstance(stmt.target, ast.Subscript):
                owner = _self_attr(stmt.target.value)
                if owner is not None:
                    ops.append(Mutate(stmt.lineno, attr=owner, desc="item update"))
                ops.extend(self.walk_expr(stmt.target.value))
                ops.extend(self.walk_expr(stmt.target.slice))
            return ops
        if isinstance(stmt, ast.Delete):
            ops: List[Op] = []
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is not None:
                    ops.append(Mutate(stmt.lineno, attr=attr, desc="del"))
                elif isinstance(target, ast.Subscript):
                    owner = _self_attr(target.value)
                    if owner is not None:
                        ops.append(Mutate(stmt.lineno, attr=owner, desc="del item"))
                    ops.extend(self.walk_expr(target.value))
                    ops.extend(self.walk_expr(target.slice))
            return ops
        if isinstance(stmt, ast.Expr):
            return self.walk_expr(stmt.value)
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return []
            spec = self.resolve_lock(stmt.value)
            if spec is not None:
                self.func.returns.append(spec)
            return self.walk_expr(stmt.value)
        if isinstance(stmt, (ast.If, ast.While)):
            ops = self.walk_expr(stmt.test)
            ops.extend(self.build_block(stmt.body))
            ops.extend(self.build_block(stmt.orelse))
            return ops
        if isinstance(stmt, ast.For):
            ops = self.walk_expr(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter)
            ops.extend(self.build_block(stmt.body))
            ops.extend(self.build_block(stmt.orelse))
            return ops
        if isinstance(stmt, ast.Try):
            ops = self.build_block(stmt.body)
            for handler in stmt.handlers:
                ops.extend(self.build_block(handler.body))
            ops.extend(self.build_block(stmt.orelse))
            ops.extend(self.build_block(stmt.finalbody))
            return ops
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            ops = []
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    ops.extend(self.walk_expr(child))
            return ops
        if isinstance(stmt, ast.AnnAssign):
            ops = []
            if stmt.value is not None:
                ops.extend(self.walk_expr(stmt.value))
            attr = _self_attr(stmt.target)
            if attr is not None:
                ops.append(Mutate(stmt.lineno, attr=attr, desc="assignment"))
            return ops
        # nested defs/classes, imports, pass, global, …: not walked
        return []

    def _bind_loop_target(self, target: ast.expr, iterable: ast.expr) -> None:
        """Type `for node in self.nodes.values():` loop variables."""
        if not isinstance(iterable, ast.Call):
            return
        func = iterable.func
        if not isinstance(func, ast.Attribute) or func.attr not in ("values", "items"):
            return
        owner = _self_attr(func.value)
        if owner is None or self.cls is None:
            return
        value_types = self.cls.attr_value_types.get(owner)
        if not value_types:
            return
        if func.attr == "values" and isinstance(target, ast.Name):
            self.local_types.setdefault(target.id, set()).update(value_types)
        elif (
            func.attr == "items"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            self.local_types.setdefault(target.elts[1].id, set()).update(value_types)

    def _build_with(self, stmt: ast.With) -> List[Op]:
        ops: List[Op] = []
        regions: List[Region] = []
        for item in stmt.items:
            spec = self.resolve_lock(item.context_expr)
            ops.extend(self.walk_expr(item.context_expr))
            if spec is not None:
                regions.append(Region(stmt.lineno, lock=spec, body=[]))
            if item.optional_vars is not None and isinstance(
                item.optional_vars, ast.Name
            ):
                self.local_locks.pop(item.optional_vars.id, None)
                if spec is not None:
                    self.local_locks[item.optional_vars.id] = spec
        body = self.build_block(stmt.body)
        for region in reversed(regions):
            region.body = body
            body = [region]
        ops.extend(body)
        return ops

    def _build_assign(self, stmt: ast.Assign) -> List[Op]:
        ops = self.walk_expr(stmt.value)
        spec = self.resolve_lock(stmt.value)
        value_types = self._infer_types(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.local_locks.pop(target.id, None)
                self.local_types.pop(target.id, None)
                if spec is not None:
                    self.local_locks[target.id] = spec
                elif value_types:
                    self.local_types[target.id] = set(value_types)
            attr = _self_attr(target)
            if attr is not None:
                ops.append(Mutate(stmt.lineno, attr=attr, desc="assignment"))
            if isinstance(target, ast.Subscript):
                owner = _self_attr(target.value)
                if owner is not None:
                    ops.append(Mutate(stmt.lineno, attr=owner, desc="item assignment"))
                ops.extend(self.walk_expr(target.value))
                ops.extend(self.walk_expr(target.slice))
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    el_attr = _self_attr(element)
                    if el_attr is not None:
                        ops.append(Mutate(stmt.lineno, attr=el_attr, desc="assignment"))
        return ops

    def _infer_types(self, node: ast.expr) -> Set[str]:
        """Candidate class names for an expression's value."""
        if isinstance(node, ast.Name):
            return set(self.local_types.get(node.id, ()))
        attr = _self_attr(node)
        if attr is not None and self.cls is not None:
            return set(self.cls.attr_types.get(attr, ()))
        if isinstance(node, ast.Call):
            callee = _call_name(node)
            if _looks_like_class(callee):
                return {callee}
            func = node.func
            # self.nodes.get(k) on a Dict[str, Node] attribute
            if isinstance(func, ast.Attribute) and func.attr == "get":
                owner = _self_attr(func.value)
                if owner is not None and self.cls is not None:
                    return set(self.cls.attr_value_types.get(owner, ()))
            # self.node(name) with a `-> Node` return annotation
            spec = self._call_spec(node)
            if spec is not None and spec.kind == "self" and self.cls is not None:
                method = self.cls.methods.get(spec.name)
                if method is not None:
                    return set(method.return_types)
            return set()
        if isinstance(node, ast.Subscript):
            owner = _self_attr(node.value)
            if owner is not None and self.cls is not None:
                return set(self.cls.attr_value_types.get(owner, ()))
        return set()

    def walk_expr(self, node: Optional[ast.expr]) -> List[Op]:
        """Extract ops from an arbitrary expression, in evaluation order."""
        ops: List[Op] = []
        if node is None:
            return ops
        if isinstance(node, ast.Call):
            for arg in node.args:
                ops.extend(self.walk_expr(arg))
            for kw in node.keywords:
                ops.extend(self.walk_expr(kw.value))
            ops.extend(self._call_ops(node))
            return ops
        if isinstance(node, ast.Lambda):
            ops.extend(self.walk_expr(node.body))
            return ops
        if isinstance(node, ast.Attribute):
            # a method referenced outside call position is a callback
            # target (Thread(target=self._loop), bus guard installs, …)
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if self.cls is not None and not self._is_lockish_attr(node.attr):
                    self.scanner.info.callback_refs.add((self.cls.name, node.attr))
            else:
                recv_attr = _self_attr(receiver)
                if recv_attr is not None and self.cls is not None:
                    for type_name in self.cls.attr_types.get(recv_attr, ()):
                        self.scanner.info.callback_refs.add((type_name, node.attr))
            ops.extend(self.walk_expr(receiver))
            return ops
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                ops.extend(self.walk_expr(child))
            elif isinstance(child, ast.comprehension):
                ops.extend(self.walk_expr(child.iter))
                for cond in child.ifs:
                    ops.extend(self.walk_expr(cond))
        return ops

    def _call_ops(self, node: ast.Call) -> List[Op]:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_spec = self.resolve_lock(func.value)
            if receiver_spec is not None:
                if func.attr == "acquire":
                    return [Acquire(
                        node.lineno, lock=receiver_spec,
                        trylock=self._is_trylock(node),
                    )]
                if func.attr == "release":
                    return [Release(node.lineno, lock=receiver_spec)]
                # wait/notify/wait_for on a held condition: no ordering
                return []
            receiver = _self_attr(func.value)
            if receiver is not None and func.attr in _MUTATORS:
                return [Mutate(node.lineno, attr=receiver, desc=f".{func.attr}()")]
        spec = self._call_spec(node)
        if spec is None:
            return []
        return [self._make_call(node, spec)]

    def _make_call(self, node: ast.Call, spec: CallSpec) -> Call:
        call = Call(node.lineno, spec=spec)
        for index, arg in enumerate(node.args):
            lock = self.resolve_lock(arg)
            if lock is not None:
                call.pos_locks[index] = lock
        for kw in node.keywords:
            if kw.arg is not None:
                lock = self.resolve_lock(kw.value)
                if lock is not None:
                    call.kw_locks[kw.arg] = lock
        return call

    @staticmethod
    def _is_trylock(node: ast.Call) -> bool:
        """True unless the acquire blocks unconditionally."""
        if node.args:
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and first.value is True):
                return True
        for kw in node.keywords:
            if kw.arg == "blocking":
                if not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                ):
                    return True
            if kw.arg == "timeout":
                return True
        return False


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _module_name(path: Path, root: Path) -> str:
    relative = path.relative_to(root)
    parts = list(relative.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([root.name] + parts) if parts else root.name


def scan_paths(paths: Sequence[str]) -> Index:
    """Scan ``paths`` (package directories or single files) into an Index.

    A directory is walked recursively; its own name anchors module
    names, so scanning ``src/repro`` produces ``repro.middleware.bus``
    style modules.
    """
    index = Index()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            files = [root]
        else:
            files = sorted(root.rglob("*.py"))
        for file in files:
            source = file.read_text(encoding="utf-8")
            module = file.stem if root.is_file() else _module_name(file, root)
            scanner = _ModuleScanner(module, file, source)
            try:
                info = scanner.scan()
            except SyntaxError:
                continue
            index.modules[module] = info
            for cls in info.classes.values():
                index.classes[cls.qualname] = cls
                for decl in cls.lock_attrs.values():
                    index.locks.setdefault(decl.lock_id, decl)
                for family_id in cls.family_attrs.values():
                    index.locks.setdefault(family_id, LockDecl(
                        family_id, "rlock", True, cls.module, cls.name,
                        "<family>", cls.lineno,
                    ))
    return index
