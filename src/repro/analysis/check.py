"""Driver shared by ``tools/check_concurrency.py`` and ``repro.cli analyze``.

Exit-code discipline matches ``tools/check_md_links.py``: 0 clean,
1 findings, 2 usage error — so CI heredocs stay one-liners.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, check_baseline, check_cycles
from repro.analysis.lockgraph import Analysis, analyze_paths
from repro.analysis.report import render_findings, render_graph


def run_check(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    show_graph: bool = False,
    out=None,
) -> int:
    """Analyze ``paths``; print findings; return the exit code."""
    out = out if out is not None else sys.stdout
    missing = [p for p in paths if not Path(p).exists()]
    if not paths or missing:
        print(
            f"usage error: no such path(s): {missing}"
            if missing
            else "usage error: at least one path to analyze is required",
            file=sys.stderr,
        )
        return 2
    analysis: Analysis = analyze_paths(paths)
    graph = analysis.graph
    findings: List = list(analysis.findings)
    baseline = None
    if baseline_path is not None:
        if Path(baseline_path).exists():
            baseline = Baseline.load(baseline_path)
        elif not update_baseline:
            print(
                f"usage error: baseline {baseline_path} does not exist "
                "(run with --update-baseline to create it)",
                file=sys.stderr,
            )
            return 2
    if update_baseline:
        if baseline_path is None:
            print(
                "usage error: --update-baseline needs --baseline FILE",
                file=sys.stderr,
            )
            return 2
        updated = (baseline or Baseline()).updated(graph)
        updated.self_nest_ok |= set(graph.self_nests)
        updated.save(baseline_path)
        print(
            f"baseline written: {baseline_path} "
            f"({len(updated.edges)} edge(s))",
            file=out,
        )
        findings.extend(check_cycles(graph))
    elif baseline is not None:
        findings.extend(check_baseline(graph, baseline))
    else:
        findings.extend(check_cycles(graph))
    if show_graph:
        hierarchy = baseline.hierarchy if baseline is not None else None
        print(render_graph(graph, hierarchy), file=out)
        print(file=out)
    print(render_findings(findings), file=out)
    return 1 if any(f.severity == "error" for f in findings) else 0
