"""Runtime lock witness: named primitives + acquisition-order tracking.

Every lock in the runtime is created through the factories here —
:func:`named_lock`, :func:`named_rlock`, :func:`named_condition` — with a
stable hierarchy name (``"federation.topology"``, ``"dispatch.servant"``,
…).  By default the factories return the bare stdlib primitive, so the
production path pays nothing.  When ``REPRO_LOCK_WITNESS=1`` is set the
factories return *witnessed* wrappers that

* keep a per-thread stack of held locks,
* accumulate a process-global acquisition-order graph (``held name ->
  acquired name``) across the whole run, and
* raise :class:`LockOrderInversion` the moment a thread acquires ``A``
  while holding ``B`` when some earlier acquisition took ``B`` while
  holding ``A`` — turning every stress suite into a dynamic deadlock
  detector (two such threads interleaving *is* the deadlock; observing
  both orders is the proof it can happen).

``REPRO_LOCK_WITNESS=record`` accumulates the same graph but only
records inversions instead of raising — useful for harvesting the full
order graph from a run that is known to be dirty.

Same-*name* nesting with two different lock objects (the per-servant
lock family nesting into another servant during an in-process proxy
call) is recorded as a ``self_nest`` observation, never an inversion:
whether it is benign depends on a key-ordering argument the baseline
documents per name (``self_nest_ok``).

The witness's own bookkeeping mutex is a leaf: it is only ever held for
dictionary updates and never while acquiring a witnessed lock, so it
cannot participate in any cycle it would report.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderInversion",
    "WitnessRegistry",
    "enabled",
    "named_condition",
    "named_lock",
    "named_rlock",
    "registry",
    "reset",
]

_ENV_VAR = "REPRO_LOCK_WITNESS"


def enabled() -> bool:
    """True when lock creation should produce witnessed wrappers."""
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def _raise_on_inversion() -> bool:
    return os.environ.get(_ENV_VAR, "") != "record"


class LockOrderInversion(AssertionError):
    """Two locks were observed acquired in both orders (deadlock risk)."""


class WitnessRegistry:
    """Process-global acquisition-order graph and inversion reports."""

    def __init__(self):
        self._mutex = threading.Lock()
        #: (held name, acquired name) -> observation count
        self.edges: Dict[Tuple[str, str], int] = {}
        #: first stack seen per edge, for inversion reports
        self._edge_stacks: Dict[Tuple[str, str], str] = {}
        #: same-name different-object nestings observed, per name
        self.self_nests: Dict[str, int] = {}
        #: inversion reports (kept even in raise mode, for teardown checks)
        self.inversions: List[Dict[str, str]] = []

    def record(self, held: List[str], name: str) -> Optional[Dict[str, str]]:
        """Record edges ``h -> name`` for every held lock; returns the
        first inversion report produced (None when the order is clean)."""
        stack = None
        report = None
        with self._mutex:
            for holder in held:
                if holder == name:
                    continue
                edge = (holder, name)
                seen = self.edges.get(edge, 0)
                self.edges[edge] = seen + 1
                if not seen:
                    if stack is None:
                        stack = "".join(traceback.format_stack(limit=16)[:-2])
                    self._edge_stacks[edge] = stack
                    reverse = (name, holder)
                    if reverse in self.edges and report is None:
                        report = {
                            "first": f"{name} -> {holder}",
                            "second": f"{holder} -> {name}",
                            "first_stack": self._edge_stacks.get(reverse, ""),
                            "second_stack": stack,
                        }
                        self.inversions.append(report)
        return report

    def record_self_nest(self, name: str) -> None:
        with self._mutex:
            self.self_nests[name] = self.self_nests.get(name, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """A JSON-shaped copy of everything observed so far."""
        with self._mutex:
            return {
                "edges": sorted(
                    [a, b, count] for (a, b), count in self.edges.items()
                ),
                "self_nests": dict(sorted(self.self_nests.items())),
                "inversions": [dict(r) for r in self.inversions],
            }

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        with self._mutex:
            return set(self.edges)

    def clear(self) -> None:
        with self._mutex:
            self.edges.clear()
            self._edge_stacks.clear()
            self.self_nests.clear()
            self.inversions.clear()


_registry = WitnessRegistry()
_held_local = threading.local()


def registry() -> WitnessRegistry:
    return _registry


def reset() -> None:
    """Drop every observation (tests isolate themselves with this)."""
    _registry.clear()


def _held_stack() -> List[Tuple[str, int, bool]]:
    """This thread's held stack: (name, inner lock id, reentrant)."""
    stack = getattr(_held_local, "stack", None)
    if stack is None:
        stack = _held_local.stack = []
    return stack


def _note_acquired(name: str, inner_id: int, reentrant: bool) -> None:
    """Record order edges for a *successful* acquisition and push it."""
    stack = _held_stack()
    if reentrant and any(entry[1] == inner_id for entry in stack):
        # re-entrant re-acquisition of a lock this thread already holds:
        # no new ordering information
        stack.append((name, inner_id, reentrant))
        return
    held_names = []
    for held_name, _held_id, _re in stack:
        if held_name == name:
            _registry.record_self_nest(name)
        else:
            held_names.append(held_name)
    report = _registry.record(held_names, name) if held_names else None
    stack.append((name, inner_id, reentrant))
    if report is not None and _raise_on_inversion():
        raise LockOrderInversion(
            "lock-order inversion: observed both "
            f"{report['first']} and {report['second']}\n"
            f"--- earlier order first acquired at ---\n{report['first_stack']}"
        )


def _note_released(inner_id: int) -> None:
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index][1] == inner_id:
            del stack[index]
            return


class _WitnessLockBase:
    """Shared acquire/release bookkeeping over a stdlib inner lock."""

    _reentrant = False

    def __init__(self, name: str, inner):
        self.name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            # ordering is recorded only after the acquisition succeeded:
            # a failed try-acquire never waits, so it cannot deadlock
            _note_acquired(self.name, id(self._inner), self._reentrant)
        return got

    def release(self) -> None:
        self._inner.release()
        _note_released(id(self._inner))

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} {self._inner!r}>"


class WitnessLock(_WitnessLockBase):
    def __init__(self, name: str):
        super().__init__(name, threading.Lock())


class WitnessRLock(_WitnessLockBase):
    _reentrant = True

    def __init__(self, name: str):
        super().__init__(name, threading.RLock())


class WitnessCondition:
    """A named condition sharing its lock's witness identity.

    ``wait`` delegates to a stdlib :class:`threading.Condition` over the
    *inner* lock, so the temporary release inside ``wait`` bypasses the
    witness — correctly: the thread still logically owns the region, and
    it acquires nothing while blocked.
    """

    _reentrant = True

    def __init__(self, name: str, lock=None):
        if isinstance(lock, _WitnessLockBase):
            self.name = lock.name
            self._inner = lock._inner
            self._reentrant = lock._reentrant
        elif lock is not None:
            self.name = name
            self._inner = lock
        else:
            self.name = name
            self._inner = threading.RLock()
        self._cond = threading.Condition(self._inner)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            _note_acquired(self.name, id(self._inner), self._reentrant)
        return got

    def release(self) -> None:
        self._inner.release()
        _note_released(id(self._inner))

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._cond.wait(timeout)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        return self._cond.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<WitnessCondition {self.name!r}>"


def named_lock(name: str):
    """A :class:`threading.Lock` carrying ``name`` in the lock hierarchy."""
    if enabled():
        return WitnessLock(name)
    return threading.Lock()


def named_rlock(name: str):
    """A :class:`threading.RLock` carrying ``name`` in the lock hierarchy."""
    if enabled():
        return WitnessRLock(name)
    return threading.RLock()


def named_condition(name: str, lock=None):
    """A :class:`threading.Condition` carrying ``name``.

    ``lock`` may be another named primitive — the condition then shares
    that lock's identity (the stdlib contract: a condition built over an
    existing mutex guards the same region).
    """
    if enabled():
        return WitnessCondition(name, lock)
    if lock is not None and isinstance(lock, _WitnessLockBase):  # pragma: no cover
        return threading.Condition(lock._inner)
    return threading.Condition(lock)


#: thread-held names, exposed for tests and debugging
def held_names() -> List[str]:
    return [name for name, _id, _re in _held_stack()]
