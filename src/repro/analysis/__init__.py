"""Concurrency correctness toolkit.

Two halves, one lock hierarchy:

* **Static** — :mod:`repro.analysis.lockscan` parses ``src/repro`` into
  per-function lock IR, :mod:`repro.analysis.lockgraph` evaluates it
  interprocedurally into an acquired-while-holding graph, checks
  ``guarded_by`` declarations, and :mod:`repro.analysis.baseline`
  compares the graph against the checked-in hierarchy
  (``tools/concurrency_baseline.json``).  ``tools/check_concurrency.py``
  and ``repro.cli analyze`` drive it; CI fails on any new cycle,
  guarded-by violation, or baseline drift.
* **Dynamic** — :mod:`repro.analysis.witness` wraps every named lock at
  runtime under ``REPRO_LOCK_WITNESS=1`` and raises on the first
  observed acquisition-order inversion.

See ``docs/CONCURRENCY.md`` for the hierarchy itself and the annotation
conventions.
"""

from repro.analysis.baseline import Baseline, check_baseline
from repro.analysis.lockgraph import LockGraph, analyze_paths
from repro.analysis.lockscan import scan_paths
from repro.analysis.report import Finding, render_findings, render_graph
from repro.analysis.witness import (
    LockOrderInversion,
    named_condition,
    named_lock,
    named_rlock,
    registry,
)

__all__ = [
    "Baseline",
    "Finding",
    "LockGraph",
    "LockOrderInversion",
    "analyze_paths",
    "check_baseline",
    "named_condition",
    "named_lock",
    "named_rlock",
    "registry",
    "render_findings",
    "render_graph",
    "scan_paths",
]
