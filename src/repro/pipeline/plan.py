"""The ConfigurationPlan IR: which concerns, with which ``Si``, when.

A plan is the declarative input of the pipeline — the developer's (or
wizard's) selection of concern dimensions plus the bound parameter sets,
decoupled from *how* the transformations are ordered and batched (the
scheduler's job) and from *running* them (the executor's job).

A selection may name explicit predecessors (``after=...``); dependencies
may also come from a :class:`~repro.workflow.model.WorkflowModel` at
scheduling time.  Binding a plan against a
:class:`~repro.core.registry.ConcernRegistry` specializes every GMT with
its ``Si`` up front, so configuration errors surface before anything
touches the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PlanError


@dataclass(frozen=True)
class ConcernSelection:
    """One selected concern dimension with its application parameters."""

    concern: str
    parameters: Tuple[Tuple[str, object], ...]
    after: Tuple[str, ...] = ()

    @property
    def parameter_dict(self) -> Dict[str, object]:
        return dict(self.parameters)


@dataclass
class PlannedStep:
    """A selection bound to its GMT and specialized CMT."""

    index: int
    selection: ConcernSelection
    generic: object
    concrete: object

    @property
    def concern(self) -> str:
        return self.selection.concern

    @property
    def name(self) -> str:
        return self.concrete.name

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<PlannedStep {self.index}: {self.name}>"


class ConfigurationPlan:
    """An ordered set of concern selections; the pipeline's input IR."""

    def __init__(self, selections: Optional[Iterable[ConcernSelection]] = None):
        self.selections: List[ConcernSelection] = []
        for selection in selections or ():
            self._add(selection)

    def _add(self, selection: ConcernSelection) -> None:
        if any(s.concern == selection.concern for s in self.selections):
            raise PlanError(
                f"plan already selects concern {selection.concern!r} "
                "(each concern dimension is refined once)"
            )
        self.selections.append(selection)

    def select(
        self, concern: str, after: Iterable[str] = (), **parameters
    ) -> "ConfigurationPlan":
        """Add a selection; chainable.  ``after`` names explicit predecessors
        (a single concern name or an iterable of them)."""
        if isinstance(after, str):
            after = (after,)
        self._add(
            ConcernSelection(
                concern=concern,
                parameters=tuple(sorted(parameters.items(), key=lambda kv: kv[0])),
                after=tuple(after),
            )
        )
        return self

    @property
    def concerns(self) -> List[str]:
        return [s.concern for s in self.selections]

    def validate(self, satisfied: Iterable[str] = ()) -> None:
        """Referential integrity of the explicit ``after`` edges.

        An ``after`` edge may name a concern selected in this plan *or*
        one in ``satisfied`` — the lifecycle's already-applied history.
        History edges are trivially ordered (the predecessor already
        ran), so the scheduler drops them; naming a concern found in
        neither place is a planning error.
        """
        known = set(self.concerns) | set(satisfied)
        for selection in self.selections:
            unknown = [dep for dep in selection.after if dep not in known]
            if unknown:
                raise PlanError(
                    f"selection {selection.concern!r} depends on concern(s) "
                    f"{unknown} neither present in the plan nor already applied"
                )

    def bind(self, registry, satisfied: Iterable[str] = ()) -> List[PlannedStep]:
        """Specialize every selection's GMT with its ``Si``.

        ``satisfied`` names concerns already applied to the target
        lifecycle; explicit ``after`` edges may reference them.  Raises
        the registry's :class:`~repro.errors.TransformationError` for
        unknown concerns and the signature's
        :class:`~repro.errors.ParameterError` for bad parameter sets —
        all before any model mutation.
        """
        self.validate(satisfied)
        steps: List[PlannedStep] = []
        for index, selection in enumerate(self.selections):
            gmt = registry.get(selection.concern)
            cmt = gmt.specialize(**selection.parameter_dict)
            steps.append(PlannedStep(index, selection, gmt, cmt))
        return steps

    @classmethod
    def from_config(cls, config) -> "ConfigurationPlan":
        """Build a plan from JSON-shaped data.

        Accepts either a list of ``{"concern": ..., "params": {...},
        "after": [...]}`` entries or a ``{"concerns": [...]}`` wrapper.
        """
        if isinstance(config, dict):
            config = config.get("concerns", config.get("plan"))
        if not isinstance(config, list):
            raise PlanError(
                "plan config must be a list of selections or a "
                "{'concerns': [...]} object"
            )
        plan = cls()
        for entry in config:
            if not isinstance(entry, dict) or "concern" not in entry:
                raise PlanError(f"malformed plan entry: {entry!r}")
            plan.select(
                entry["concern"],
                after=entry.get("after", ()),
                **entry.get("params", {}),
            )
        return plan

    def describe(self) -> str:
        lines = ["configuration plan:"]
        for selection in self.selections:
            suffix = f"  (after {list(selection.after)})" if selection.after else ""
            lines.append(f"  - {selection.concern}{suffix}")
        return "\n".join(lines)

    def __len__(self):
        return len(self.selections)

    def __iter__(self):
        return iter(self.selections)
