"""Resolve concern precedence into an explicit DAG and batch it.

Dependency edges come from two sources, merged:

* the plan's explicit ``after`` edges, and
* a :class:`~repro.workflow.model.WorkflowModel`'s ``requires``
  prerequisites, restricted to concerns actually present in the plan.

Kahn's algorithm topologically orders the DAG; every node whose
predecessors are all satisfied lands in the *same batch* (the level-
structure of the DAG), so independent transformations are grouped and the
executor can share a transaction, a savepoint, and per-phase OCL extent
caches across them.  A cycle — impossible to serialize — raises
:class:`~repro.errors.SchedulingError` naming the concerns involved.

The flattened batch order is also the *aspect precedence order*: the
paper ties code-level aspect precedence to model-level application order,
and the schedule is what makes that order explicit and deterministic
(within a batch, plan position breaks ties).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import SchedulingError
from repro.pipeline.plan import PlannedStep


@dataclass
class Schedule:
    """Topologically ordered batches of planned steps."""

    batches: List[List[PlannedStep]] = field(default_factory=list)
    #: concern → concerns it waits for (the resolved DAG, for reporting)
    dependencies: Dict[str, List[str]] = field(default_factory=dict)

    def order(self) -> List[PlannedStep]:
        """Flattened application (= aspect precedence) order."""
        return [step for batch in self.batches for step in batch]

    @property
    def step_count(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def describe(self) -> str:
        lines = ["schedule:"]
        for i, batch in enumerate(self.batches):
            names = ", ".join(step.concern for step in batch)
            lines.append(f"  batch {i}: {names}")
        return "\n".join(lines)

    def __len__(self):
        return len(self.batches)


class Scheduler:
    """Turns bound plan steps into a batched, cycle-checked schedule.

    ``satisfied`` names concerns already applied to the repository (the
    lifecycle's history): workflow prerequisites met by history impose no
    edge and need not appear in the plan.
    """

    def __init__(self, workflow=None, satisfied: Optional[Iterable[str]] = None):
        self.workflow = workflow
        self.satisfied = set(satisfied or ())

    def resolve_dependencies(
        self, steps: Sequence[PlannedStep]
    ) -> Dict[str, Set[str]]:
        """Merge explicit ``after`` edges with workflow prerequisites."""
        present = {step.concern for step in steps}
        deps: Dict[str, Set[str]] = {step.concern: set() for step in steps}
        for step in steps:
            deps[step.concern].update(
                dep for dep in step.selection.after if dep not in self.satisfied
            )
        if self.workflow is not None:
            for step in steps:
                wf_step = self.workflow.step(step.concern)
                if wf_step is None:
                    raise SchedulingError(
                        f"workflow has no step for planned concern "
                        f"{step.concern!r}"
                    )
                missing = wf_step.requires - present - self.satisfied
                if missing:
                    raise SchedulingError(
                        f"concern {step.concern!r} requires {sorted(missing)} "
                        "which the plan does not select"
                    )
                deps[step.concern].update(wf_step.requires & present)
        return deps

    def schedule(self, steps: Sequence[PlannedStep]) -> Schedule:
        """Kahn's algorithm with level grouping; deterministic within levels."""
        by_concern = {step.concern: step for step in steps}
        deps = self.resolve_dependencies(steps)
        remaining = {concern: set(d) for concern, d in deps.items()}
        done: Set[str] = set()
        batches: List[List[PlannedStep]] = []
        while remaining:
            ready = [
                concern
                for concern, pending in remaining.items()
                if pending <= done
            ]
            if not ready:
                cycle = sorted(remaining)
                raise SchedulingError(
                    f"precedence cycle among concerns {cycle}: no valid "
                    "application order exists"
                )
            # plan position keeps batches (and thus aspect precedence)
            # deterministic regardless of dict iteration quirks
            ready.sort(key=lambda concern: by_concern[concern].index)
            batches.append([by_concern[concern] for concern in ready])
            done.update(ready)
            for concern in ready:
                del remaining[concern]
        return Schedule(
            batches=batches,
            dependencies={c: sorted(d) for c, d in deps.items()},
        )
