"""S13 — The configuration pipeline: plan → schedule → execute.

The paper's core loop — select concerns, specialize the generic
transformations with application parameters, apply them in precedence
order, derive the concrete aspects — used to be driven one
transformation at a time.  This package turns it into a staged
pass-manager:

* :class:`~repro.pipeline.plan.ConfigurationPlan` — the declarative IR:
  concern selections plus bound parameter sets (``Si``), with optional
  explicit precedence edges;
* :class:`~repro.pipeline.scheduler.Scheduler` — resolves explicit and
  workflow-derived precedence into a DAG, topologically orders it, and
  groups independent transformations into batches
  (:class:`~repro.pipeline.scheduler.Schedule`);
* :class:`~repro.pipeline.executor.PipelineExecutor` — runs each batch in
  one repository transaction with one demarcated savepoint, shares OCL
  extent caches per phase, and aggregates everything into a
  :class:`~repro.pipeline.executor.PipelineResult` whose
  :class:`~repro.pipeline.executor.PipelineStats` exposes the run's
  compiled-condition cache hit counts.

:class:`~repro.core.lifecycle.MdaLifecycle`, the wizard layer, and the
CLI all drive multi-transformation application through this pipeline.
"""

from repro.pipeline.plan import ConcernSelection, ConfigurationPlan, PlannedStep
from repro.pipeline.scheduler import Schedule, Scheduler
from repro.pipeline.executor import (
    BatchResult,
    PipelineExecutor,
    PipelineResult,
    PipelineStats,
)

__all__ = [
    "ConcernSelection",
    "ConfigurationPlan",
    "PlannedStep",
    "Schedule",
    "Scheduler",
    "BatchResult",
    "PipelineExecutor",
    "PipelineResult",
    "PipelineStats",
]
