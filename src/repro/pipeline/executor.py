"""Run a schedule against the repository, batch by batch.

One batch = one repository transaction = one demarcated savepoint:

* **gate** — every step's mapping applicability and OCL preconditions are
  checked against the batch-start model state, sharing one
  :class:`~repro.ocl.cache.ExtentCache` (the model does not change during
  this phase, so each ``Type.allInstances()`` walk is paid once per type
  instead of once per condition);
* **refine** — all rule sequences run inside a single repository
  transaction, each step painted into the demarcation table under its own
  concern;
* **verify** — every step's postconditions are checked against the
  batch-end state with a fresh shared extent cache.  Any failure aborts
  the transaction, rolling back *exactly this batch* (earlier batches
  were committed as savepoints and survive);
* **savepoint** — the batch is committed as one version.

Results aggregate into a single :class:`PipelineResult` with one
:class:`~repro.transform.engine.ApplicationResult` per step, all trace
links in the engine's single :class:`~repro.transform.trace.TraceLog`,
and a :class:`PipelineStats` exposing the OCL compile-cache and
extent-cache hit counts for the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import BatchExecutionError
from repro.ocl.cache import CacheStats, ExtentCache, default_compile_cache
from repro.transform.engine import ApplicationResult, TransformationEngine
from repro.pipeline.plan import PlannedStep
from repro.pipeline.scheduler import Schedule


@dataclass(frozen=True)
class PipelineStats:
    """Cache and phase accounting for one pipeline run."""

    steps: int
    batches: int
    duration_s: float
    #: compile-cache counter deltas for the run (shared process cache)
    ocl_compile: CacheStats
    #: allInstances-extent cache counters across all batch phases
    ocl_extents: CacheStats
    savepoints: int

    @property
    def ocl_compile_hits(self) -> int:
        return self.ocl_compile.hits

    @property
    def ocl_extent_hits(self) -> int:
        return self.ocl_extents.hits

    def report(self) -> str:
        lines = [
            "pipeline stats:",
            f"  steps / batches:   {self.steps} / {self.batches}",
            f"  duration:          {self.duration_s * 1000:.1f} ms",
            f"  savepoints:        {self.savepoints}",
            f"  OCL compile cache: {self.ocl_compile.hits} hits, "
            f"{self.ocl_compile.misses} misses",
            f"  OCL extent cache:  {self.ocl_extents.hits} hits, "
            f"{self.ocl_extents.misses} misses",
        ]
        return "\n".join(lines)


@dataclass
class BatchResult:
    """Outcome of one executed batch."""

    index: int
    label: str
    results: List[ApplicationResult] = field(default_factory=list)
    savepoint: Optional[str] = None  #: version id of the batch's savepoint


@dataclass
class PipelineResult:
    """Aggregated outcome of a full pipeline run."""

    batch_results: List[BatchResult] = field(default_factory=list)
    stats: Optional[PipelineStats] = None

    @property
    def applications(self) -> List[ApplicationResult]:
        return [r for batch in self.batch_results for r in batch.results]

    @property
    def application_order(self) -> List[str]:
        return [r.transformation for r in self.applications]

    def report(self) -> str:
        lines = ["pipeline run:"]
        for batch in self.batch_results:
            lines.append(f"  batch {batch.index} [{batch.label}]:")
            for result in batch.results:
                lines.append(
                    f"    {result.transformation}: "
                    f"+{result.created_elements} elements, "
                    f"{result.trace_links} trace links"
                )
        if self.stats is not None:
            lines.append(self.stats.report())
        return "\n".join(lines)


class PipelineExecutor:
    """Applies a :class:`Schedule` through a shared engine, batch-wise."""

    def __init__(
        self,
        repository,
        engine: Optional[TransformationEngine] = None,
        savepoints: bool = True,
    ):
        self.repository = repository
        self.engine = engine if engine is not None else TransformationEngine(repository)
        if self.engine.repository is not repository:
            raise ValueError("engine and executor must share one repository")
        #: commit one version per successful batch (the savepoint chain);
        #: disable for throwaway runs where versioning is not wanted
        self.savepoints = savepoints

    def run(self, schedule: Schedule) -> PipelineResult:
        started = time.perf_counter()
        compile_before = default_compile_cache().stats()
        self._compile_conditions(schedule)
        extents = ExtentCache()
        result = PipelineResult()

        for batch_index, batch in enumerate(schedule.batches):
            try:
                result.batch_results.append(
                    self._run_batch(batch_index, batch, extents)
                )
            except BatchExecutionError as exc:
                # callers (the lifecycle) use the completed batches to
                # keep their own state consistent with the repository
                exc.partial_result = result
                raise

        result.stats = PipelineStats(
            steps=schedule.step_count,
            batches=len(schedule.batches),
            duration_s=time.perf_counter() - started,
            ocl_compile=default_compile_cache().stats().since(compile_before),
            ocl_extents=extents.stats(),
            savepoints=sum(
                1 for b in result.batch_results if b.savepoint is not None
            ),
        )
        return result

    def _compile_conditions(self, schedule: Schedule) -> None:
        """Compile every condition (and viewpoint) of the run, once.

        Expressions authored earlier in the process are cache hits here —
        the run's stats record that every condition evaluation below used
        a cached AST instead of a fresh parse.
        """
        from repro.ocl.cache import compile_expression

        for step in schedule.order():
            for condition_set in (
                step.concrete.preconditions,
                step.concrete.postconditions,
            ):
                for condition in condition_set:
                    compile_expression(condition.expression)
            viewpoint = getattr(step.generic.concern, "viewpoint", None)
            if viewpoint:
                compile_expression(viewpoint)

    # -- one batch -------------------------------------------------------------

    def _run_batch(
        self, batch_index: int, batch: List[PlannedStep], extents: ExtentCache
    ) -> BatchResult:
        engine = self.engine
        label = "after " + ", ".join(step.name for step in batch)
        batch_result = BatchResult(index=batch_index, label=label)
        parameters = {step.index: dict(step.concrete.parameters) for step in batch}
        #: per-step time actually spent in that step's phases (a single
        #: batch-start stamp would charge every step the whole batch)
        durations = {step.index: 0.0 for step in batch}

        def timed(step, fn, *args):
            phase_start = time.perf_counter()
            try:
                return fn(*args)
            finally:
                durations[step.index] += time.perf_counter() - phase_start

        # gate: batch-start state, shared extents (precondition failures
        # leave the model untouched — nothing to roll back yet)
        extents.invalidate()
        for step in batch:
            try:
                timed(step, engine.gate, step.concrete, parameters[step.index], extents)
            except Exception as exc:
                raise BatchExecutionError(step.name, batch_index, exc) from exc

        trace_links = {}
        failing = [None]

        try:
            with self.repository.transaction(label):
                for step in batch:
                    failing[0] = step
                    with self.repository.demarcation.painting(step.concern):
                        trace_links[step.index] = timed(
                            step, engine.run_rules, step.concrete, parameters[step.index]
                        )
                # verify: batch-end state, fresh shared extents
                extents.invalidate()
                for step in batch:
                    failing[0] = step
                    timed(
                        step, engine.verify, step.concrete, parameters[step.index], extents
                    )
        except Exception as exc:
            # the transaction context already rolled this batch back
            # (KeyboardInterrupt and friends propagate untouched — the
            # repository does not roll back on BaseException either);
            # extents memoized during refine/verify are stale now
            extents.invalidate()
            step = failing[0]
            raise BatchExecutionError(
                step.name if step is not None else "<unknown>", batch_index, exc
            ) from exc

        # the rules mutated the model: verify-phase extents are only valid
        # within this batch
        extents.invalidate()
        for step in batch:
            batch_result.results.append(
                engine.record(
                    step.concrete,
                    parameters[step.index],
                    trace_links[step.index],
                    duration_s=durations[step.index],
                )
            )
        if self.savepoints:
            version = self.repository.commit(label)
            batch_result.savepoint = version.id
        return batch_result
