"""Evaluator for the OCL expression subset over S1 model objects.

Values are plain Python objects: booleans, integers, floats, strings,
:class:`~repro.metamodel.instances.MObject` instances, Python lists for
collections, and the :data:`UNDEFINED` singleton for OCL's undefined value
(the result of navigating from null, or ``any()`` with no match).

Deliberate simplifications relative to OCL 1.x, documented here:

* ``Sequence``/``Bag`` are both Python lists; ``Set``/``OrderedSet`` are
  lists with duplicates removed (insertion order kept) — determinism over
  hash order.
* Three-valued logic is limited: boolean connectives short-circuit, and a
  non-shortcut ``UNDEFINED`` operand raises
  :class:`~repro.errors.OclEvaluationError` rather than propagating.
* ``x = null`` and ``x <> null`` treat ``UNDEFINED`` and ``None`` alike.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import (
    OclEvaluationError,
    OclNameError,
    OclTypeError,
)
from repro.metamodel.instances import MList, MObject
from repro.metamodel.kernel import MetaClass, MetaPackage
from repro.ocl.astnodes import (
    AllInstances,
    Binary,
    CollectionCall,
    CollectionLiteral,
    If,
    IteratorCall,
    Let,
    Literal,
    Navigate,
    Node,
    OperationCall,
    Unary,
    Variable,
)


class Undefined:
    """Singleton for OCL's undefined value; falsy, equal only to itself/None."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self):
        return False

    def __repr__(self):
        return "OclUndefined"


UNDEFINED = Undefined()


def types_from_package(package: MetaPackage) -> Dict[str, MetaClass]:
    """Build a type registry from every metaclass of a metamodel package.

    Both the simple name (``Class``) and the ``::``-qualified name
    (``uml::Class``) are registered.
    """
    registry: Dict[str, MetaClass] = {}
    for metaclass in package.all_metaclasses():
        registry[metaclass.name] = metaclass
        registry[metaclass.qualified_name.replace(".", "::")] = metaclass
    return registry


class OclContext:
    """Evaluation context: instance pool, type registry, variable bindings."""

    def __init__(
        self,
        resource=None,
        types: Optional[Dict[str, MetaClass]] = None,
        variables: Optional[Dict[str, object]] = None,
        self_object=None,
        extent_cache=None,
    ):
        self.resource = resource
        self.types = dict(types or {})
        self.variables = dict(variables or {})
        self.self_object = self_object
        #: optional :class:`repro.ocl.cache.ExtentCache` memoizing
        #: ``allInstances()`` extents; only valid while the model state
        #: does not change between evaluations.
        self.extent_cache = extent_cache

    def with_variables(self, **more) -> "OclContext":
        merged = dict(self.variables)
        merged.update(more)
        ctx = OclContext(
            self.resource, self.types, merged, self.self_object, self.extent_cache
        )
        return ctx

    def resolve_type(self, name: str) -> Optional[MetaClass]:
        if name in self.types:
            return self.types[name]
        if "::" in name:
            simple = name.rsplit("::", 1)[1]
            return self.types.get(simple)
        return None


def evaluate(expression, context: Optional[OclContext] = None, self_object=None, **variables):
    """Evaluate an OCL expression (text or pre-parsed AST).

    ``self_object`` and keyword arguments extend/override the context's
    bindings for this evaluation only.
    """
    if isinstance(expression, str):
        from repro.ocl.cache import compile_expression

        node = compile_expression(expression)
    else:
        node = expression
    context = context or OclContext()
    if variables or self_object is not None:
        context = context.with_variables(**variables)
        if self_object is not None:
            context = OclContext(
                context.resource,
                context.types,
                context.variables,
                self_object,
                context.extent_cache,
            )
    return _Evaluator(context).eval(node, dict(context.variables))


def _is_collection(value) -> bool:
    return isinstance(value, (list, tuple, MList))


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _as_list(value) -> List:
    if isinstance(value, MList):
        return list(value)
    if isinstance(value, (list, tuple)):
        return list(value)
    if value is UNDEFINED or value is None:
        return []
    return [value]


def _unique(items: Iterable) -> List:
    out: List = []
    for item in items:
        if not any(_ocl_equal(item, seen) for seen in out):
            out.append(item)
    return out


def _ocl_equal(a, b) -> bool:
    if a is UNDEFINED:
        a = None
    if b is UNDEFINED:
        b = None
    if isinstance(a, MObject) or isinstance(b, MObject):
        return a is b
    if _is_collection(a) and _is_collection(b):
        la, lb = _as_list(a), _as_list(b)
        return len(la) == len(lb) and all(_ocl_equal(x, y) for x, y in zip(la, lb))
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    return a == b


class _Evaluator:
    def __init__(self, context: OclContext):
        self.context = context

    # ------------------------------------------------------------------ core

    def eval(self, node: Node, env: Dict[str, object]):
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise OclEvaluationError(f"no evaluator for node {type(node).__name__}")
        return method(node, env)

    def _eval_Literal(self, node: Literal, env):
        return node.value

    def _eval_Variable(self, node: Variable, env):
        name = node.name
        if name == "self":
            if self.context.self_object is None:
                raise OclNameError("'self' is not bound in this context")
            return self.context.self_object
        if name in env:
            return env[name]
        metaclass = self.context.resolve_type(name)
        if metaclass is not None:
            return metaclass
        # implicit self-feature access, as OCL allows inside invariants
        self_obj = self.context.self_object
        if isinstance(self_obj, MObject) and self_obj.meta_class.has_feature(name):
            return self._navigate_object(self_obj, name)
        raise OclNameError(f"unknown name {name!r}")

    def _eval_CollectionLiteral(self, node: CollectionLiteral, env):
        items = [self.eval(item, env) for item in node.items]
        if node.kind in ("Set", "OrderedSet"):
            return _unique(items)
        return items

    def _eval_If(self, node: If, env):
        condition = self._boolean(self.eval(node.condition, env), "if condition")
        branch = node.then if condition else node.otherwise
        return self.eval(branch, env)

    def _eval_Let(self, node: Let, env):
        value = self.eval(node.value, env)
        inner = dict(env)
        inner[node.name] = value
        return self.eval(node.body, inner)

    def _eval_Unary(self, node: Unary, env):
        value = self.eval(node.operand, env)
        if node.op == "not":
            return not self._boolean(value, "'not' operand")
        if node.op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise OclTypeError(f"unary '-' needs a number, got {value!r}")
            return -value
        raise OclEvaluationError(f"unknown unary operator {node.op!r}")

    def _eval_Binary(self, node: Binary, env):
        op = node.op
        if op in ("and", "or", "implies", "xor"):
            return self._logical(op, node, env)
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if op == "=":
            return _ocl_equal(left, right)
        if op == "<>":
            return not _ocl_equal(left, right)
        if op in ("<", ">", "<=", ">="):
            return self._compare(op, left, right)
        if op in ("+", "-", "*", "/", "div", "mod"):
            return self._arith(op, left, right)
        raise OclEvaluationError(f"unknown binary operator {op!r}")

    def _logical(self, op: str, node: Binary, env):
        left = self._boolean(self.eval(node.left, env), f"'{op}' left operand")
        if op == "and" and not left:
            return False
        if op == "or" and left:
            return True
        if op == "implies" and not left:
            return True
        right = self._boolean(self.eval(node.right, env), f"'{op}' right operand")
        if op == "xor":
            return left != right
        return right

    @staticmethod
    def _boolean(value, what: str) -> bool:
        if isinstance(value, bool):
            return value
        raise OclTypeError(f"{what} must be Boolean, got {value!r}")

    @staticmethod
    def _compare(op: str, left, right) -> bool:
        numeric = _is_numeric
        if not (
            (numeric(left) and numeric(right))
            or (isinstance(left, str) and isinstance(right, str))
        ):
            raise OclTypeError(f"cannot order {left!r} and {right!r}")
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        return left >= right

    @staticmethod
    def _arith(op: str, left, right):
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        numeric = _is_numeric
        if not (numeric(left) and numeric(right)):
            raise OclTypeError(f"arithmetic {op!r} needs numbers, got {left!r}, {right!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise OclEvaluationError("division by zero")
            return left / right
        if right == 0:
            raise OclEvaluationError("division by zero")
        if op == "div":
            return int(left // right)
        return left % right

    # -------------------------------------------------------------- navigation

    def _eval_Navigate(self, node: Navigate, env):
        source = self.eval(node.source, env)
        return self._navigate(source, node.name)

    def _navigate(self, source, name: str):
        if source is UNDEFINED or source is None:
            return UNDEFINED
        if _is_collection(source):
            out: List = []
            for item in _as_list(source):
                value = self._navigate(item, name)
                if _is_collection(value):
                    out.extend(_as_list(value))  # implicit collect flattens
                elif value is not UNDEFINED:
                    out.append(value)
            return out
        if isinstance(source, MObject):
            return self._navigate_object(source, name)
        raise OclTypeError(f"cannot navigate {name!r} on {source!r}")

    def _navigate_object(self, obj: MObject, name: str):
        if not obj.meta_class.has_feature(name):
            raise OclNameError(
                f"{obj.meta_class.qualified_name} has no feature {name!r}"
            )
        value = obj.get(name)
        if isinstance(value, MList):
            return list(value)
        return UNDEFINED if value is None else value

    # ---------------------------------------------------------------- calls

    def _eval_AllInstances(self, node: AllInstances, env):
        metaclass = self.context.resolve_type(node.type_name)
        if metaclass is None:
            # maybe a variable holding a metaclass
            value = env.get(node.type_name)
            if isinstance(value, MetaClass):
                metaclass = value
        if metaclass is None:
            raise OclNameError(f"unknown type {node.type_name!r} for allInstances()")
        if self.context.resource is None:
            raise OclEvaluationError("allInstances() needs a resource in the context")
        cache = self.context.extent_cache
        if cache is not None:
            # copy: downstream collection ops may mutate their input list
            return list(cache.extent(self.context.resource, metaclass))
        return list(self.context.resource.objects_of(metaclass))

    def _type_argument(self, node: Node, env) -> MetaClass:
        if isinstance(node, Variable):
            metaclass = self.context.resolve_type(node.name)
            if metaclass is not None:
                return metaclass
            value = env.get(node.name)
            if isinstance(value, MetaClass):
                return value
            raise OclNameError(f"unknown type {node.name!r}")
        value = self.eval(node, env)
        if isinstance(value, MetaClass):
            return value
        raise OclTypeError(f"expected a type argument, got {value!r}")

    def _eval_OperationCall(self, node: OperationCall, env):
        name = node.name
        if node.source is None:
            raise OclNameError(f"unknown function {name!r}")
        # type-reflection operations receive their argument unevaluated
        if name in ("oclIsKindOf", "oclIsTypeOf", "oclAsType") and len(node.args) == 1:
            source = self.eval(node.source, env)
            metaclass = self._type_argument(node.args[0], env)
            return self._type_operation(name, source, metaclass)
        source = self.eval(node.source, env)
        args = [self.eval(arg, env) for arg in node.args]
        if isinstance(source, MetaClass) and name == "allInstances" and not args:
            return self._eval_AllInstances(AllInstances(node.position, source.name), env)
        return self._object_operation(source, name, args)

    @staticmethod
    def _type_operation(name: str, source, metaclass: MetaClass):
        if name == "oclAsType":
            if isinstance(source, MObject) and source.meta_class.conforms_to(metaclass):
                return source
            raise OclTypeError(f"{source!r} cannot be cast to {metaclass.name}")
        if not isinstance(source, MObject):
            return False
        if name == "oclIsKindOf":
            return source.meta_class.conforms_to(metaclass)
        return source.meta_class is metaclass

    def _object_operation(self, source, name: str, args: List):
        if name == "oclIsUndefined":
            return source is UNDEFINED or source is None
        if name == "oclContainer":
            if isinstance(source, MObject):
                container = source.container
                return UNDEFINED if container is None else container
            return UNDEFINED
        if isinstance(source, str):
            return self._string_operation(source, name, args)
        if isinstance(source, (int, float)) and not isinstance(source, bool):
            return self._number_operation(source, name, args)
        if source is UNDEFINED:
            raise OclEvaluationError(f"operation {name!r} on undefined value")
        raise OclNameError(f"unknown operation {name!r} on {source!r}")

    @staticmethod
    def _string_operation(source: str, name: str, args: List):
        if name == "concat" and len(args) == 1:
            return source + str(args[0])
        if name == "size" and not args:
            return len(source)
        if name == "toUpper" and not args:
            return source.upper()
        if name == "toLower" and not args:
            return source.lower()
        if name == "substring" and len(args) == 2:
            start, end = args
            if not (1 <= start <= end <= len(source)):
                raise OclEvaluationError(
                    f"substring({start}, {end}) out of bounds for {source!r}"
                )
            return source[start - 1 : end]
        if name == "indexOf" and len(args) == 1:
            return source.find(str(args[0])) + 1  # 0 when absent, 1-based otherwise
        if name == "startsWith" and len(args) == 1:
            return source.startswith(str(args[0]))
        if name == "endsWith" and len(args) == 1:
            return source.endswith(str(args[0]))
        if name == "contains" and len(args) == 1:
            return str(args[0]) in source
        if name == "toInteger" and not args:
            try:
                return int(source)
            except ValueError:
                raise OclEvaluationError(f"{source!r} is not an Integer") from None
        if name == "toReal" and not args:
            try:
                return float(source)
            except ValueError:
                raise OclEvaluationError(f"{source!r} is not a Real") from None
        raise OclNameError(f"unknown String operation {name!r}/{len(args)}")

    @staticmethod
    def _number_operation(source, name: str, args: List):
        import math

        if name == "abs" and not args:
            return abs(source)
        if name == "floor" and not args:
            return math.floor(source)
        if name == "round" and not args:
            return math.floor(source + 0.5)
        if name == "max" and len(args) == 1:
            return max(source, args[0])
        if name == "min" and len(args) == 1:
            return min(source, args[0])
        if name == "toString" and not args:
            return str(source)
        raise OclNameError(f"unknown numeric operation {name!r}/{len(args)}")

    # ------------------------------------------------------- collection calls

    def _eval_CollectionCall(self, node: CollectionCall, env):
        source = _as_list(self.eval(node.source, env))
        args = [self.eval(arg, env) for arg in node.args]
        name = node.name
        handler = _COLLECTION_OPS.get((name, len(args)))
        if handler is None:
            raise OclNameError(f"unknown collection operation {name!r}/{len(args)}")
        return handler(source, *args)

    def _eval_IterateCall(self, node, env):
        source = _as_list(self.eval(node.source, env))
        accumulator = self.eval(node.init, env)
        for item in source:
            inner = dict(env)
            inner[node.variable] = item
            inner[node.accumulator] = accumulator
            accumulator = self.eval(node.body, inner)
        return accumulator

    def _eval_IteratorCall(self, node: IteratorCall, env):
        source = _as_list(self.eval(node.source, env))
        name = node.name
        variables = node.variables

        def body(*values):
            inner = dict(env)
            for var, val in zip(variables, values):
                inner[var] = val
            return self.eval(node.body, inner)

        if len(variables) == 2:
            if name not in ("forAll", "exists"):
                raise OclEvaluationError(
                    f"two iterator variables only supported for forAll/exists, not {name!r}"
                )
            pairs = [(a, b) for a in source for b in source]
            if name == "forAll":
                return all(self._boolean(body(a, b), "forAll body") for a, b in pairs)
            return any(self._boolean(body(a, b), "exists body") for a, b in pairs)

        if name == "forAll":
            return all(self._boolean(body(x), "forAll body") for x in source)
        if name == "exists":
            return any(self._boolean(body(x), "exists body") for x in source)
        if name == "select":
            return [x for x in source if self._boolean(body(x), "select body")]
        if name == "reject":
            return [x for x in source if not self._boolean(body(x), "reject body")]
        if name == "collect":
            out: List = []
            for x in source:
                value = body(x)
                if _is_collection(value):
                    out.extend(_as_list(value))
                elif value is not UNDEFINED:
                    out.append(value)
            return out
        if name == "one":
            matches = sum(1 for x in source if self._boolean(body(x), "one body"))
            return matches == 1
        if name == "any":
            for x in source:
                if self._boolean(body(x), "any body"):
                    return x
            return UNDEFINED
        if name == "isUnique":
            keys = [body(x) for x in source]
            return len(keys) == len(_unique(keys))
        if name == "sortedBy":
            keyed = [(body(x), i, x) for i, x in enumerate(source)]
            try:
                keyed.sort(key=lambda t: (t[0], t[1]))
            except TypeError:
                raise OclTypeError("sortedBy keys are not comparable") from None
            return [x for _, _, x in keyed]
        if name == "closure":
            # per OCL, the result includes the source elements themselves
            seen: List = list(source)
            frontier = list(source)
            while frontier:
                current = frontier.pop(0)
                for nxt in _as_list(body(current)):
                    if not any(nxt is s for s in seen):
                        seen.append(nxt)
                        frontier.append(nxt)
            return seen
        raise OclNameError(f"unknown iterator operation {name!r}")


def _op_sum(items):
    total = 0
    for item in items:
        if not isinstance(item, (int, float)) or isinstance(item, bool):
            raise OclTypeError(f"sum() over non-numeric value {item!r}")
        total += item
    return total


def _op_at(items, index):
    if not isinstance(index, int) or isinstance(index, bool):
        raise OclTypeError("at() needs an Integer index")
    if not 1 <= index <= len(items):
        raise OclEvaluationError(f"at({index}) out of bounds (size {len(items)})")
    return items[index - 1]


def _op_first(items):
    return items[0] if items else UNDEFINED


def _op_last(items):
    return items[-1] if items else UNDEFINED


_COLLECTION_OPS: Dict[tuple, Callable] = {
    ("size", 0): lambda items: len(items),
    ("isEmpty", 0): lambda items: not items,
    ("notEmpty", 0): lambda items: bool(items),
    ("sum", 0): _op_sum,
    ("first", 0): _op_first,
    ("last", 0): _op_last,
    ("reverse", 0): lambda items: list(reversed(items)),
    ("flatten", 0): lambda items: [
        y for x in items for y in (_as_list(x) if _is_collection(x) else [x])
    ],
    ("asSet", 0): _unique,
    ("asOrderedSet", 0): _unique,
    ("asSequence", 0): lambda items: list(items),
    ("asBag", 0): lambda items: list(items),
    ("at", 1): _op_at,
    ("includes", 1): lambda items, x: any(_ocl_equal(i, x) for i in items),
    ("excludes", 1): lambda items, x: not any(_ocl_equal(i, x) for i in items),
    ("count", 1): lambda items, x: sum(1 for i in items if _ocl_equal(i, x)),
    ("indexOf", 1): lambda items, x: next(
        (i + 1 for i, v in enumerate(items) if _ocl_equal(v, x)), 0
    ),
    ("includesAll", 1): lambda items, other: all(
        any(_ocl_equal(i, x) for i in items) for x in _as_list(other)
    ),
    ("excludesAll", 1): lambda items, other: all(
        not any(_ocl_equal(i, x) for i in items) for x in _as_list(other)
    ),
    ("union", 1): lambda items, other: list(items) + _as_list(other),
    ("intersection", 1): lambda items, other: [
        i for i in _unique(items) if any(_ocl_equal(i, x) for x in _as_list(other))
    ],
    ("including", 1): lambda items, x: list(items) + [x],
    ("excluding", 1): lambda items, x: [i for i in items if not _ocl_equal(i, x)],
    ("append", 1): lambda items, x: list(items) + [x],
    ("prepend", 1): lambda items, x: [x] + list(items),
}
