"""Tokenizer for the OCL expression subset.

Token kinds: ``NUMBER``, ``STRING``, ``NAME``, ``KEYWORD``, ``OP``, ``EOF``.
Keywords carry their text in :attr:`Token.value` just like names; the parser
distinguishes them by kind so identifiers may not shadow keywords.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import OclSyntaxError

KEYWORDS = frozenset(
    {
        "and",
        "or",
        "xor",
        "not",
        "implies",
        "if",
        "then",
        "else",
        "endif",
        "let",
        "in",
        "true",
        "false",
        "null",
        "div",
        "mod",
        "self",
        "Set",
        "Sequence",
        "Bag",
        "OrderedSet",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_OPS = ("->", "<=", ">=", "<>", "::")
_SINGLE_OPS = "()[]{},.|=<>+-*/:;"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Turn ``text`` into a token list ending with an ``EOF`` token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # line comment
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            yield Token("NUMBER", text[start:i], start)
            continue
        if ch == "'":
            start = i
            i += 1
            chunks = []
            while i < n:
                if text[i] == "\\" and i + 1 < n:
                    chunks.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == "'":
                    break
                chunks.append(text[i])
                i += 1
            if i >= n:
                raise OclSyntaxError("unterminated string literal", start, text)
            i += 1  # closing quote
            yield Token("STRING", "".join(chunks), start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = "KEYWORD" if word in KEYWORDS else "NAME"
            yield Token(kind, word, start)
            continue
        matched = False
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                yield Token("OP", op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            yield Token("OP", ch, i)
            i += 1
            continue
        raise OclSyntaxError(f"unexpected character {ch!r}", i, text)
    yield Token("EOF", "", n)
