"""AST node definitions for the OCL expression subset.

Nodes are small frozen dataclasses; the evaluator dispatches on node type.
Each node keeps the source offset of its first token for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Node:
    position: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Literal(Node):
    """A number, string, boolean, or null literal."""

    value: object = None


@dataclass(frozen=True)
class Variable(Node):
    """A bare name: a bound variable, ``self``, or a type name."""

    name: str = ""


@dataclass(frozen=True)
class Navigate(Node):
    """``source.name`` — property navigation (implicit collect on collections)."""

    source: Optional[Node] = None
    name: str = ""


@dataclass(frozen=True)
class OperationCall(Node):
    """``source.name(args...)`` — object operation (string ops, oclIsKindOf...)."""

    source: Optional[Node] = None
    name: str = ""
    args: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class CollectionCall(Node):
    """``source->name(args...)`` — non-iterating collection operation."""

    source: Optional[Node] = None
    name: str = ""
    args: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class IteratorCall(Node):
    """``source->name(v1, v2 | body)`` — iterating collection operation."""

    source: Optional[Node] = None
    name: str = ""
    variables: Tuple[str, ...] = ()
    body: Optional[Node] = None


@dataclass(frozen=True)
class IterateCall(Node):
    """``source->iterate(v; acc = init | body)`` — the general fold."""

    source: Optional[Node] = None
    variable: str = ""
    accumulator: str = ""
    init: Optional[Node] = None
    body: Optional[Node] = None


@dataclass(frozen=True)
class Unary(Node):
    """``-x`` or ``not x``."""

    op: str = ""
    operand: Optional[Node] = None


@dataclass(frozen=True)
class Binary(Node):
    """Arithmetic, comparison, and logical binary operators."""

    op: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass(frozen=True)
class If(Node):
    condition: Optional[Node] = None
    then: Optional[Node] = None
    otherwise: Optional[Node] = None


@dataclass(frozen=True)
class Let(Node):
    name: str = ""
    value: Optional[Node] = None
    body: Optional[Node] = None


@dataclass(frozen=True)
class CollectionLiteral(Node):
    """``Set{...}`` / ``Sequence{...}`` / ``Bag{...}`` / ``OrderedSet{...}``."""

    kind: str = "Sequence"
    items: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class AllInstances(Node):
    """``TypeName.allInstances()``."""

    type_name: str = ""


@dataclass(frozen=True)
class TypeLiteral(Node):
    """A type name used as an argument (e.g. ``x.oclIsKindOf(Class)``)."""

    name: str = ""
