"""Compiled-expression and type-extent caches for the OCL hot path.

Two orthogonal caches back the configuration pipeline:

* :class:`OclCompileCache` — memoizes :func:`repro.ocl.parser.parse` by
  source text.  Conditions, viewpoints, and ad-hoc queries written with
  identical text (common across concern libraries, where every GMT gates
  on the same well-formedness idioms) are parsed once per process.  A
  shared process-wide instance (:func:`default_compile_cache`) is used by
  :func:`repro.ocl.evaluate` and by
  :class:`repro.transform.conditions.Condition`; pipeline runs snapshot
  its counters to report per-run hit counts.

* :class:`ExtentCache` — memoizes ``Type.allInstances()`` extents per
  metaclass for one *model state*.  ``allInstances`` walks the whole
  containment tree on every evaluation; within one pipeline phase
  (checking the preconditions of a batch of independent transformations,
  or their postconditions after the batch's rules ran) the model does not
  change, so the walk is paid once per type instead of once per
  condition.  The cache is handed to :class:`repro.ocl.OclContext` and
  must be dropped (or :meth:`ExtentCache.invalidate`-d) whenever the
  model mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ocl.parser import parse


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters."""

    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot."""
        return CacheStats(self.hits - earlier.hits, self.misses - earlier.misses)


class OclCompileCache:
    """Source text → parsed AST, with hit/miss accounting."""

    def __init__(self):
        self._asts: Dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def compile(self, text: str):
        """Parse ``text`` (or return the AST compiled earlier)."""
        node = self._asts.get(text)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = parse(text)
        self._asts[text] = node
        return node

    def stats(self) -> CacheStats:
        return CacheStats(self.hits, self.misses)

    def clear(self) -> None:
        self._asts.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._asts)


_DEFAULT_COMPILE_CACHE = OclCompileCache()


def default_compile_cache() -> OclCompileCache:
    """The process-wide compile cache shared by the library."""
    return _DEFAULT_COMPILE_CACHE


def compile_expression(text: str, cache: Optional[OclCompileCache] = None):
    """Compile ``text`` through ``cache`` (default: the shared cache)."""
    return (cache or _DEFAULT_COMPILE_CACHE).compile(text)


class ExtentCache:
    """Metaclass → ``allInstances`` extent, valid for one model state."""

    def __init__(self):
        self._extents: Dict[object, List] = {}
        self.hits = 0
        self.misses = 0

    def extent(self, resource, metaclass) -> List:
        cached = self._extents.get(metaclass)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = list(resource.objects_of(metaclass))
        self._extents[metaclass] = value
        return value

    def invalidate(self) -> None:
        """Drop the memoized extents (the model changed); keep counters."""
        self._extents.clear()

    def stats(self) -> CacheStats:
        return CacheStats(self.hits, self.misses)
