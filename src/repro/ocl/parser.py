"""Recursive-descent parser for the OCL expression subset.

Grammar (informal, highest line binds loosest)::

    expr        := letExpr | implies
    letExpr     := "let" NAME "=" expr "in" expr
    implies     := orExpr ("implies" orExpr)*
    orExpr      := andExpr (("or" | "xor") andExpr)*
    andExpr     := notExpr ("and" notExpr)*
    notExpr     := "not" notExpr | comparison
    comparison  := additive (("=" | "<>" | "<" | ">" | "<=" | ">=") additive)?
    additive    := multiplicative (("+" | "-") multiplicative)*
    multiplicative := unary (("*" | "/" | "div" | "mod") unary)*
    unary       := "-" unary | postfix
    postfix     := primary (("." NAME callArgs?) | ("->" NAME iterOrArgs))*
    primary     := NUMBER | STRING | "true" | "false" | "null" | "self"
                 | "(" expr ")" | ifExpr | collectionLit | NAME ("::" NAME)* callArgs?
    ifExpr      := "if" expr "then" expr "else" expr "endif"
    collectionLit := ("Set" | "Sequence" | "Bag" | "OrderedSet") "{" [expr ("," expr)*] "}"
    iterOrArgs  := "(" [NAME ("," NAME)? "|"] expr? ("," expr)* ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import OclSyntaxError
from repro.ocl.astnodes import (
    AllInstances,
    Binary,
    CollectionCall,
    CollectionLiteral,
    If,
    IterateCall,
    IteratorCall,
    Let,
    Literal,
    Navigate,
    Node,
    OperationCall,
    Unary,
    Variable,
)
from repro.ocl.lexer import Token, tokenize

#: Collection operations that iterate a body over elements.
ITERATOR_OPERATIONS = frozenset(
    {
        "forAll",
        "exists",
        "select",
        "reject",
        "collect",
        "one",
        "any",
        "isUnique",
        "sortedBy",
        "closure",
    }
)

_COLLECTION_KINDS = ("Set", "Sequence", "Bag", "OrderedSet")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.index = 0

    # -- token utilities ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.at(kind, value):
            want = value or kind
            raise OclSyntaxError(
                f"expected {want!r}, found {self.current.value!r}",
                self.current.position,
                self.text,
            )
        return self.advance()

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Node:
        node = self.expression()
        if self.current.kind != "EOF":
            raise OclSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
                self.text,
            )
        return node

    def expression(self) -> Node:
        if self.at("KEYWORD", "let"):
            return self.let_expression()
        return self.implies_expression()

    def let_expression(self) -> Node:
        start = self.expect("KEYWORD", "let").position
        name = self.expect("NAME").value
        # optional type annotation  let x : Integer = ...
        if self.accept("OP", ":"):
            self.expect("NAME")
        self.expect("OP", "=")
        value = self.expression()
        self.expect("KEYWORD", "in")
        body = self.expression()
        return Let(start, name, value, body)

    def implies_expression(self) -> Node:
        node = self.or_expression()
        while self.at("KEYWORD", "implies"):
            pos = self.advance().position
            node = Binary(pos, "implies", node, self.or_expression())
        return node

    def or_expression(self) -> Node:
        node = self.and_expression()
        while self.at("KEYWORD", "or") or self.at("KEYWORD", "xor"):
            token = self.advance()
            node = Binary(token.position, token.value, node, self.and_expression())
        return node

    def and_expression(self) -> Node:
        node = self.not_expression()
        while self.at("KEYWORD", "and"):
            pos = self.advance().position
            node = Binary(pos, "and", node, self.not_expression())
        return node

    def not_expression(self) -> Node:
        if self.at("KEYWORD", "not"):
            pos = self.advance().position
            return Unary(pos, "not", self.not_expression())
        return self.comparison()

    def comparison(self) -> Node:
        node = self.additive()
        for op in ("=", "<>", "<=", ">=", "<", ">"):
            if self.at("OP", op):
                pos = self.advance().position
                return Binary(pos, op, node, self.additive())
        return node

    def additive(self) -> Node:
        node = self.multiplicative()
        while self.at("OP", "+") or self.at("OP", "-"):
            token = self.advance()
            node = Binary(token.position, token.value, node, self.multiplicative())
        return node

    def multiplicative(self) -> Node:
        node = self.unary()
        while (
            self.at("OP", "*")
            or self.at("OP", "/")
            or self.at("KEYWORD", "div")
            or self.at("KEYWORD", "mod")
        ):
            token = self.advance()
            node = Binary(token.position, token.value, node, self.unary())
        return node

    def unary(self) -> Node:
        if self.at("OP", "-"):
            pos = self.advance().position
            return Unary(pos, "-", self.unary())
        return self.postfix()

    def postfix(self) -> Node:
        node = self.primary()
        while True:
            if self.accept("OP", "."):
                name = self.expect("NAME").value
                if self.at("OP", "("):
                    args = self.call_arguments()
                    if (
                        name == "allInstances"
                        and not args
                        and isinstance(node, Variable)
                    ):
                        node = AllInstances(node.position, node.name)
                    else:
                        node = OperationCall(node.position, node, name, tuple(args))
                else:
                    node = Navigate(node.position, node, name)
                continue
            if self.accept("OP", "->"):
                name = self.expect("NAME").value
                node = self.arrow_call(node, name)
                continue
            break
        return node

    def arrow_call(self, source: Node, name: str) -> Node:
        if name == "iterate":
            return self.iterate_call(source)
        self.expect("OP", "(")
        if self.accept("OP", ")"):
            if name in ITERATOR_OPERATIONS:
                raise OclSyntaxError(
                    f"iterator operation {name!r} needs a body", self.current.position
                )
            return CollectionCall(source.position, source, name, ())
        variables = self.maybe_iterator_variables()
        if name in ITERATOR_OPERATIONS:
            body = self.expression()
            self.expect("OP", ")")
            if not variables:
                variables = ("__implicit__",)
            return IteratorCall(source.position, source, name, variables, body)
        if variables:
            raise OclSyntaxError(
                f"collection operation {name!r} does not take iterator variables",
                self.current.position,
            )
        args = [self.expression()]
        while self.accept("OP", ","):
            args.append(self.expression())
        self.expect("OP", ")")
        return CollectionCall(source.position, source, name, tuple(args))

    def iterate_call(self, source: Node) -> Node:
        """``->iterate(v; acc = init | body)`` (type annotations allowed)."""
        self.expect("OP", "(")
        variable = self.expect("NAME").value
        if self.accept("OP", ":"):
            self.expect("NAME")
        self.expect("OP", ";")
        accumulator = self.expect("NAME").value
        if self.accept("OP", ":"):
            self.expect("NAME")
        self.expect("OP", "=")
        init = self.expression()
        self.expect("OP", "|")
        body = self.expression()
        self.expect("OP", ")")
        return IterateCall(source.position, source, variable, accumulator, init, body)

    def maybe_iterator_variables(self) -> Tuple[str, ...]:
        """Detect ``v |`` or ``v1, v2 |`` prefixes via backtracking."""
        checkpoint = self.index
        names = []
        if self.at("NAME"):
            names.append(self.advance().value)
            # optional type annotation
            if self.accept("OP", ":"):
                if not self.accept("NAME"):
                    self.index = checkpoint
                    return ()
            if self.accept("OP", ","):
                if self.at("NAME"):
                    names.append(self.advance().value)
                    if self.accept("OP", ":"):
                        if not self.accept("NAME"):
                            self.index = checkpoint
                            return ()
                else:
                    self.index = checkpoint
                    return ()
            if self.accept("OP", "|"):
                return tuple(names)
        self.index = checkpoint
        return ()

    def call_arguments(self) -> List[Node]:
        self.expect("OP", "(")
        args: List[Node] = []
        if not self.at("OP", ")"):
            args.append(self.expression())
            while self.accept("OP", ","):
                args.append(self.expression())
        self.expect("OP", ")")
        return args

    def primary(self) -> Node:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(token.position, value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.position, token.value)
        if token.kind == "KEYWORD":
            if token.value == "true":
                self.advance()
                return Literal(token.position, True)
            if token.value == "false":
                self.advance()
                return Literal(token.position, False)
            if token.value == "null":
                self.advance()
                return Literal(token.position, None)
            if token.value == "self":
                self.advance()
                return Variable(token.position, "self")
            if token.value == "if":
                return self.if_expression()
            if token.value in _COLLECTION_KINDS:
                return self.collection_literal()
        if self.accept("OP", "("):
            node = self.expression()
            self.expect("OP", ")")
            return node
        if token.kind == "NAME":
            self.advance()
            name = token.value
            while self.at("OP", "::"):
                self.advance()
                name += "::" + self.expect("NAME").value
            if self.at("OP", "("):
                args = self.call_arguments()
                return OperationCall(token.position, None, name, tuple(args))
            return Variable(token.position, name)
        raise OclSyntaxError(
            f"unexpected token {token.value!r}", token.position, self.text
        )

    def if_expression(self) -> Node:
        start = self.expect("KEYWORD", "if").position
        condition = self.expression()
        self.expect("KEYWORD", "then")
        then = self.expression()
        self.expect("KEYWORD", "else")
        otherwise = self.expression()
        self.expect("KEYWORD", "endif")
        return If(start, condition, then, otherwise)

    def collection_literal(self) -> Node:
        token = self.advance()  # Set / Sequence / Bag / OrderedSet
        if not self.at("OP", "{"):
            # e.g. `Set` used as plain name (unlikely); treat as variable
            return Variable(token.position, token.value)
        self.advance()
        items: List[Node] = []
        if not self.at("OP", "}"):
            items.append(self.expression())
            while self.accept("OP", ","):
                items.append(self.expression())
        self.expect("OP", "}")
        return CollectionLiteral(token.position, token.value, tuple(items))


def parse(text: str) -> Node:
    """Parse OCL expression ``text`` into an AST."""
    return _Parser(text).parse()
