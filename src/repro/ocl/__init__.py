"""S3 — An OCL expression language for model constraints.

The paper prescribes OCL as "the obvious choice" for expressing the pre-
and postconditions of model transformations on UML models.  This package
implements the OCL expression core from scratch:

* a lexer and recursive-descent parser (:mod:`repro.ocl.parser`) producing
  an AST (:mod:`repro.ocl.astnodes`),
* an evaluator (:mod:`repro.ocl.evaluator`) over S1 model objects with the
  standard collection operations (``forAll``, ``exists``, ``select``,
  ``collect``, ``sortedBy`` ...), string and arithmetic operations,
  ``oclIsKindOf``/``oclIsTypeOf``/``oclAsType``, ``allInstances()`` and a
  navigation extension ``oclContainer()``.

Quick use::

    from repro.ocl import OclContext, evaluate

    ctx = OclContext(resource=res, types={"Class": UML.Class})
    ok = evaluate("Class.allInstances()->forAll(c | c.name <> '')", ctx)
"""

from repro.ocl.parser import parse
from repro.ocl.evaluator import OclContext, evaluate, Undefined, UNDEFINED
from repro.ocl.cache import (
    CacheStats,
    ExtentCache,
    OclCompileCache,
    compile_expression,
    default_compile_cache,
)

__all__ = [
    "parse",
    "evaluate",
    "OclContext",
    "Undefined",
    "UNDEFINED",
    "CacheStats",
    "ExtentCache",
    "OclCompileCache",
    "compile_expression",
    "default_compile_cache",
]
