"""S7 — Workflow-guided refinement (Section 3 requirement).

    "A workflow model could track the refinement of a PIM or PSM through
    transformations. The workflow model could define which generic
    transformations can be applied at a certain refinement step, and
    therefore could determine the allowed sequence of transformations."

* :class:`~repro.workflow.model.WorkflowModel` — precedence-constrained
  steps over concern names; validates and enumerates allowed sequences;
* :class:`~repro.workflow.guidance.RefinementGuide` — combines the
  workflow with the demarcation table into the covered/next/remaining
  report the paper sketches;
* :class:`~repro.workflow.wizard.ConcernWizard` — the "concern-oriented
  wizard": question list derived from a GMT's parameter signature, answer
  validation into a ``ParameterSet``.
"""

from repro.workflow.model import WorkflowModel, WorkflowStep
from repro.workflow.guidance import RefinementGuide
from repro.workflow.wizard import ConcernWizard, PlanWizard, WizardQuestion

__all__ = [
    "WorkflowModel",
    "WorkflowStep",
    "RefinementGuide",
    "ConcernWizard",
    "PlanWizard",
    "WizardQuestion",
]
