"""Concern-oriented wizards (Section 3 requirement).

    "Concern-oriented wizards for configuring the generic model
    transformations along a concern-dimension."

A :class:`ConcernWizard` derives its question list from a generic
transformation's parameter signature, so tool UIs (or tests) drive
configuration without knowing the concern; answers are validated into the
``ParameterSet`` handed to ``specialize``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError
from repro.core.parameters import ParameterSet
from repro.core.transformation import GenericTransformation


@dataclass(frozen=True)
class WizardQuestion:
    """One question the wizard asks the developer."""

    name: str
    prompt: str
    required: bool
    many: bool
    default: object
    choices: Optional[Tuple]

    def render(self) -> str:
        bits = [self.prompt]
        if self.choices:
            bits.append(f"one of {list(self.choices)}")
        if self.default is not None:
            bits.append(f"default: {self.default!r}")
        if not self.required or self.default is not None:
            bits.append("optional")
        return f"{self.name}: " + "; ".join(bits)


class ConcernWizard:
    """Question/answer configuration of one generic transformation."""

    def __init__(self, gmt: GenericTransformation):
        self.gmt = gmt

    @property
    def concern_name(self) -> str:
        return self.gmt.concern.name

    def questions(self) -> List[WizardQuestion]:
        out = []
        for parameter in self.gmt.signature:
            prompt = parameter.description or f"value for {parameter.name}"
            out.append(
                WizardQuestion(
                    name=parameter.name,
                    prompt=prompt,
                    required=parameter.required and parameter.default is None,
                    many=parameter.many,
                    default=parameter.default,
                    choices=parameter.choices,
                )
            )
        return out

    def missing(self, answers: Dict[str, object]) -> List[str]:
        """Required questions not answered yet."""
        return [
            q.name
            for q in self.questions()
            if q.required and q.name not in answers
        ]

    def collect(self, answers: Dict[str, object]) -> ParameterSet:
        """Validate the answers into the parameter set ``Si``."""
        missing = self.missing(answers)
        if missing:
            raise ParameterError(
                f"wizard for {self.concern_name!r} still needs answers for {missing}"
            )
        return self.gmt.signature.bind(**answers)

    def specialize(self, answers: Dict[str, object]):
        """Collect answers and return the concrete transformation."""
        return self.gmt.specialize(self.collect(answers))

    def transcript(self) -> str:
        """The full question list as text (what a UI would display)."""
        lines = [f"configuring concern {self.concern_name!r}:"]
        lines.extend(f"  - {q.render()}" for q in self.questions())
        return "\n".join(lines)
