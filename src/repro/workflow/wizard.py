"""Concern-oriented wizards (Section 3 requirement).

    "Concern-oriented wizards for configuring the generic model
    transformations along a concern-dimension."

A :class:`ConcernWizard` derives its question list from a generic
transformation's parameter signature, so tool UIs (or tests) drive
configuration without knowing the concern; answers are validated into the
``ParameterSet`` handed to ``specialize``.

A :class:`PlanWizard` chains concern wizards across several concern
dimensions and emits the resulting
:class:`~repro.pipeline.plan.ConfigurationPlan` — the wizard UI's exit
into the plan → schedule → execute pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError, PlanError
from repro.core.parameters import ParameterSet
from repro.core.transformation import GenericTransformation


@dataclass(frozen=True)
class WizardQuestion:
    """One question the wizard asks the developer."""

    name: str
    prompt: str
    required: bool
    many: bool
    default: object
    choices: Optional[Tuple]

    def render(self) -> str:
        bits = [self.prompt]
        if self.choices:
            bits.append(f"one of {list(self.choices)}")
        if self.default is not None:
            bits.append(f"default: {self.default!r}")
        if not self.required or self.default is not None:
            bits.append("optional")
        return f"{self.name}: " + "; ".join(bits)


class ConcernWizard:
    """Question/answer configuration of one generic transformation."""

    def __init__(self, gmt: GenericTransformation):
        self.gmt = gmt

    @property
    def concern_name(self) -> str:
        return self.gmt.concern.name

    def questions(self) -> List[WizardQuestion]:
        out = []
        for parameter in self.gmt.signature:
            prompt = parameter.description or f"value for {parameter.name}"
            out.append(
                WizardQuestion(
                    name=parameter.name,
                    prompt=prompt,
                    required=parameter.required and parameter.default is None,
                    many=parameter.many,
                    default=parameter.default,
                    choices=parameter.choices,
                )
            )
        return out

    def missing(self, answers: Dict[str, object]) -> List[str]:
        """Required questions not answered yet."""
        return [
            q.name
            for q in self.questions()
            if q.required and q.name not in answers
        ]

    def collect(self, answers: Dict[str, object]) -> ParameterSet:
        """Validate the answers into the parameter set ``Si``."""
        missing = self.missing(answers)
        if missing:
            raise ParameterError(
                f"wizard for {self.concern_name!r} still needs answers for {missing}"
            )
        return self.gmt.signature.bind(**answers)

    def specialize(self, answers: Dict[str, object]):
        """Collect answers and return the concrete transformation."""
        return self.gmt.specialize(self.collect(answers))

    def transcript(self) -> str:
        """The full question list as text (what a UI would display)."""
        lines = [f"configuring concern {self.concern_name!r}:"]
        lines.extend(f"  - {q.render()}" for q in self.questions())
        return "\n".join(lines)


class PlanWizard:
    """Configure several concern dimensions into a ConfigurationPlan.

    The multi-concern analogue of :class:`ConcernWizard`: each
    :meth:`answer` call validates one concern's answers through its
    wizard (so bad parameter sets fail at configuration time, not at
    application time) and records the selection; :meth:`build_plan`
    emits the pipeline's :class:`~repro.pipeline.plan.ConfigurationPlan`
    in answer order.
    """

    def __init__(self, registry, workflow=None):
        self.registry = registry
        self.workflow = workflow
        self._answers: List[Tuple[str, Dict[str, object], Tuple[str, ...]]] = []

    def wizard_for(self, concern_name: str) -> ConcernWizard:
        return ConcernWizard(self.registry.get(concern_name))

    def questions_for(self, concern_name: str) -> List[WizardQuestion]:
        return self.wizard_for(concern_name).questions()

    @property
    def configured_concerns(self) -> List[str]:
        return [concern for concern, _, _ in self._answers]

    def answer(
        self, concern_name: str, after: Tuple[str, ...] = (), **answers
    ) -> "PlanWizard":
        """Validate one concern's answers and record the selection; chainable."""
        if concern_name in self.configured_concerns:
            raise PlanError(f"concern {concern_name!r} is already configured")
        if self.workflow is not None and self.workflow.step(concern_name) is None:
            raise PlanError(
                f"the workflow has no step for concern {concern_name!r}"
            )
        # validation only: the plan re-binds at apply time
        self.wizard_for(concern_name).collect(answers)
        self._answers.append((concern_name, dict(answers), tuple(after)))
        return self

    def build_plan(self):
        """The accumulated selections as a ConfigurationPlan.

        With a workflow, every configured concern's prerequisites must
        also be configured — caught here, at configuration time, rather
        than when the plan is scheduled.
        """
        from repro.pipeline import ConfigurationPlan

        if self.workflow is not None:
            configured = set(self.configured_concerns)
            for concern in self.configured_concerns:
                missing = self.workflow.step(concern).requires - configured
                if missing:
                    raise PlanError(
                        f"concern {concern!r} requires {sorted(missing)} "
                        "which the wizard has not configured"
                    )
        plan = ConfigurationPlan()
        for concern, answers, after in self._answers:
            plan.select(concern, after=after, **answers)
        return plan

    def transcript(self) -> str:
        """Question lists for every registered concern, in registry order."""
        parts = [
            self.wizard_for(concern).transcript()
            for concern in self.registry.concerns()
        ]
        return "\n\n".join(parts)
