"""Developer guidance: covered concerns, allowed next steps, remaining work.

Renders the association list the paper asks for — which color/concern
introduced which elements, what has been covered, and "a list of the
remaining concerns [to] give the developer an idea of what further
refinements s/he needs to perform".
"""

from __future__ import annotations

from typing import List, Sequence

from repro.repository.demarcation import DemarcationTable
from repro.workflow.model import WorkflowModel


class RefinementGuide:
    """Combines the workflow model with the demarcation table."""

    def __init__(self, workflow: WorkflowModel, demarcation: DemarcationTable):
        self.workflow = workflow
        self.demarcation = demarcation

    def covered(self) -> List[str]:
        return self.demarcation.covered_concerns()

    def allowed_next(self, history: Sequence[str]) -> List[str]:
        return self.workflow.allowed_next(history)

    def remaining(self, history: Sequence[str]) -> List[str]:
        return self.workflow.remaining(history)

    def report(self, history: Sequence[str]) -> str:
        """The paper's guidance panel as plain text."""
        legend = self.demarcation.legend()
        lines = ["refinement guidance:"]
        lines.append("  covered concerns:")
        if legend:
            for concern, color in legend.items():
                count = len(self.demarcation.elements_of(concern))
                lines.append(f"    [{color:>7}] {concern} ({count} element(s))")
        else:
            lines.append("    (none yet)")
        allowed = self.allowed_next(history)
        lines.append(
            "  allowed next: " + (", ".join(allowed) if allowed else "(none)")
        )
        remaining = self.remaining(history)
        lines.append(
            "  remaining:    " + (", ".join(remaining) if remaining else "(none)")
        )
        if self.workflow.is_complete(history):
            lines.append("  refinement complete — ready for code generation")
        return "\n".join(lines)
