"""The workflow model: which concern may refine the model when.

A workflow is a set of steps, one per concern, each with a set of
prerequisite concerns.  The model answers "is this transformation allowed
now?", enumerates what may come next, and can exhaustively list every
legal complete sequence (used by tests and the workflow benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import IllegalStepError, WorkflowError


@dataclass(frozen=True)
class WorkflowStep:
    """One refinement step: a concern plus its prerequisites."""

    concern: str
    requires: FrozenSet[str] = frozenset()
    optional: bool = False


class WorkflowModel:
    """Precedence-constrained refinement steps over concern names."""

    def __init__(self):
        self._steps: Dict[str, WorkflowStep] = {}

    def add_step(
        self, concern: str, requires: Iterable[str] = (), optional: bool = False
    ) -> WorkflowStep:
        if concern in self._steps:
            raise WorkflowError(f"workflow already has a step for {concern!r}")
        step = WorkflowStep(concern, frozenset(requires), optional)
        self._steps[concern] = step
        return step

    def validate(self) -> None:
        """Check that prerequisites refer to known steps and are acyclic."""
        for step in self._steps.values():
            unknown = step.requires - set(self._steps)
            if unknown:
                raise WorkflowError(
                    f"step {step.concern!r} requires unknown step(s) {sorted(unknown)}"
                )
        if not self.complete_sequences(limit=1):
            raise WorkflowError("workflow has no legal complete sequence (cycle?)")

    # -- queries -------------------------------------------------------------

    @property
    def concerns(self) -> List[str]:
        return list(self._steps)

    def step(self, concern: str) -> "WorkflowStep | None":
        """The step for ``concern``, or None if the workflow has none."""
        return self._steps.get(concern)

    def is_allowed(self, concern: str, history: Sequence[str]) -> bool:
        """May ``concern`` be applied after the given application history?"""
        step = self._steps.get(concern)
        if step is None:
            return False
        if concern in history:
            return False  # each concern-dimension is refined once
        return step.requires <= set(history)

    def check_allowed(self, concern: str, history: Sequence[str]) -> None:
        if not self.is_allowed(concern, history):
            step = self._steps.get(concern)
            if step is None:
                raise IllegalStepError(f"workflow has no step for {concern!r}")
            if concern in history:
                raise IllegalStepError(f"concern {concern!r} was already applied")
            missing = sorted(step.requires - set(history))
            raise IllegalStepError(
                f"concern {concern!r} requires {missing} to be applied first"
            )

    def allowed_next(self, history: Sequence[str]) -> List[str]:
        return [c for c in self._steps if self.is_allowed(c, history)]

    def remaining(self, history: Sequence[str]) -> List[str]:
        return [c for c in self._steps if c not in history]

    def is_complete(self, history: Sequence[str]) -> bool:
        done = set(history)
        return all(
            step.optional or step.concern in done for step in self._steps.values()
        )

    def complete_sequences(self, limit: int = 1000) -> List[Tuple[str, ...]]:
        """Every legal order covering all mandatory steps (bounded)."""
        results: List[Tuple[str, ...]] = []

        def extend(history: Tuple[str, ...]):
            if len(results) >= limit:
                return
            if self.is_complete(history):
                results.append(history)
                return
            for concern in self.allowed_next(history):
                extend(history + (concern,))

        extend(())
        return results
