"""Exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by this library."""


# ---------------------------------------------------------------------------
# Metamodel kernel (S1)
# ---------------------------------------------------------------------------


class MetamodelError(ReproError):
    """Malformed metamodel definition (duplicate feature, bad opposite, ...)."""


class ModelError(ReproError):
    """Illegal operation on a model instance."""


class TypeConformanceError(ModelError):
    """A value does not conform to the declared type of a feature."""


class MultiplicityError(ModelError):
    """A feature's multiplicity constraint is violated."""


class ContainmentError(ModelError):
    """Containment invariants violated (cycle, double containment, ...)."""


class ValidationError(ModelError):
    """Raised by the validator when a model breaks well-formedness rules.

    Carries the full list of diagnostics in :attr:`diagnostics`.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        summary = "; ".join(str(d) for d in self.diagnostics[:5])
        if len(self.diagnostics) > 5:
            summary += f"; ... ({len(self.diagnostics) - 5} more)"
        super().__init__(f"model validation failed: {summary}")


# ---------------------------------------------------------------------------
# OCL (S3)
# ---------------------------------------------------------------------------


class OclError(ReproError):
    """Base class for OCL failures."""


class OclSyntaxError(OclError):
    """The expression text could not be tokenized or parsed."""

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class OclEvaluationError(OclError):
    """The expression is syntactically valid but failed to evaluate."""


class OclTypeError(OclEvaluationError):
    """An OCL operation was applied to a value of the wrong type."""


class OclNameError(OclEvaluationError):
    """An unknown variable, feature, or operation name was referenced."""


# ---------------------------------------------------------------------------
# XMI (S4)
# ---------------------------------------------------------------------------


class XmiError(ReproError):
    """Base class for XMI serialization failures."""


class XmiWriteError(XmiError):
    """The model could not be serialized."""


class XmiReadError(XmiError):
    """The document is not a well-formed XMI model for the given metamodel."""


# ---------------------------------------------------------------------------
# Repository (S5)
# ---------------------------------------------------------------------------


class RepositoryError(ReproError):
    """Base class for repository failures."""


class NoSuchVersionError(RepositoryError):
    """A requested version id does not exist in the repository."""


class NothingToUndoError(RepositoryError):
    """Undo was requested but the undo stack is empty."""


class NothingToRedoError(RepositoryError):
    """Redo was requested but the redo stack is empty."""


# ---------------------------------------------------------------------------
# Transformation engine (S6) and core (S12)
# ---------------------------------------------------------------------------


class TransformationError(ReproError):
    """Base class for transformation failures."""


class ParameterError(TransformationError):
    """A parameter set does not satisfy a transformation's signature."""


class PreconditionViolation(TransformationError):
    """A specialized precondition evaluated to false; model left untouched."""

    def __init__(self, condition, message=None):
        self.condition = condition
        super().__init__(message or f"precondition failed: {condition}")


class PostconditionViolation(TransformationError):
    """A specialized postcondition evaluated to false after application."""

    def __init__(self, condition, message=None):
        self.condition = condition
        super().__init__(message or f"postcondition failed: {condition}")


class SpecializationError(TransformationError):
    """A generic artifact could not be specialized with the given Si."""


# ---------------------------------------------------------------------------
# Configuration pipeline (S13)
# ---------------------------------------------------------------------------


class PipelineError(ReproError):
    """Base class for configuration-pipeline failures (plan/schedule/execute)."""


class PlanError(PipelineError):
    """A configuration plan is malformed (duplicate/unknown concern, ...)."""


class SchedulingError(PipelineError):
    """The plan cannot be scheduled (precedence cycle, unknown dependency)."""


class BatchExecutionError(PipelineError):
    """A transformation failed mid-batch; the batch was rolled back.

    ``step`` names the failing transformation, ``batch_index`` the batch,
    and ``__cause__`` carries the original error.
    """

    def __init__(self, step, batch_index, cause=None):
        self.step = step
        self.batch_index = batch_index
        #: set by the executor: the PipelineResult of the batches that
        #: completed (and were committed) before this one failed
        self.partial_result = None
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"transformation {step!r} failed in batch {batch_index}; "
            f"the batch was rolled back to its savepoint{detail}"
        )


# ---------------------------------------------------------------------------
# Workflow (S7)
# ---------------------------------------------------------------------------


class WorkflowError(ReproError):
    """Base class for workflow failures."""


class IllegalStepError(WorkflowError):
    """A transformation was attempted that the workflow does not allow yet."""


# ---------------------------------------------------------------------------
# AOP substrate (S8)
# ---------------------------------------------------------------------------


class AopError(ReproError):
    """Base class for AOP substrate failures."""


class PointcutSyntaxError(AopError):
    """A pointcut expression could not be parsed."""


class WeavingError(AopError):
    """Weaving could not be performed (missing target, double weave, ...)."""


# ---------------------------------------------------------------------------
# Code generation (S9)
# ---------------------------------------------------------------------------


class CodegenError(ReproError):
    """Code or aspect generation failed."""


# ---------------------------------------------------------------------------
# Middleware substrate (S10)
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base class for middleware substrate failures."""


class NamingError(MiddlewareError):
    """Name not found / already bound in the naming service."""


class MarshallingError(MiddlewareError):
    """A value could not be (un)marshalled for transport."""


class RemoteInvocationError(MiddlewareError):
    """An RPC failed (unknown object, unknown operation, injected fault)."""


class InvocationTimeout(MiddlewareError):
    """An asynchronous reply did not arrive within the QoS timeout."""


class TransportError(MiddlewareError):
    """A transport refused an envelope (shut down, malformed policy, ...)."""


class ProtocolError(TransportError):
    """A wire frame violated the framing protocol.

    Raised by the sans-IO frame decoder for garbage headers, unknown
    protocol versions, oversized frames, and truncated or undecodable
    payloads.  A protocol error poisons its *connection*, never the
    peer: socket transports drop the connection and surface the routed
    call's failure through the normal transport-fault path.
    """


class NodeDownError(TransportError):
    """The target federation node is dead (killed or unreachable).

    ``pre_effect`` distinguishes the fail-stop case every routed call can
    recover from: the fault was raised *before* the servant dispatched,
    so re-delivering the envelope cannot duplicate effects.  The
    federation raises it at the routing terminal (always pre-effect);
    the failover interceptor promotes a standby and the transport retry
    budget re-delivers, re-resolving the owner.

    ``mid_call`` marks the ambiguous wire case: the request frame was
    fully written but the reply never arrived (disconnect or timeout
    after send).  The peer may have executed the effect, so transports
    raise it with ``pre_effect=False`` — not retryable as-is.  Only the
    failover element may upgrade it to pre-effect, and only after
    confirming the node actually died: under fail-stop the unacked
    effect perished with the node and promotion restored the standby
    snapshot, so re-delivery cannot duplicate it.
    """

    def __init__(
        self,
        message: str,
        node: str = "",
        pre_effect: bool = True,
        mid_call: bool = False,
    ):
        self.node = node
        self.pre_effect = pre_effect
        self.mid_call = mid_call
        super().__init__(message)


class TransactionError(MiddlewareError):
    """Base class for transaction manager failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back; carries the abort reason."""

    def __init__(self, txid, reason):
        self.txid = txid
        self.reason = reason
        super().__init__(f"transaction {txid} aborted: {reason}")


class NoTransactionError(TransactionError):
    """A transactional operation was attempted outside any transaction."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired before the configured timeout."""


class DeadlockError(TransactionError):
    """The lock manager detected a deadlock and chose this caller as victim."""


# ---------------------------------------------------------------------------
# Distributed runtime (S14)
# ---------------------------------------------------------------------------


class FederationError(MiddlewareError):
    """Illegal federation topology or routing failure (no nodes, bad shard)."""


# ---------------------------------------------------------------------------
# Declarative deployment (S17)
# ---------------------------------------------------------------------------


class DeploymentError(ReproError):
    """A deployment spec is invalid, uncompilable, or undiffable.

    Raised by :meth:`~repro.deploy.DeploymentSpec.validate` for
    referential-integrity violations (unknown node in a partition,
    replica count >= node count, duplicate servant names, ...), by the
    compiler when a spec cannot be materialized, and by the reconciler
    for topology changes that have no migration path (e.g. a changed
    application, which requires a redeploy rather than a diff)."""


class ScenarioError(ReproError):
    """A scenario specification or run is malformed (unknown scenario, ...)."""


class SecurityError(MiddlewareError):
    """Base class for security service failures."""


class AuthenticationError(SecurityError):
    """Credentials were missing or invalid."""


class AccessDeniedError(SecurityError):
    """An authenticated principal lacks the permission for an action."""
