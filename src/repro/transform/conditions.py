"""OCL-backed pre/postconditions of transformations.

The paper: *"Each generic transformation may define a set of pre- and
postconditions.  A configuration of a generic transformation not only
specializes the transformation, but also specializes these conditions."*

Specialization here is by *binding*: a condition is written once against
the generic parameter names, and the concrete transformation's parameter
set ``Si`` is injected as OCL variables at evaluation time.  A condition
over ``server_classes`` (a parameter) therefore checks exactly the
application-specific classes the developer configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import OclError, TransformationError
from repro.metamodel.instances import ModelResource
from repro.metamodel.kernel import MetaClass
from repro.ocl import OclContext, compile_expression, evaluate


@dataclass
class Condition:
    """One named OCL constraint evaluated against the whole model."""

    name: str
    expression: str
    description: str = ""
    _ast: object = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        # Compile eagerly: a syntactically broken condition is a definition
        # error, found when the generic transformation is authored.  The
        # shared compile cache deduplicates identical expression text
        # across conditions (and across pipeline runs).
        self._ast = compile_expression(self.expression)

    def evaluate(
        self,
        resource: ModelResource,
        types: Dict[str, MetaClass],
        parameters: Optional[Dict[str, object]] = None,
        extent_cache=None,
    ) -> bool:
        context = OclContext(
            resource=resource,
            types=types,
            variables=dict(parameters or {}),
            extent_cache=extent_cache,
        )
        try:
            result = evaluate(self._ast, context)
        except OclError as exc:
            raise TransformationError(
                f"condition {self.name!r} failed to evaluate: {exc}"
            ) from exc
        if not isinstance(result, bool):
            raise TransformationError(
                f"condition {self.name!r} must yield Boolean, got {result!r}"
            )
        return result


class ConditionSet:
    """An ordered set of conditions; reports every violation, not just the first."""

    def __init__(self, conditions: Optional[List[Condition]] = None):
        self.conditions: List[Condition] = list(conditions or [])

    def add(self, name: str, expression: str, description: str = "") -> Condition:
        condition = Condition(name, expression, description)
        self.conditions.append(condition)
        return condition

    def violations(
        self,
        resource: ModelResource,
        types: Dict[str, MetaClass],
        parameters: Optional[Dict[str, object]] = None,
        extent_cache=None,
    ) -> List[Condition]:
        return [
            condition
            for condition in self.conditions
            if not condition.evaluate(resource, types, parameters, extent_cache)
        ]

    def __iter__(self):
        return iter(self.conditions)

    def __len__(self):
        return len(self.conditions)
