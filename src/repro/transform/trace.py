"""Traceability links: which rule created/modified what, from what.

Trace links answer the shipping/reuse questions the paper raises in its
closing discussion (which intermediate elements came from which
transformation) and feed the aspect generators, which need to know the
concrete model elements a transformation produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.metamodel.instances import MObject


@dataclass(frozen=True)
class TraceLink:
    """One provenance record."""

    transformation: str
    rule: str
    sources: Tuple[MObject, ...]
    targets: Tuple[MObject, ...]
    note: str = ""


class TraceLog:
    """Append-only store of trace links with simple queries."""

    def __init__(self):
        self.links: List[TraceLink] = []

    def record(
        self,
        transformation: str,
        rule: str,
        sources=(),
        targets=(),
        note: str = "",
    ) -> TraceLink:
        link = TraceLink(
            transformation, rule, tuple(sources), tuple(targets), note
        )
        self.links.append(link)
        return link

    def by_transformation(self, name: str) -> List[TraceLink]:
        return [link for link in self.links if link.transformation == name]

    def targets_of(self, source: MObject) -> List[MObject]:
        """Everything recorded as created/derived from ``source``."""
        out: List[MObject] = []
        for link in self.links:
            if any(s is source for s in link.sources):
                out.extend(link.targets)
        return out

    def sources_of(self, target: MObject) -> List[MObject]:
        out: List[MObject] = []
        for link in self.links:
            if any(t is target for t in link.targets):
                out.extend(link.sources)
        return out

    def created_by(self, transformation: str) -> List[MObject]:
        out: List[MObject] = []
        for link in self.by_transformation(transformation):
            out.extend(link.targets)
        return out

    def __len__(self):
        return len(self.links)
