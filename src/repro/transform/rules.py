"""Transformation rules and their execution context.

A rule is a named unit of model refinement.  Rule bodies are Python
callables receiving a :class:`TransformationContext` — the idiom of
imperative model-transformation languages (Kermeta, EOL): declarative OCL
for *querying* and gating, imperative bodies for *building*.

The context gives rules the model, the concrete parameter values (``Si``),
an OCL query helper bound to the model, and trace recording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import TransformationError
from repro.metamodel.instances import MObject, ModelResource
from repro.metamodel.kernel import MetaClass
from repro.ocl import OclContext, evaluate
from repro.transform.trace import TraceLog


class TransformationContext:
    """Everything a rule body needs while refining the model."""

    def __init__(
        self,
        resource: ModelResource,
        parameters: Dict[str, object],
        types: Dict[str, MetaClass],
        trace: Optional[TraceLog] = None,
        transformation_name: str = "<anonymous>",
    ):
        self.resource = resource
        self.parameters = dict(parameters)
        self.types = types
        self.trace = trace if trace is not None else TraceLog()
        self.transformation_name = transformation_name
        self._current_rule = "<setup>"

    @property
    def model(self) -> MObject:
        """The first root of the resource (the UML Model in practice)."""
        roots = self.resource.roots
        if not roots:
            raise TransformationError("resource has no roots")
        return roots[0]

    def param(self, name: str, default=None):
        return self.parameters.get(name, default)

    def require_param(self, name: str):
        if name not in self.parameters:
            raise TransformationError(
                f"transformation {self.transformation_name!r} needs parameter {name!r}"
            )
        return self.parameters[name]

    # -- OCL helpers ---------------------------------------------------------

    def ocl(self, expression: str, self_object=None, **variables):
        """Evaluate an OCL expression against the model, with ``Si`` bound."""
        merged = dict(self.parameters)
        merged.update(variables)
        context = OclContext(
            resource=self.resource,
            types=self.types,
            variables=merged,
            self_object=self_object,
        )
        return evaluate(expression, context)

    def select(self, expression: str, **variables) -> List[MObject]:
        """Evaluate an OCL expression expected to yield a collection."""
        result = self.ocl(expression, **variables)
        if not isinstance(result, list):
            raise TransformationError(
                f"expected a collection from {expression!r}, got {result!r}"
            )
        return result

    # -- tracing ----------------------------------------------------------------

    def record(self, sources: Iterable = (), targets: Iterable = (), note: str = ""):
        return self.trace.record(
            self.transformation_name, self._current_rule, sources, targets, note
        )


@dataclass(frozen=True)
class Rule:
    """A named refinement step."""

    name: str
    body: Callable[[TransformationContext], None]
    description: str = ""

    def apply(self, ctx: TransformationContext) -> None:
        previous = ctx._current_rule
        ctx._current_rule = self.name
        try:
            self.body(ctx)
        finally:
            ctx._current_rule = previous


class RuleSequence:
    """An ordered list of rules executed as one transformation body."""

    def __init__(self, rules: Optional[List[Rule]] = None):
        self.rules: List[Rule] = list(rules or [])

    def add(self, name: str, body: Callable, description: str = "") -> Rule:
        rule = Rule(name, body, description)
        self.rules.append(rule)
        return rule

    def rule(self, name: str, description: str = ""):
        """Decorator form: ``@rules.rule("create-proxies")``."""

        def register(fn: Callable) -> Callable:
            self.add(name, fn, description)
            return fn

        return register

    def apply_all(self, ctx: TransformationContext) -> None:
        for rule in self.rules:
            rule.apply(ctx)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)
