"""The transformation engine: gate, apply, verify, trace, demarcate.

The engine consumes any object satisfying the *transformation spec*
protocol (duck-typed; :class:`repro.core.ConcreteTransformation` is the
canonical implementation):

* ``name`` — display name,
* ``concern`` — concern name (used for demarcation painting),
* ``parameters`` — the concrete parameter values (``Si``),
* ``preconditions`` / ``postconditions`` — :class:`ConditionSet`,
* ``rules`` — :class:`RuleSequence`.

Application is atomic: precondition violations leave the model untouched;
rule exceptions and postcondition violations roll the repository
transaction back before the error propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    PostconditionViolation,
    PreconditionViolation,
)
from repro.metamodel.kernel import MetaClass
from repro.ocl.evaluator import types_from_package
from repro.repository import ModelRepository
from repro.transform.trace import TraceLog
from repro.transform.rules import TransformationContext
from repro.uml.metamodel import UML


@dataclass
class ApplicationResult:
    """Outcome of one transformation application."""

    transformation: str
    concern: str
    parameters: Dict[str, object]
    created_elements: int
    trace_links: int
    duration_s: float
    preconditions_checked: int
    postconditions_checked: int


class TransformationEngine:
    """Applies concrete transformations to the repository's model."""

    def __init__(
        self,
        repository: ModelRepository,
        types: Optional[Dict[str, MetaClass]] = None,
        check_preconditions: bool = True,
        check_postconditions: bool = True,
        record_trace: bool = True,
    ):
        self.repository = repository
        self.types = types if types is not None else types_from_package(UML.package)
        self.check_preconditions = check_preconditions
        self.check_postconditions = check_postconditions
        self.record_trace = record_trace
        self.trace = TraceLog()
        self.applications: List[ApplicationResult] = []

    def apply(self, transformation) -> ApplicationResult:
        """Apply one concrete transformation atomically."""
        resource = self.repository.resource
        parameters = dict(transformation.parameters)
        started = time.perf_counter()

        mapping_kind = getattr(transformation, "mapping_kind", None)
        if mapping_kind is not None and resource.roots:
            from repro.transform.mappings import check_mapping_applicable

            check_mapping_applicable(mapping_kind, resource.roots[0])

        if self.check_preconditions:
            violated = transformation.preconditions.violations(
                resource, self.types, parameters
            )
            if violated:
                first = violated[0]
                raise PreconditionViolation(
                    first.name,
                    f"precondition(s) of {transformation.name!r} violated: "
                    + "; ".join(
                        f"{c.name}: {c.description or c.expression}" for c in violated
                    ),
                )

        trace = self.trace if self.record_trace else TraceLog()
        ctx = TransformationContext(
            resource,
            parameters,
            self.types,
            trace=trace,
            transformation_name=transformation.name,
        )
        links_before = len(trace)

        with self.repository.transaction(
            f"apply {transformation.name}", concern=transformation.concern
        ):
            transformation.rules.apply_all(ctx)
            if self.check_postconditions:
                violated = transformation.postconditions.violations(
                    resource, self.types, parameters
                )
                if violated:
                    first = violated[0]
                    # raising aborts the repository transaction -> full rollback
                    raise PostconditionViolation(
                        first.name,
                        f"postcondition(s) of {transformation.name!r} violated: "
                        + "; ".join(
                            f"{c.name}: {c.description or c.expression}"
                            for c in violated
                        ),
                    )

        created = len(
            self.repository.demarcation.elements_of(transformation.concern)
        )
        result = ApplicationResult(
            transformation=transformation.name,
            concern=transformation.concern,
            parameters=parameters,
            created_elements=created,
            trace_links=len(trace) - links_before,
            duration_s=time.perf_counter() - started,
            preconditions_checked=len(transformation.preconditions)
            if self.check_preconditions
            else 0,
            postconditions_checked=len(transformation.postconditions)
            if self.check_postconditions
            else 0,
        )
        self.applications.append(result)
        return result

    @property
    def application_order(self) -> List[str]:
        """Names of applied transformations, in order (drives precedence)."""
        return [result.transformation for result in self.applications]
