"""The transformation engine: gate, apply, verify, trace, demarcate.

The engine consumes any object satisfying the *transformation spec*
protocol (duck-typed; :class:`repro.core.ConcreteTransformation` is the
canonical implementation):

* ``name`` — display name,
* ``concern`` — concern name (used for demarcation painting),
* ``parameters`` — the concrete parameter values (``Si``),
* ``preconditions`` / ``postconditions`` — :class:`ConditionSet`,
* ``rules`` — :class:`RuleSequence`.

Application is atomic: precondition violations leave the model untouched;
rule exceptions and postcondition violations roll the repository
transaction back before the error propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import (
    PostconditionViolation,
    PreconditionViolation,
)
from repro.metamodel.kernel import MetaClass
from repro.ocl.evaluator import types_from_package
from repro.repository import ModelRepository
from repro.transform.trace import TraceLog
from repro.transform.rules import TransformationContext
from repro.uml.metamodel import UML


@dataclass
class ApplicationResult:
    """Outcome of one transformation application."""

    transformation: str
    concern: str
    parameters: Dict[str, object]
    created_elements: int
    trace_links: int
    duration_s: float
    preconditions_checked: int
    postconditions_checked: int


class TransformationEngine:
    """Applies concrete transformations to the repository's model."""

    def __init__(
        self,
        repository: ModelRepository,
        types: Optional[Dict[str, MetaClass]] = None,
        check_preconditions: bool = True,
        check_postconditions: bool = True,
        record_trace: bool = True,
    ):
        self.repository = repository
        self.types = types if types is not None else types_from_package(UML.package)
        self.check_preconditions = check_preconditions
        self.check_postconditions = check_postconditions
        self.record_trace = record_trace
        self.trace = TraceLog()
        self.applications: List[ApplicationResult] = []

    # -- phases ----------------------------------------------------------------
    #
    # ``apply`` composes the four phases below inside one repository
    # transaction.  The pipeline executor (:mod:`repro.pipeline.executor`)
    # calls them directly so a *batch* of independent transformations can
    # share one transaction, one demarcated savepoint, and one OCL extent
    # cache per phase.

    def gate(self, transformation, parameters=None, extent_cache=None) -> None:
        """Phase 1: mapping applicability + preconditions (model untouched).

        Raises :class:`PreconditionViolation` on the first violated set;
        ``extent_cache`` may share ``allInstances`` extents across checks
        evaluated against the same model state.
        """
        resource = self.repository.resource
        if parameters is None:
            parameters = dict(transformation.parameters)
        mapping_kind = getattr(transformation, "mapping_kind", None)
        if mapping_kind is not None and resource.roots:
            from repro.transform.mappings import check_mapping_applicable

            check_mapping_applicable(mapping_kind, resource.roots[0])

        if self.check_preconditions:
            violated = transformation.preconditions.violations(
                resource, self.types, parameters, extent_cache
            )
            if violated:
                first = violated[0]
                raise PreconditionViolation(
                    first.name,
                    f"precondition(s) of {transformation.name!r} violated: "
                    + "; ".join(
                        f"{c.name}: {c.description or c.expression}" for c in violated
                    ),
                )

    def run_rules(self, transformation, parameters=None) -> int:
        """Phase 2: execute the rule sequence (caller owns the transaction).

        Returns the number of trace links recorded by the rules.
        """
        if parameters is None:
            parameters = dict(transformation.parameters)
        trace = self.trace if self.record_trace else TraceLog()
        ctx = TransformationContext(
            self.repository.resource,
            parameters,
            self.types,
            trace=trace,
            transformation_name=transformation.name,
        )
        links_before = len(trace)
        transformation.rules.apply_all(ctx)
        return len(trace) - links_before

    def verify(self, transformation, parameters=None, extent_cache=None) -> None:
        """Phase 3: postconditions.  Raising inside a repository
        transaction aborts it, rolling the application back."""
        if not self.check_postconditions:
            return
        if parameters is None:
            parameters = dict(transformation.parameters)
        violated = transformation.postconditions.violations(
            self.repository.resource, self.types, parameters, extent_cache
        )
        if violated:
            first = violated[0]
            raise PostconditionViolation(
                first.name,
                f"postcondition(s) of {transformation.name!r} violated: "
                + "; ".join(
                    f"{c.name}: {c.description or c.expression}" for c in violated
                ),
            )

    def record(
        self, transformation, parameters, trace_links: int, duration_s: float
    ) -> ApplicationResult:
        """Phase 4: build and append the aggregated application result."""
        created = len(
            self.repository.demarcation.elements_of(transformation.concern)
        )
        result = ApplicationResult(
            transformation=transformation.name,
            concern=transformation.concern,
            parameters=parameters,
            created_elements=created,
            trace_links=trace_links,
            duration_s=duration_s,
            preconditions_checked=len(transformation.preconditions)
            if self.check_preconditions
            else 0,
            postconditions_checked=len(transformation.postconditions)
            if self.check_postconditions
            else 0,
        )
        self.applications.append(result)
        return result

    def apply(self, transformation) -> ApplicationResult:
        """Apply one concrete transformation atomically."""
        parameters = dict(transformation.parameters)
        started = time.perf_counter()

        self.gate(transformation, parameters)

        with self.repository.transaction(
            f"apply {transformation.name}", concern=transformation.concern
        ):
            trace_links = self.run_rules(transformation, parameters)
            # raising aborts the repository transaction -> full rollback
            self.verify(transformation, parameters)

        return self.record(
            transformation, parameters, trace_links, time.perf_counter() - started
        )

    @property
    def application_order(self) -> List[str]:
        """Names of applied transformations, in order (drives precedence)."""
        return [result.transformation for result in self.applications]
