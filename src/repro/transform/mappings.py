"""The four MDA mapping kinds (§2, after [2]).

    "MDA identifies four types of model-to-model transformations (mappings)
    within the software development life-cycle: PIM-to-PIM transformations
    relate to platform-independent model refinement [...]; PIM-to-PSM
    transformations are used to project a PIM to the selected execution
    infrastructure; PSM-to-PSM transformations relate to platform-dependent
    model refinement; PSM-to-PIM transformations abstract models of
    existing implementations into platform-independent models."

Transformations carry a :class:`MappingKind`; the model itself records its
abstraction level through the ``<<PlatformSpecific>>`` stereotype on the
model root (set by a PIM→PSM projection, removed by a PSM→PIM
abstraction).  :func:`check_mapping_applicable` enforces the obvious
level discipline — e.g. a PSM-to-PSM refinement may not run on a PIM.
"""

from __future__ import annotations

import enum

from repro.errors import TransformationError
from repro.metamodel.instances import MObject
from repro.uml.profiles import apply_stereotype, get_tag, has_stereotype, remove_stereotype

PLATFORM_MARK = "PlatformSpecific"


class MappingKind(enum.Enum):
    PIM_TO_PIM = "pim-to-pim"
    PIM_TO_PSM = "pim-to-psm"
    PSM_TO_PSM = "psm-to-psm"
    PSM_TO_PIM = "psm-to-pim"


def is_platform_specific(model: MObject) -> bool:
    """Whether the model root is marked as a PSM."""
    return has_stereotype(model, PLATFORM_MARK)


def platform_of(model: MObject):
    """The platform name recorded on a PSM root, or None for a PIM."""
    return get_tag(model, PLATFORM_MARK, "platform")


def mark_platform_specific(model: MObject, platform: str) -> None:
    apply_stereotype(model, PLATFORM_MARK, platform=platform)


def unmark_platform_specific(model: MObject) -> None:
    remove_stereotype(model, PLATFORM_MARK)


def check_mapping_applicable(kind: MappingKind, model: MObject) -> None:
    """Enforce abstraction-level discipline; raises on a mismatch."""
    psm = is_platform_specific(model)
    if kind in (MappingKind.PIM_TO_PIM, MappingKind.PIM_TO_PSM) and psm:
        raise TransformationError(
            f"{kind.value} mapping cannot be applied to a platform-specific "
            f"model (platform {platform_of(model)!r}); abstract it first"
        )
    if kind in (MappingKind.PSM_TO_PSM, MappingKind.PSM_TO_PIM) and not psm:
        raise TransformationError(
            f"{kind.value} mapping needs a platform-specific model; "
            "project the PIM to a platform first"
        )
