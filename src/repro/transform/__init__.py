"""S6 — Model transformation engine.

Executes specialized (concrete) transformations against a model held in a
repository: OCL preconditions gate application, rules run inside one
repository transaction (undoable, demarcated by concern), OCL
postconditions verify the result — a failing postcondition rolls the whole
application back — and trace links record which elements each rule
created from which sources.
"""

from repro.transform.conditions import Condition, ConditionSet
from repro.transform.trace import TraceLink, TraceLog
from repro.transform.rules import Rule, RuleSequence, TransformationContext
from repro.transform.engine import ApplicationResult, TransformationEngine

__all__ = [
    "Condition",
    "ConditionSet",
    "TraceLink",
    "TraceLog",
    "Rule",
    "RuleSequence",
    "TransformationContext",
    "TransformationEngine",
    "ApplicationResult",
]
