"""Join-point model: the points in program execution advice can attach to.

A runtime weaver intercepts at the callee, so ``call`` and ``execution``
join points coincide here; both kinds are kept so pointcuts written in
AspectJ style parse and match as expected (a documented substitution —
see DESIGN.md).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Tuple


class JoinPointKind(enum.Enum):
    CALL = "call"
    EXECUTION = "execution"
    GET = "get"
    SET = "set"


class JoinPoint:
    """Reflective context of one intercepted event."""

    __slots__ = (
        "kind",
        "target",
        "class_name",
        "member_name",
        "args",
        "kwargs",
        "result",
        "exception",
    )

    def __init__(
        self,
        kind: JoinPointKind,
        target: Any,
        class_name: str,
        member_name: str,
        args: Tuple = (),
        kwargs: Optional[Dict] = None,
    ):
        self.kind = kind
        self.target = target
        self.class_name = class_name
        self.member_name = member_name
        self.args = args
        self.kwargs = kwargs or {}
        #: set after the underlying member ran (for after-advice inspection)
        self.result: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def signature(self) -> str:
        """``Class.member`` — what member patterns match against."""
        return f"{self.class_name}.{self.member_name}"

    def matches_kind(self, kind: JoinPointKind) -> bool:
        """call and execution join points are interchangeable (runtime weaver)."""
        if kind in (JoinPointKind.CALL, JoinPointKind.EXECUTION):
            return self.kind in (JoinPointKind.CALL, JoinPointKind.EXECUTION)
        return self.kind is kind

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<JoinPoint {self.kind.value}({self.signature})>"
