"""Pointcut language: designators, wildcards, and boolean composition.

Grammar::

    pointcut := or_expr
    or_expr  := and_expr ("||" and_expr)*
    and_expr := unary ("&&" unary)*
    unary    := "!" unary | "(" pointcut ")" | designator
    designator := ("call" | "execution" | "get" | "set") "(" pattern ")"
                | "within" "(" class_pattern ")"
    pattern  := class_pattern "." member_pattern | member_pattern
    class_pattern, member_pattern := identifier with "*" wildcards

Examples: ``call(Account.with*)``, ``execution(*.deposit) && within(Sav*)``,
``set(Account.balance) || get(Account.balance)``, ``!call(*.internal_*)``.
"""

from __future__ import annotations

import fnmatch
import re
from typing import List

from repro.errors import PointcutSyntaxError
from repro.aop.joinpoint import JoinPoint, JoinPointKind

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<AND>&&)|(?P<OR>\|\|)|(?P<NOT>!)|(?P<LP>\()|(?P<RP>\))"
    r"|(?P<NAME>[A-Za-z_][A-Za-z0-9_]*)|(?P<PATTERN>[A-Za-z0-9_*.]+))"
)

_DESIGNATORS = {"call", "execution", "get", "set", "within", "cflow", "cflowbelow"}


class Pointcut:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, jp: JoinPoint) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Pointcut") -> "Pointcut":
        return AndPointcut(self, other)

    def __or__(self, other: "Pointcut") -> "Pointcut":
        return OrPointcut(self, other)

    def __invert__(self) -> "Pointcut":
        return NotPointcut(self)


class KindedPointcut(Pointcut):
    """``kind(ClassPattern.memberPattern)`` designator."""

    def __init__(self, kind: JoinPointKind, class_pattern: str, member_pattern: str):
        self.kind = kind
        self.class_pattern = class_pattern
        self.member_pattern = member_pattern

    def matches(self, jp: JoinPoint) -> bool:
        return (
            jp.matches_kind(self.kind)
            and fnmatch.fnmatchcase(jp.class_name, self.class_pattern)
            and fnmatch.fnmatchcase(jp.member_name, self.member_pattern)
        )

    def __repr__(self):
        return f"{self.kind.value}({self.class_pattern}.{self.member_pattern})"


class CflowPointcut(Pointcut):
    """``cflow(Class.member)`` — matches while control flow is inside a
    join point whose signature matches the pattern (the matched join point
    itself included); ``cflowbelow`` excludes the matching frame itself.

    The weaver maintains the active join-point stack
    (:data:`repro.aop.weaver.call_stack`); evaluating a cflow pointcut
    outside any woven call matches nothing.
    """

    def __init__(self, class_pattern: str, member_pattern: str, below: bool = False):
        self.class_pattern = class_pattern
        self.member_pattern = member_pattern
        self.below = below

    def _frame_matches(self, frame: JoinPoint) -> bool:
        return fnmatch.fnmatchcase(
            frame.class_name, self.class_pattern
        ) and fnmatch.fnmatchcase(frame.member_name, self.member_pattern)

    def matches(self, jp: JoinPoint) -> bool:
        from repro.aop.weaver import call_stack

        frames = call_stack()
        if self.below and frames and frames[-1] is jp:
            frames = frames[:-1]
        return any(self._frame_matches(frame) for frame in frames)

    def __repr__(self):
        name = "cflowbelow" if self.below else "cflow"
        return f"{name}({self.class_pattern}.{self.member_pattern})"


class WithinPointcut(Pointcut):
    """``within(ClassPattern)`` — restricts by the declaring class only."""

    def __init__(self, class_pattern: str):
        self.class_pattern = class_pattern

    def matches(self, jp: JoinPoint) -> bool:
        return fnmatch.fnmatchcase(jp.class_name, self.class_pattern)

    def __repr__(self):
        return f"within({self.class_pattern})"


class AndPointcut(Pointcut):
    def __init__(self, left: Pointcut, right: Pointcut):
        self.left, self.right = left, right

    def matches(self, jp: JoinPoint) -> bool:
        return self.left.matches(jp) and self.right.matches(jp)

    def __repr__(self):
        return f"({self.left!r} && {self.right!r})"


class OrPointcut(Pointcut):
    def __init__(self, left: Pointcut, right: Pointcut):
        self.left, self.right = left, right

    def matches(self, jp: JoinPoint) -> bool:
        return self.left.matches(jp) or self.right.matches(jp)

    def __repr__(self):
        return f"({self.left!r} || {self.right!r})"


class NotPointcut(Pointcut):
    def __init__(self, inner: Pointcut):
        self.inner = inner

    def matches(self, jp: JoinPoint) -> bool:
        return not self.inner.matches(jp)

    def __repr__(self):
        return f"!{self.inner!r}"


def _tokenize(text: str) -> List[tuple]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise PointcutSyntaxError(f"cannot tokenize pointcut at {rest[:15]!r}")
        pos = match.end()
        for group, value in match.groupdict().items():
            if value is not None:
                tokens.append((group, value))
                break
    tokens.append(("EOF", ""))
    return tokens


class _PointcutParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        if token[0] != "EOF":
            self.index += 1
        return token

    def expect(self, kind: str):
        token = self.advance()
        if token[0] != kind:
            raise PointcutSyntaxError(
                f"expected {kind} in pointcut {self.text!r}, found {token[1]!r}"
            )
        return token

    def parse(self) -> Pointcut:
        node = self.or_expr()
        if self.peek()[0] != "EOF":
            raise PointcutSyntaxError(
                f"trailing input in pointcut {self.text!r}: {self.peek()[1]!r}"
            )
        return node

    def or_expr(self) -> Pointcut:
        node = self.and_expr()
        while self.peek()[0] == "OR":
            self.advance()
            node = OrPointcut(node, self.and_expr())
        return node

    def and_expr(self) -> Pointcut:
        node = self.unary()
        while self.peek()[0] == "AND":
            self.advance()
            node = AndPointcut(node, self.unary())
        return node

    def unary(self) -> Pointcut:
        kind, value = self.peek()
        if kind == "NOT":
            self.advance()
            return NotPointcut(self.unary())
        if kind == "LP":
            self.advance()
            node = self.or_expr()
            self.expect("RP")
            return node
        return self.designator()

    def designator(self) -> Pointcut:
        kind, name = self.advance()
        if kind != "NAME" or name not in _DESIGNATORS:
            raise PointcutSyntaxError(
                f"expected a designator ({', '.join(sorted(_DESIGNATORS))}) "
                f"in {self.text!r}, found {name!r}"
            )
        self.expect("LP")
        chunks = []
        while self.peek()[0] in ("PATTERN", "NAME"):
            chunks.append(self.advance()[1])
        pattern = "".join(chunks)
        if not pattern:
            raise PointcutSyntaxError(f"expected a pattern in {self.text!r}")
        self.expect("RP")
        if name == "within":
            if "." in pattern:
                raise PointcutSyntaxError("within() takes a class pattern without '.'")
            return WithinPointcut(pattern)
        if name in ("cflow", "cflowbelow"):
            if "." in pattern:
                class_pattern, _, member_pattern = pattern.rpartition(".")
            else:
                class_pattern, member_pattern = "*", pattern
            if not class_pattern or not member_pattern:
                raise PointcutSyntaxError(f"malformed pattern {pattern!r}")
            return CflowPointcut(class_pattern, member_pattern, below=name == "cflowbelow")
        if "." in pattern:
            class_pattern, _, member_pattern = pattern.rpartition(".")
        else:
            class_pattern, member_pattern = "*", pattern
        if not class_pattern or not member_pattern:
            raise PointcutSyntaxError(f"malformed pattern {pattern!r}")
        return KindedPointcut(JoinPointKind(name), class_pattern, member_pattern)


def parse_pointcut(text) -> Pointcut:
    """Parse a pointcut expression; :class:`Pointcut` values pass through."""
    if isinstance(text, Pointcut):
        return text
    return _PointcutParser(text).parse()
