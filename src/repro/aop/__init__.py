"""S8 — Aspect-oriented programming substrate (AspectJ-equivalent, in Python).

The paper pairs every concrete model transformation with a concrete
*aspect* that implements the concern at code level.  This package supplies
the machinery those aspects run on:

* a join-point model (:mod:`repro.aop.joinpoint`): method call/execution
  and field get/set join points with full reflective context;
* a pointcut language (:mod:`repro.aop.pointcut`): ``call(Account.with*)``,
  ``execution(*.deposit)``, ``get(Account.balance)``, ``set(*.*)``,
  ``within(Account)``, combined with ``&&``, ``||``, ``!`` and parentheses;
* advice kinds ``before``, ``after``, ``after_returning``,
  ``after_throwing`` and ``around`` with ``proceed()``
  (:mod:`repro.aop.advice`);
* a runtime :class:`~repro.aop.weaver.Weaver` that instruments plain Python
  classes and dispatches matching advice with deterministic precedence
  (:mod:`repro.aop.ordering`): the order aspects were deployed — which the
  core (S12) derives from the order transformations were applied at model
  level, exactly as the paper prescribes.
"""

from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.pointcut import Pointcut, parse_pointcut
from repro.aop.advice import Advice, AdviceKind, Invocation
from repro.aop.aspect import Aspect
from repro.aop.weaver import Weaver
from repro.aop.ordering import PrecedenceTable

__all__ = [
    "JoinPoint",
    "JoinPointKind",
    "Pointcut",
    "parse_pointcut",
    "Advice",
    "AdviceKind",
    "Invocation",
    "Aspect",
    "Weaver",
    "PrecedenceTable",
]
