"""Deterministic aspect precedence.

The paper: *"The order in which specialized/concrete aspects will be
applied at code level (their precedence) is dictated by the order in which
the specialized/concrete model transformations were applied at model
level."*

:class:`PrecedenceTable` assigns each deployed aspect a rank equal to its
deployment position (the lifecycle driver deploys in transformation-
application order).  Rank semantics follow AspectJ's dominance rules:

* *before* and *around* advice of a lower-rank (earlier) aspect runs
  **first** — earlier aspects are outermost;
* *after* advice of a lower-rank aspect runs **last** (symmetrically
  outermost).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import WeavingError
from repro.aop.aspect import Aspect


class PrecedenceTable:
    """Deployment-order ranking of aspects."""

    def __init__(self):
        self._rank: Dict[str, int] = {}
        self._aspects: Dict[str, Aspect] = {}
        self._next = 0

    def deploy(self, aspect: Aspect, rank: Optional[int] = None) -> int:
        """Register ``aspect``; explicit ``rank`` overrides arrival order."""
        if aspect.name in self._rank:
            raise WeavingError(f"aspect {aspect.name!r} is already deployed")
        if rank is None:
            rank = self._next
        self._next = max(self._next, rank) + 1
        self._rank[aspect.name] = rank
        self._aspects[aspect.name] = aspect
        return rank

    def undeploy(self, aspect: Aspect) -> None:
        if aspect.name not in self._rank:
            raise WeavingError(f"aspect {aspect.name!r} is not deployed")
        del self._rank[aspect.name]
        del self._aspects[aspect.name]

    def rank_of(self, aspect: Aspect) -> int:
        try:
            return self._rank[aspect.name]
        except KeyError:
            raise WeavingError(f"aspect {aspect.name!r} is not deployed") from None

    def ordered(self) -> List[Tuple[int, Aspect]]:
        """(rank, aspect) pairs, lowest rank (highest precedence) first."""
        return sorted(
            ((rank, self._aspects[name]) for name, rank in self._rank.items()),
            key=lambda pair: pair[0],
        )

    def __contains__(self, aspect: Aspect) -> bool:
        return aspect.name in self._rank

    def __len__(self) -> int:
        return len(self._rank)
