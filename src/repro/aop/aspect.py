"""Aspect: a named unit of cross-cutting behaviour (a bag of advices).

Aspects can be populated imperatively (``aspect.add_advice(...)``) or with
decorators::

    audit = Aspect("audit")

    @audit.before("call(Account.*)")
    def log_entry(jp):
        print("entering", jp.signature)

    @audit.around("call(Account.withdraw)")
    def guard(inv):
        if inv.join_point.args[0] < 0:
            raise ValueError("negative amount")
        return inv.proceed()
"""

from __future__ import annotations

from typing import Callable, List

from repro.aop.advice import Advice, AdviceKind
from repro.aop.joinpoint import JoinPoint


class Aspect:
    """A named collection of advice deployed as one unit."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.advices: List[Advice] = []

    def add_advice(self, kind: AdviceKind, pointcut, body: Callable, name: str = "") -> Advice:
        advice = Advice(kind, pointcut, body, name)
        self.advices.append(advice)
        return advice

    # -- decorator helpers ---------------------------------------------------

    def _decorator(self, kind: AdviceKind, pointcut):
        def register(fn: Callable) -> Callable:
            self.add_advice(kind, pointcut, fn)
            return fn

        return register

    def before(self, pointcut):
        return self._decorator(AdviceKind.BEFORE, pointcut)

    def after(self, pointcut):
        return self._decorator(AdviceKind.AFTER, pointcut)

    def after_returning(self, pointcut):
        return self._decorator(AdviceKind.AFTER_RETURNING, pointcut)

    def after_throwing(self, pointcut):
        return self._decorator(AdviceKind.AFTER_THROWING, pointcut)

    def around(self, pointcut):
        return self._decorator(AdviceKind.AROUND, pointcut)

    # -- queries --------------------------------------------------------------

    def matching(self, jp: JoinPoint) -> List[Advice]:
        return [a for a in self.advices if a.matches(jp)]

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Aspect {self.name} ({len(self.advices)} advice)>"
