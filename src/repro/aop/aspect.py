"""Aspect: a named unit of cross-cutting behaviour (a bag of advices).

Aspects can be populated imperatively (``aspect.add_advice(...)``) or with
decorators::

    audit = Aspect("audit")

    @audit.before("call(Account.*)")
    def log_entry(jp):
        print("entering", jp.signature)

    @audit.around("call(Account.withdraw)")
    def guard(inv):
        if inv.join_point.args[0] < 0:
            raise ValueError("negative amount")
        return inv.proceed()
"""

from __future__ import annotations

from typing import Callable, List

from repro.aop.advice import Advice, AdviceKind
from repro.aop.joinpoint import JoinPoint


class _AdviceList(list):
    """The aspect's public advice list, with mutation notification.

    ``aspect.advices`` is documented public API, so direct mutations
    (``remove``, ``clear``, slicing) must reach subscribed weavers just
    like ``add_advice`` — otherwise a weaver's match memo would keep
    serving advice that no longer exists.
    """

    __slots__ = ("_notify",)

    def __init__(self, notify: Callable[[], None]):
        super().__init__()
        self._notify = notify

    def _mutator(method_name):  # noqa: N805 - tiny local factory
        def mutate(self, *args, **kwargs):
            result = getattr(list, method_name)(self, *args, **kwargs)
            self._notify()
            return result

        mutate.__name__ = method_name
        return mutate

    append = _mutator("append")
    extend = _mutator("extend")
    insert = _mutator("insert")
    remove = _mutator("remove")
    pop = _mutator("pop")
    clear = _mutator("clear")
    sort = _mutator("sort")
    reverse = _mutator("reverse")
    __setitem__ = _mutator("__setitem__")
    __delitem__ = _mutator("__delitem__")
    __iadd__ = _mutator("__iadd__")

    del _mutator


class Aspect:
    """A named collection of advice deployed as one unit."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        #: weavers observing advice mutations (while this aspect is
        #: deployed); notified so match memos invalidate in O(1)
        self._mutation_listeners: List[Callable[[], None]] = []
        self.advices: List[Advice] = _AdviceList(self._notify_mutation)

    def _notify_mutation(self) -> None:
        for listener in list(self._mutation_listeners):
            listener()

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Register a callback fired on every advice mutation."""
        self._mutation_listeners.append(listener)

    def unsubscribe(self, listener: Callable[[], None]) -> None:
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def add_advice(self, kind: AdviceKind, pointcut, body: Callable, name: str = "") -> Advice:
        advice = Advice(kind, pointcut, body, name)
        self.advices.append(advice)
        return advice

    # -- decorator helpers ---------------------------------------------------

    def _decorator(self, kind: AdviceKind, pointcut):
        def register(fn: Callable) -> Callable:
            self.add_advice(kind, pointcut, fn)
            return fn

        return register

    def before(self, pointcut):
        return self._decorator(AdviceKind.BEFORE, pointcut)

    def after(self, pointcut):
        return self._decorator(AdviceKind.AFTER, pointcut)

    def after_returning(self, pointcut):
        return self._decorator(AdviceKind.AFTER_RETURNING, pointcut)

    def after_throwing(self, pointcut):
        return self._decorator(AdviceKind.AFTER_THROWING, pointcut)

    def around(self, pointcut):
        return self._decorator(AdviceKind.AROUND, pointcut)

    # -- queries --------------------------------------------------------------

    def matching(self, jp: JoinPoint) -> List[Advice]:
        return [a for a in self.advices if a.matches(jp)]

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Aspect {self.name} ({len(self.advices)} advice)>"
