"""Advice kinds and the around-invocation chain."""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import AopError
from repro.aop.joinpoint import JoinPoint
from repro.aop.pointcut import Pointcut, parse_pointcut


class AdviceKind(enum.Enum):
    BEFORE = "before"
    AFTER = "after"                    #: runs on both normal and exceptional exit
    AFTER_RETURNING = "after_returning"
    AFTER_THROWING = "after_throwing"
    AROUND = "around"


class Advice:
    """A pointcut-guarded piece of behaviour owned by an aspect.

    Non-around advice bodies receive the :class:`JoinPoint`; around bodies
    receive an :class:`Invocation` whose ``proceed()`` continues the chain.
    """

    def __init__(self, kind: AdviceKind, pointcut, body: Callable, name: str = ""):
        self.kind = kind
        self.pointcut: Pointcut = parse_pointcut(pointcut)
        self.body = body
        self.name = name or getattr(body, "__name__", kind.value)

    def matches(self, jp: JoinPoint) -> bool:
        return self.pointcut.matches(jp)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Advice {self.kind.value} {self.name} @ {self.pointcut!r}>"


class Invocation:
    """The continuation handed to around advice.

    ``proceed()`` runs the next around advice in precedence order, bottoming
    out at the original member.  Each invocation may proceed at most once —
    a second call indicates a logic error in the aspect.
    """

    __slots__ = ("join_point", "_next", "_proceeded")

    def __init__(self, join_point: JoinPoint, next_step: Callable[[], object]):
        self.join_point = join_point
        self._next = next_step
        self._proceeded = False

    def proceed(self):
        if self._proceeded:
            raise AopError(
                f"proceed() called twice for {self.join_point.signature}"
            )
        self._proceeded = True
        return self._next()

    @property
    def proceeded(self) -> bool:
        return self._proceeded
