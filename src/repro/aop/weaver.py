"""Runtime weaver: instruments Python classes and dispatches advice.

Weaving replaces the class's methods with thin wrappers that consult the
weaver's deployed aspects *at call time*, so aspects may be deployed and
undeployed without re-weaving.  Dispatch order at one join point:

1. ``before`` advice, highest-precedence (lowest rank) first;
2. the ``around`` chain, highest-precedence outermost, bottoming out at the
   original member;
3. on normal exit: ``after_returning`` then ``after`` advice, highest-
   precedence **last** (symmetric nesting);
4. on exception: ``after_throwing`` then ``after`` advice, same order, and
   the exception is re-raised.

Field join points (``get``/``set``) are supported by weaving named fields
into properties (:meth:`Weaver.weave_field`).
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, Dict, List, Optional

from repro.analysis.witness import named_rlock
from repro.errors import WeavingError
from repro.aop.advice import Advice, AdviceKind, Invocation
from repro.aop.aspect import Aspect
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.ordering import PrecedenceTable
from repro.aop.pointcut import (
    AndPointcut,
    CflowPointcut,
    NotPointcut,
    OrPointcut,
    Pointcut,
)

_WOVEN_MARK = "__repro_woven__"
_FIELD_PREFIX = "__repro_field_"

#: active join-point stack (innermost last); read by cflow pointcuts.
#: Thread-local: each worker thread of the concurrent dispatcher has its
#: own control flow, so cflow must never observe another thread's frames.
_stack_local = threading.local()


def _current_frames() -> List[JoinPoint]:
    frames = getattr(_stack_local, "frames", None)
    if frames is None:
        frames = _stack_local.frames = []
    return frames


def call_stack() -> List[JoinPoint]:
    """A snapshot of the active woven join points, outermost first."""
    return list(_current_frames())


def _pointcut_is_dynamic(pointcut: Pointcut) -> bool:
    """True when matching depends on runtime state (cflow), so the match
    result cannot be memoized by the join point's static signature."""
    if isinstance(pointcut, CflowPointcut):
        return True
    if isinstance(pointcut, NotPointcut):
        return _pointcut_is_dynamic(pointcut.inner)
    if isinstance(pointcut, (AndPointcut, OrPointcut)):
        return _pointcut_is_dynamic(pointcut.left) or _pointcut_is_dynamic(
            pointcut.right
        )
    return False


class Weaver:
    """Deploys aspects and instruments classes."""

    def __init__(self):
        self.precedence = PrecedenceTable()
        #: class → {member name: original function}
        self._woven_methods: Dict[type, Dict[str, Callable]] = {}
        #: class → {field name: previous class attribute or sentinel}
        self._woven_fields: Dict[type, Dict[str, object]] = {}
        #: static-signature → (matched static advice by kind, dynamic advice)
        self._match_memo: Dict[tuple, tuple] = {}
        #: epoch counter bumped on every deploy/undeploy and on advice
        #: mutation of a deployed aspect (the aspects notify us); memo
        #: staleness is one integer comparison instead of rebuilding an
        #: O(deployed-advice) identity fingerprint on every dispatch
        self._epoch = 0
        self._memo_epoch = 0
        #: guards memo + counters: dispatch runs on concurrent worker
        #: threads, and a stale memo must never be re-published after a
        #: concurrent deploy/undeploy
        self._memo_lock = named_rlock("weaver.memo")
        self.pointcut_memo_hits = 0
        self.pointcut_memo_misses = 0

    # -- deployment ----------------------------------------------------------

    def _bump_epoch(self) -> None:
        with self._memo_lock:
            self._epoch += 1

    def deploy(self, aspect: Aspect, rank: Optional[int] = None) -> int:
        """Deploy an aspect; rank defaults to deployment order."""
        rank = self.precedence.deploy(aspect, rank)
        aspect.subscribe(self._bump_epoch)
        self._bump_epoch()
        return rank

    def undeploy(self, aspect: Aspect) -> None:
        self.precedence.undeploy(aspect)
        aspect.unsubscribe(self._bump_epoch)
        self._bump_epoch()

    @property
    def deployed_aspects(self) -> List[Aspect]:
        return [aspect for _, aspect in self.precedence.ordered()]

    # -- weaving methods -------------------------------------------------------

    def weave_class(self, cls: type, members: Optional[List[str]] = None) -> List[str]:
        """Instrument the plain functions of ``cls``; returns woven names.

        ``members`` restricts which methods are woven; by default every
        non-dunder function defined directly on the class is woven.
        """
        originals = self._woven_methods.setdefault(cls, {})
        woven = []
        names = members if members is not None else [
            name
            for name, value in vars(cls).items()
            if callable(value) and not name.startswith("__")
        ]
        for name in names:
            # explicit member lists may name inherited methods; the wrapper is
            # installed on this class, shadowing the base definition
            value = vars(cls).get(name, getattr(cls, name, None))
            if value is None:
                raise WeavingError(f"{cls.__name__} has no member {name!r}")
            if getattr(value, _WOVEN_MARK, False):
                continue
            if not callable(value):
                raise WeavingError(f"{cls.__name__}.{name} is not callable")
            originals[name] = value
            setattr(cls, name, self._method_wrapper(cls.__name__, name, value))
            woven.append(name)
        return woven

    def unweave_class(self, cls: type) -> None:
        """Restore the original methods and fields of ``cls``."""
        for name, original in self._woven_methods.pop(cls, {}).items():
            setattr(cls, name, original)
        for name, previous in self._woven_fields.pop(cls, {}).items():
            if previous is _MISSING:
                delattr(cls, name)
            else:
                setattr(cls, name, previous)

    def _method_wrapper(self, class_name: str, name: str, original: Callable) -> Callable:
        weaver = self

        @functools.wraps(original)
        def wrapper(self_obj, *args, **kwargs):
            jp = JoinPoint(
                JoinPointKind.EXECUTION, self_obj, class_name, name, args, kwargs
            )
            return weaver.dispatch(jp, lambda: original(self_obj, *args, **kwargs))

        setattr(wrapper, _WOVEN_MARK, True)
        return wrapper

    # -- weaving fields ----------------------------------------------------------

    def weave_field(self, cls: type, field_name: str) -> None:
        """Turn ``cls.field_name`` into a property emitting get/set join points.

        Per-instance values are stored under a mangled key, so instances
        created before weaving keep their state only if the field is woven
        before they assign it; weave at class-definition time in practice.
        """
        fields = self._woven_fields.setdefault(cls, {})
        if field_name in fields:
            return
        fields[field_name] = vars(cls).get(field_name, _MISSING)
        storage = _FIELD_PREFIX + field_name
        weaver = self
        class_name = cls.__name__

        def getter(self_obj):
            jp = JoinPoint(JoinPointKind.GET, self_obj, class_name, field_name)
            return weaver.dispatch(
                jp, lambda: self_obj.__dict__.get(storage)
            )

        def setter(self_obj, value):
            jp = JoinPoint(
                JoinPointKind.SET, self_obj, class_name, field_name, (value,)
            )

            def store():
                self_obj.__dict__[storage] = (
                    jp.args[0] if jp.args else value
                )

            weaver.dispatch(jp, store)

        setattr(cls, field_name, property(getter, setter))

    # -- dispatch ---------------------------------------------------------------

    def _collect(self, jp: JoinPoint) -> Dict[AdviceKind, List[Advice]]:
        """Advice matching ``jp``, grouped by kind, in precedence order.

        Matching against *static* pointcuts depends only on the join
        point's (kind, class, member) signature, so those results are
        memoized per signature (invalidated on deploy/undeploy).  Advice
        guarded by a cflow-containing pointcut is re-evaluated on every
        dispatch — its match depends on the live call stack.
        """
        key = (jp.kind, jp.class_name, jp.member_name)
        with self._memo_lock:
            if self._memo_epoch != self._epoch:
                self._match_memo.clear()
                self._memo_epoch = self._epoch
            memo = self._match_memo.get(key)
            if memo is None:
                self.pointcut_memo_misses += 1
                static_matched: Dict[AdviceKind, List[tuple]] = {
                    kind: [] for kind in AdviceKind
                }
                dynamic: List[tuple] = []
                seq = 0
                for _, aspect in self.precedence.ordered():
                    for advice in aspect.advices:
                        if _pointcut_is_dynamic(advice.pointcut):
                            dynamic.append((seq, advice))
                        elif advice.matches(jp):
                            static_matched[advice.kind].append((seq, advice))
                        seq += 1
                memo = (static_matched, dynamic)
                self._match_memo[key] = memo
            else:
                self.pointcut_memo_hits += 1
            static_matched, dynamic = memo
        if not dynamic:
            return {
                kind: [advice for _, advice in entries]
                for kind, entries in static_matched.items()
            }
        grouped: Dict[AdviceKind, List[Advice]] = {}
        dynamic_matched: Dict[AdviceKind, List[tuple]] = {}
        for seq, advice in dynamic:
            if advice.matches(jp):
                dynamic_matched.setdefault(advice.kind, []).append((seq, advice))
        for kind in AdviceKind:
            entries = static_matched[kind] + dynamic_matched.get(kind, [])
            entries.sort(key=lambda pair: pair[0])
            grouped[kind] = [advice for _, advice in entries]
        return grouped

    def dispatch(self, jp: JoinPoint, terminal: Callable[[], object]):
        """Run the advice chain for ``jp`` around ``terminal``.

        The join point is pushed on the cflow stack for the duration of
        the dispatch (advice chain *and* the underlying member), so cflow
        pointcuts evaluated in nested calls see it.
        """
        frames = _current_frames()
        frames.append(jp)
        try:
            return self._dispatch_inner(jp, terminal)
        finally:
            frames.pop()

    def _dispatch_inner(self, jp: JoinPoint, terminal: Callable[[], object]):
        grouped = self._collect(jp)
        if not any(grouped.values()):
            return terminal()

        call = terminal
        for advice in reversed(grouped[AdviceKind.AROUND]):
            call = _bind_around(advice, jp, call)

        for advice in grouped[AdviceKind.BEFORE]:
            advice.body(jp)
        try:
            result = call()
        except BaseException as exc:
            jp.exception = exc
            for advice in reversed(grouped[AdviceKind.AFTER_THROWING]):
                advice.body(jp)
            for advice in reversed(grouped[AdviceKind.AFTER]):
                advice.body(jp)
            raise
        jp.result = result
        for advice in reversed(grouped[AdviceKind.AFTER_RETURNING]):
            advice.body(jp)
        for advice in reversed(grouped[AdviceKind.AFTER]):
            advice.body(jp)
        return result


def _bind_around(advice: Advice, jp: JoinPoint, next_call: Callable[[], object]):
    def step():
        return advice.body(Invocation(jp, next_call))

    return step


class _Missing:
    def __repr__(self):  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
