"""The declarative deployment model: what a federation *should* look like.

A :class:`DeploymentSpec` is the middleware configuration reified as
data — the paper's "configure from declarative models" claim applied to
deployment itself.  Where the PR 1 pipeline declares *which concerns*
refine an application, the deployment spec declares *where and how the
refined application runs*:

* topology — :class:`NodeSpec` per federation member;
* state placement — :class:`PartitionSpec`/:class:`ServantSpec`: every
  named servant with its type, initial state, and read-only operation
  classification (the dispatch layer's mutation-tracking input);
* the application — :class:`ApplicationSpec`: a PIM source (builder name
  or XMI path) plus the ordered :class:`ConcernSpec` selections lowered
  through the configuration pipeline;
* policies — :class:`ReplicationSpec` (standby count, write-through vs
  log-shipping mode, snapshot threshold),
  :class:`FaultCampaignSpec` (site probabilities), named
  :class:`QoSProfile` s with per-binding defaults, and provisioned
  :class:`UserSpec` s.

Specs are **lossless JSON**: ``from_dict(to_dict(s)) == s``, and
:meth:`DeploymentSpec.digest` is a stable content hash (advisory fields
— the expected-owner hint on a partition — are excluded, since placement
is derived from consistent hashing, not declared).  ``validate()``
checks referential integrity before anything is materialized; the
compiler (:mod:`repro.deploy.compiler`) turns a valid spec into a live
federation, and the reconciler (:mod:`repro.deploy.reconcile`) turns a
spec *difference* into an ordered migration plan.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DeploymentError
from repro.middleware.envelope import QoS

SPEC_FORMAT = "repro-deployment-spec/1"


def _freeze(instance, **tuple_fields) -> None:
    """Coerce list-valued constructor arguments into tuples (frozen
    dataclasses cannot reassign in ``__post_init__`` directly)."""
    for name, value in tuple_fields.items():
        object.__setattr__(instance, name, tuple(value))


@dataclass(frozen=True)
class QoSProfile:
    """A named quality-of-service policy (timeout / retry budget)."""

    name: str
    timeout_ms: Optional[float] = None
    retries: int = 0
    oneway: bool = False

    def to_qos(self) -> QoS:
        return QoS(
            oneway=self.oneway, timeout_ms=self.timeout_ms, retries=self.retries
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "timeout_ms": self.timeout_ms,
            "retries": self.retries,
            "oneway": self.oneway,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QoSProfile":
        return cls(
            name=data["name"],
            timeout_ms=data.get("timeout_ms"),
            retries=data.get("retries", 0),
            oneway=data.get("oneway", False),
        )


@dataclass(frozen=True)
class NodeSpec:
    """One federation member: a named ORB endpoint.

    ``workers == 0`` means serial dispatch (the deterministic baseline);
    ``seed`` parameterizes the node's private middleware services (fault
    RNG); ``None`` lets the compiler derive one from the spec seed.
    ``transport`` overrides the spec-level transport mode for this node
    (``None`` inherits the deployment default); it is serialized only
    when set, so existing specs — and their digests — are unchanged.
    """

    name: str
    workers: int = 0
    seed: Optional[int] = None
    transport: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {"name": self.name, "workers": self.workers, "seed": self.seed}
        if self.transport is not None:
            data["transport"] = self.transport
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeSpec":
        return cls(
            name=data["name"],
            workers=data.get("workers", 0),
            seed=data.get("seed"),
            transport=data.get("transport"),
        )


@dataclass(frozen=True)
class ServantSpec:
    """One named servant: type, initial state, operation classification.

    ``name`` is the full federation binding name
    (``<partition>/<Type>/<index>``); ``state`` is the constructor
    keyword dict (JSON-shaped — it travels in spec files and shard
    manifests); ``read_only_ops`` classifies operations whose dispatch
    mutates no servant state, which lets write-through replication skip
    the sync for routed calls that touched nothing mutable; ``qos``
    names a :class:`QoSProfile` used as this binding's default policy.
    """

    name: str
    type_name: str
    state: Dict[str, Any] = field(default_factory=dict)
    read_only_ops: Tuple[str, ...] = ()
    qos: Optional[str] = None

    def __post_init__(self):
        _freeze(self, read_only_ops=self.read_only_ops)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.type_name,
            "state": dict(self.state),
            "read_only_ops": list(self.read_only_ops),
            "qos": self.qos,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServantSpec":
        return cls(
            name=data["name"],
            type_name=data["type"],
            state=dict(data.get("state", {})),
            read_only_ops=tuple(data.get("read_only_ops", ())),
            qos=data.get("qos"),
        )


@dataclass(frozen=True)
class PartitionSpec:
    """One co-location unit: the servants sharing a partition key.

    ``node`` is an *advisory* expected-owner hint (useful in extracted
    specs for drift inspection); ownership is always derived from the
    consistent-hash ring, so the hint is excluded from the digest and
    from structural diffs.
    """

    key: str
    servants: Tuple[ServantSpec, ...] = ()
    node: Optional[str] = None

    def __post_init__(self):
        _freeze(self, servants=self.servants)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "servants": [servant.to_dict() for servant in self.servants],
            "node": self.node,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PartitionSpec":
        return cls(
            key=data["key"],
            servants=tuple(
                ServantSpec.from_dict(entry) for entry in data.get("servants", ())
            ),
            node=data.get("node"),
        )


@dataclass(frozen=True)
class ReplicationSpec:
    """Standby copies per partition (0 = replication disabled).

    ``mode`` selects the replication machinery: ``"full"`` write-through
    (every mutating call overwrites the standby copies in place) or
    ``"log"`` log shipping (per-servant deltas appended to a sequenced
    partition log that standbys replay).  ``snapshot_every`` is the
    log-mode truncation threshold: after that many retained entries the
    tail is folded into a base snapshot.  Old spec files without these
    keys parse as write-through.
    """

    count: int = 0
    mode: str = "full"
    snapshot_every: int = 64

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mode": self.mode,
            "snapshot_every": self.snapshot_every,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplicationSpec":
        return cls(
            count=data.get("count", 0),
            mode=data.get("mode", "full"),
            snapshot_every=data.get("snapshot_every", 64),
        )


@dataclass(frozen=True)
class ObservabilitySpec:
    """The instrumentation knobs compiled onto a federation.

    ``sample_rate`` is the fraction of logical client calls traced when
    tracing is on (the run-level ``--trace`` switch decides *whether*;
    the spec decides *how much*); ``slow_call_ms`` flags spans at least
    that slow; the capacities bound the span ring buffer and the
    structured event log.  All four are live-tunable: the reconciler
    applies observability-only diffs to a running federation.  Old spec
    files without this section parse as the defaults.
    """

    sample_rate: float = 1.0
    slow_call_ms: float = 50.0
    event_log_capacity: int = 1024
    span_capacity: int = 4096

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sample_rate": self.sample_rate,
            "slow_call_ms": self.slow_call_ms,
            "event_log_capacity": self.event_log_capacity,
            "span_capacity": self.span_capacity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObservabilitySpec":
        return cls(
            sample_rate=data.get("sample_rate", 1.0),
            slow_call_ms=data.get("slow_call_ms", 50.0),
            event_log_capacity=data.get("event_log_capacity", 1024),
            span_capacity=data.get("span_capacity", 4096),
        )


@dataclass(frozen=True)
class FaultSiteSpec:
    """One fault-injection site (pattern allowed) with its probability."""

    site: str
    probability: float

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "probability": self.probability}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSiteSpec":
        return cls(site=data["site"], probability=data["probability"])


@dataclass(frozen=True)
class FaultCampaignSpec:
    """The declared fault campaign; ``armed`` decides whether the
    compiler actually configures the sites (scenarios arm it only for
    ``--faults`` runs, but the campaign itself is part of the spec)."""

    sites: Tuple[FaultSiteSpec, ...] = ()
    armed: bool = False

    def __post_init__(self):
        _freeze(self, sites=self.sites)

    def effective_sites(self) -> Tuple[FaultSiteSpec, ...]:
        """The sites that materialize on a deployed federation."""
        return self.sites if self.armed else ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sites": [site.to_dict() for site in self.sites],
            "armed": self.armed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultCampaignSpec":
        return cls(
            sites=tuple(
                FaultSiteSpec.from_dict(entry) for entry in data.get("sites", ())
            ),
            armed=data.get("armed", False),
        )


@dataclass(frozen=True)
class ConcernSpec:
    """One concern selection (the pipeline's ``Si``) in spec form."""

    concern: str
    params: Dict[str, Any] = field(default_factory=dict)
    after: Tuple[str, ...] = ()

    def __post_init__(self):
        _freeze(self, after=self.after)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "concern": self.concern,
            "params": dict(self.params),
            "after": list(self.after),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConcernSpec":
        return cls(
            concern=data["concern"],
            params=dict(data.get("params", {})),
            after=tuple(data.get("after", ())),
        )


@dataclass(frozen=True)
class ApplicationSpec:
    """The application every node hosts: PIM source + concern plan.

    Exactly one of ``builder`` (a registered application-builder name;
    ``scenario:<name>`` resolves to that scenario's PIM) or
    ``model_xmi`` (path to an XMI model file) must be set.
    """

    name: str
    builder: Optional[str] = None
    model_xmi: Optional[str] = None
    concerns: Tuple[ConcernSpec, ...] = ()

    def __post_init__(self):
        _freeze(self, concerns=self.concerns)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "builder": self.builder,
            "model_xmi": self.model_xmi,
            "concerns": [concern.to_dict() for concern in self.concerns],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ApplicationSpec":
        return cls(
            name=data["name"],
            builder=data.get("builder"),
            model_xmi=data.get("model_xmi"),
            concerns=tuple(
                ConcernSpec.from_dict(entry) for entry in data.get("concerns", ())
            ),
        )


@dataclass(frozen=True)
class UserSpec:
    """A provisioned principal (credential store entry on every node)."""

    name: str
    password: str
    roles: Tuple[str, ...] = ()

    def __post_init__(self):
        _freeze(self, roles=self.roles)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "password": self.password,
            "roles": list(self.roles),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UserSpec":
        return cls(
            name=data["name"],
            password=data["password"],
            roles=tuple(data.get("roles", ())),
        )


@dataclass(frozen=True)
class DeploymentSpec:
    """The whole desired deployment, as one JSON-round-trippable value."""

    name: str
    application: ApplicationSpec
    nodes: Tuple[NodeSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    replication: ReplicationSpec = ReplicationSpec()
    faults: FaultCampaignSpec = FaultCampaignSpec()
    users: Tuple[UserSpec, ...] = ()
    qos_profiles: Tuple[QoSProfile, ...] = ()
    client_qos: Optional[str] = None
    observability: ObservabilitySpec = ObservabilitySpec()
    sim_latency_ms: float = 0.5
    real_latency_ms: float = 0.0
    delivery_workers: int = 2
    seed: int = 0
    #: how routed hops travel ("inproc", "queued", or "socket"); the
    #: default is omitted from the serialized form and the digest, so a
    #: spec that never mentions transports hashes exactly as before
    transport: str = "inproc"

    def __post_init__(self):
        _freeze(
            self,
            nodes=self.nodes,
            partitions=self.partitions,
            users=self.users,
            qos_profiles=self.qos_profiles,
        )

    # -- introspection ----------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return [node.name for node in self.nodes]

    def servants(self) -> List[Tuple[str, ServantSpec]]:
        """Every (partition key, servant spec) pair, in declaration order."""
        return [
            (partition.key, servant)
            for partition in self.partitions
            for servant in partition.servants
        ]

    def profile(self, name: str) -> QoSProfile:
        for profile in self.qos_profiles:
            if profile.name == name:
                return profile
        raise DeploymentError(f"spec {self.name!r} has no QoS profile {name!r}")

    def read_only_by_type(self) -> Dict[str, frozenset]:
        """Read-only operations unioned per servant type — the bus-level
        classification granularity (migrated and promoted servant copies
        keep their classification because it follows the type)."""
        merged: Dict[str, set] = {}
        for _partition, servant in self.servants():
            merged.setdefault(servant.type_name, set()).update(
                servant.read_only_ops
            )
        return {name: frozenset(ops) for name, ops in merged.items()}

    # -- validation ---------------------------------------------------------------

    def problems(self) -> List[str]:
        """Every referential-integrity violation (empty = valid)."""
        problems: List[str] = []
        if not self.name:
            problems.append("spec name must be non-empty")
        if not self.nodes:
            problems.append("spec declares no nodes")
        node_names = [node.name for node in self.nodes]
        for name in sorted({n for n in node_names if node_names.count(n) > 1}):
            problems.append(f"duplicate node name {name!r}")
        for node in self.nodes:
            if node.workers < 0:
                problems.append(
                    f"node {node.name!r}: workers must be >= 0, "
                    f"got {node.workers}"
                )
        app = self.application
        if (app.builder is None) == (app.model_xmi is None):
            problems.append(
                f"application {app.name!r} must set exactly one of "
                "'builder' or 'model_xmi'"
            )
        concern_names = [concern.concern for concern in app.concerns]
        for name in sorted(
            {c for c in concern_names if concern_names.count(c) > 1}
        ):
            problems.append(f"duplicate concern selection {name!r}")
        for concern in app.concerns:
            for dep in concern.after:
                if dep not in concern_names:
                    problems.append(
                        f"concern {concern.concern!r} is ordered after "
                        f"unknown concern {dep!r}"
                    )
        profile_names = [profile.name for profile in self.qos_profiles]
        for name in sorted(
            {p for p in profile_names if profile_names.count(p) > 1}
        ):
            problems.append(f"duplicate QoS profile {name!r}")
        if self.client_qos is not None and self.client_qos not in profile_names:
            problems.append(
                f"client_qos references unknown QoS profile {self.client_qos!r}"
            )
        known_nodes = set(node_names)
        seen_partitions: set = set()
        seen_servants: set = set()
        for partition in self.partitions:
            if not partition.key or "/" in partition.key:
                problems.append(
                    f"partition key {partition.key!r} must be a non-empty "
                    "single path segment"
                )
            if partition.key in seen_partitions:
                problems.append(f"duplicate partition key {partition.key!r}")
            seen_partitions.add(partition.key)
            if partition.node is not None and partition.node not in known_nodes:
                problems.append(
                    f"partition {partition.key!r} names unknown node "
                    f"{partition.node!r}"
                )
            for servant in partition.servants:
                if servant.name in seen_servants:
                    problems.append(f"duplicate servant name {servant.name!r}")
                seen_servants.add(servant.name)
                if not servant.name.startswith(f"{partition.key}/"):
                    problems.append(
                        f"servant {servant.name!r} is not under its "
                        f"partition key {partition.key!r}"
                    )
                if not servant.type_name:
                    problems.append(
                        f"servant {servant.name!r} has an empty type name"
                    )
                if servant.qos is not None and servant.qos not in profile_names:
                    problems.append(
                        f"servant {servant.name!r} references unknown QoS "
                        f"profile {servant.qos!r}"
                    )
                try:
                    round_tripped = json.loads(json.dumps(servant.state))
                except (TypeError, ValueError):
                    problems.append(
                        f"servant {servant.name!r} state is not JSON-shaped"
                    )
                else:
                    if round_tripped != servant.state:
                        problems.append(
                            f"servant {servant.name!r} state does not "
                            "survive a JSON round-trip"
                        )
        if self.replication.count < 0:
            problems.append(
                f"replication count must be >= 0, got {self.replication.count}"
            )
        elif self.replication.count >= max(len(self.nodes), 1):
            if self.replication.count > 0:
                problems.append(
                    f"replication count {self.replication.count} must be "
                    f"smaller than the node count {len(self.nodes)} "
                    "(every standby needs a distinct successor node)"
                )
        if self.replication.mode not in ("full", "log"):
            problems.append(
                f"replication mode must be 'full' or 'log', "
                f"got {self.replication.mode!r}"
            )
        if self.replication.snapshot_every < 1:
            problems.append(
                f"replication snapshot_every must be >= 1, "
                f"got {self.replication.snapshot_every}"
            )
        fault_sites = [site.site for site in self.faults.sites]
        for name in sorted({s for s in fault_sites if fault_sites.count(s) > 1}):
            problems.append(f"duplicate fault site {name!r}")
        for site in self.faults.sites:
            if not 0.0 <= site.probability <= 1.0:
                problems.append(
                    f"fault site {site.site!r}: probability "
                    f"{site.probability} out of [0, 1]"
                )
        user_names = [user.name for user in self.users]
        for name in sorted({u for u in user_names if user_names.count(u) > 1}):
            problems.append(f"duplicate user {name!r}")
        if not 0.0 <= self.observability.sample_rate <= 1.0:
            problems.append(
                f"observability sample_rate {self.observability.sample_rate} "
                "out of [0, 1]"
            )
        if self.observability.slow_call_ms < 0:
            problems.append(
                f"observability slow_call_ms must be >= 0, "
                f"got {self.observability.slow_call_ms}"
            )
        if self.observability.event_log_capacity < 1:
            problems.append(
                f"observability event_log_capacity must be >= 1, "
                f"got {self.observability.event_log_capacity}"
            )
        if self.observability.span_capacity < 1:
            problems.append(
                f"observability span_capacity must be >= 1, "
                f"got {self.observability.span_capacity}"
            )
        if self.sim_latency_ms < 0 or self.real_latency_ms < 0:
            problems.append("latencies must be >= 0")
        if self.delivery_workers < 1:
            problems.append(
                f"delivery_workers must be >= 1, got {self.delivery_workers}"
            )
        transports = ("inproc", "queued", "socket")
        if self.transport not in transports:
            problems.append(
                f"transport must be one of {transports}, got {self.transport!r}"
            )
        for node in self.nodes:
            if node.transport is not None and node.transport not in transports:
                problems.append(
                    f"node {node.name!r} transport must be one of "
                    f"{transports}, got {node.transport!r}"
                )
        return problems

    def validate(self) -> "DeploymentSpec":
        """Raise :class:`DeploymentError` listing every violation."""
        problems = self.problems()
        if problems:
            raise DeploymentError(
                f"deployment spec {self.name!r} is invalid:\n  - "
                + "\n  - ".join(problems)
            )
        return self

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON form (``from_dict`` restores an equal spec)."""
        data = {
            "format": SPEC_FORMAT,
            "name": self.name,
            "application": self.application.to_dict(),
            "nodes": [node.to_dict() for node in self.nodes],
            "partitions": [partition.to_dict() for partition in self.partitions],
            "replication": self.replication.to_dict(),
            "faults": self.faults.to_dict(),
            "users": [user.to_dict() for user in self.users],
            "qos_profiles": [profile.to_dict() for profile in self.qos_profiles],
            "client_qos": self.client_qos,
            "observability": self.observability.to_dict(),
            "sim_latency_ms": self.sim_latency_ms,
            "real_latency_ms": self.real_latency_ms,
            "delivery_workers": self.delivery_workers,
            "seed": self.seed,
        }
        if self.transport != "inproc":
            # omit-when-default: transport choice must not perturb the
            # digest of a spec that never mentions it
            data["transport"] = self.transport
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeploymentSpec":
        if not isinstance(data, dict):
            raise DeploymentError(
                f"deployment spec must be a JSON object, got {type(data).__name__}"
            )
        declared = data.get("format", SPEC_FORMAT)
        if declared != SPEC_FORMAT:
            raise DeploymentError(
                f"unsupported spec format {declared!r} (expected {SPEC_FORMAT!r})"
            )
        try:
            return cls(
                name=data["name"],
                application=ApplicationSpec.from_dict(data["application"]),
                nodes=tuple(
                    NodeSpec.from_dict(entry) for entry in data.get("nodes", ())
                ),
                partitions=tuple(
                    PartitionSpec.from_dict(entry)
                    for entry in data.get("partitions", ())
                ),
                replication=ReplicationSpec.from_dict(
                    data.get("replication", {})
                ),
                faults=FaultCampaignSpec.from_dict(data.get("faults", {})),
                users=tuple(
                    UserSpec.from_dict(entry) for entry in data.get("users", ())
                ),
                qos_profiles=tuple(
                    QoSProfile.from_dict(entry)
                    for entry in data.get("qos_profiles", ())
                ),
                client_qos=data.get("client_qos"),
                observability=ObservabilitySpec.from_dict(
                    data.get("observability", {})
                ),
                sim_latency_ms=data.get("sim_latency_ms", 0.5),
                real_latency_ms=data.get("real_latency_ms", 0.0),
                delivery_workers=data.get("delivery_workers", 2),
                seed=data.get("seed", 0),
                transport=data.get("transport", "inproc"),
            )
        except KeyError as exc:
            raise DeploymentError(
                f"deployment spec is missing required key {exc.args[0]!r}"
            ) from None

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeploymentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DeploymentError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- identity -----------------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The digest input: ``to_dict`` minus advisory placement hints
        (partition ``node`` is derived from the ring, not declared)."""
        data = self.to_dict()
        for partition in data["partitions"]:
            partition.pop("node", None)
        return data

    def digest(self) -> str:
        """Stable content hash of the declared deployment."""
        canon = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """A short human summary (the CLI's --check output)."""
        servant_count = sum(len(p.servants) for p in self.partitions)
        lines = [
            f"deployment spec {self.name!r}:",
            f"  application: {self.application.name} "
            f"({'builder ' + repr(self.application.builder) if self.application.builder else 'xmi ' + repr(self.application.model_xmi)}, "
            f"{len(self.application.concerns)} concern(s))",
            f"  nodes:       {len(self.nodes)} "
            f"({', '.join(self.node_names)})",
            f"  partitions:  {len(self.partitions)} "
            f"({servant_count} servant(s))",
            f"  replication: {self.replication.count} standby(s)/partition"
            + (
                f", {self.replication.mode} mode"
                f" (snapshot every {self.replication.snapshot_every})"
                if self.replication.count
                else ""
            ),
            f"  faults:      {len(self.faults.sites)} site(s), "
            f"{'armed' if self.faults.armed else 'disarmed'}",
            f"  users:       {len(self.users)}",
            f"  qos:         {len(self.qos_profiles)} profile(s)"
            + (f", client default {self.client_qos!r}" if self.client_qos else ""),
            f"  observe:     sample {self.observability.sample_rate:.0%}, "
            f"slow >= {self.observability.slow_call_ms:g} ms, "
            f"events <= {self.observability.event_log_capacity}, "
            f"spans <= {self.observability.span_capacity}",
            f"  digest:      {self.digest()}",
        ]
        return "\n".join(lines)
