"""Compile a :class:`~repro.deploy.spec.DeploymentSpec` into a running federation.

The compiler is the single seam between the declarative model and the
runtime: ``deploy(spec) -> Federation``.  Lowering happens in two
phases, mirroring the configuration pipeline's plan/schedule/execute
split:

1. :meth:`DeploymentCompiler.compile` — *no side effects*: validate the
   spec, resolve the application PIM (builder registry or XMI file),
   bind the concern selections as a
   :class:`~repro.pipeline.ConfigurationPlan`, and schedule them through
   the pipeline's precedence DAG.  The result is a
   :class:`BootstrapPlan` — the ordered step list a deployment will
   execute, inspectable before anything runs (the CLI's dry-run).

2. :meth:`DeploymentCompiler.deploy` — execute the bootstrap plan:
   create the federation, refine the application *once* on a vendor
   lifecycle (driven through the batched pipeline executor), ship it as
   a :class:`~repro.core.shipping.ComponentPackage`, and replay that
   package on every node — so all members (including any node that
   joins later) host the byte-identical artifact.  Then materialize
   servants from their :class:`~repro.deploy.spec.ServantSpec` state,
   provision users, register read-only operation classifications
   (mutation tracking for write-through narrowing), declare per-binding
   QoS defaults, arm the fault campaign, and enable replication.

``extract_spec`` is the inverse projection: a live federation back into
a :class:`DeploymentSpec` (``Federation.current_spec()``), which is what
the reconciler diffs a target spec against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.deploy.spec import (
    ApplicationSpec,
    DeploymentSpec,
    FaultCampaignSpec,
    FaultSiteSpec,
    NodeSpec,
    ObservabilitySpec,
    PartitionSpec,
    ReplicationSpec,
    ServantSpec,
    UserSpec,
)
from repro.errors import DeploymentError, ReproError

#: registered application builders: name -> () -> ModelResource
_BUILDERS: Dict[str, Callable[[], Any]] = {}

SCENARIO_BUILDER_PREFIX = "scenario:"


def register_application(name: str, builder: Callable[[], Any]) -> None:
    """Register a PIM builder under ``name`` for specs to reference."""
    _BUILDERS[name] = builder


def resolve_application(app: ApplicationSpec):
    """The application's PIM resource (builder registry, scenario, or XMI)."""
    if app.builder is not None:
        builder = _BUILDERS.get(app.builder)
        if builder is not None:
            return builder()
        if app.builder.startswith(SCENARIO_BUILDER_PREFIX):
            from repro.runtime.scenarios import get_scenario

            scenario_name = app.builder[len(SCENARIO_BUILDER_PREFIX):]
            try:
                return get_scenario(scenario_name).build_pim()
            except ReproError as exc:
                raise DeploymentError(
                    f"application builder {app.builder!r} failed: {exc}"
                ) from exc
        raise DeploymentError(
            f"unknown application builder {app.builder!r} "
            f"(register one, or use '{SCENARIO_BUILDER_PREFIX}<name>')"
        )
    from repro.uml import UML
    from repro.xmi import read_xmi

    try:
        return read_xmi(app.model_xmi, UML.package)
    except (OSError, ReproError) as exc:
        raise DeploymentError(
            f"application model {app.model_xmi!r} could not be loaded: {exc}"
        ) from exc


def concern_plan(app: ApplicationSpec):
    """Lower the concern selections into the pipeline's plan IR."""
    from repro.pipeline import ConfigurationPlan

    plan = ConfigurationPlan()
    for concern in app.concerns:
        plan.select(concern.concern, after=concern.after, **concern.params)
    return plan


@dataclass
class BootstrapStep:
    """One ordered action of a deployment bootstrap."""

    kind: str
    detail: str

    def __str__(self):
        return f"{self.kind}: {self.detail}"


@dataclass
class BootstrapPlan:
    """The executable lowering of a spec — inspectable before it runs."""

    spec: DeploymentSpec
    steps: List[BootstrapStep] = field(default_factory=list)
    #: the scheduled concern batches (pipeline Schedule), for reporting
    schedule: Any = None
    #: the resolved PIM resource and bound concern plan — deploy()
    #: refines exactly these, so the (possibly expensive) application
    #: resolution happens once per deployment, not once per phase
    resource: Any = None
    concern_plan: Any = None

    def add(self, kind: str, detail: str) -> None:
        self.steps.append(BootstrapStep(kind, detail))

    def describe(self) -> str:
        lines = [f"bootstrap plan for {self.spec.name!r} ({len(self.steps)} steps):"]
        lines.extend(f"  {i + 1:2d}. {step}" for i, step in enumerate(self.steps))
        return "\n".join(lines)


class DeploymentCompiler:
    """Turns a validated spec into a bootstrap plan and a live federation."""

    def __init__(self, registry=None):
        if registry is None:
            from repro.core.registry import default_registry

            registry = default_registry()
        self.registry = registry

    # -- phase 1: lowering (no side effects) ------------------------------------

    def compile(self, spec: DeploymentSpec) -> BootstrapPlan:
        """Validate + lower: application resolved, concerns scheduled,
        bootstrap steps ordered.  Touches nothing live."""
        spec.validate()
        from repro.pipeline import Scheduler

        resource = resolve_application(spec.application)
        plan = BootstrapPlan(spec)
        cplan = concern_plan(spec.application)
        steps = cplan.bind(self.registry)
        schedule = Scheduler().schedule(steps)
        plan.schedule = schedule
        plan.resource = resource
        plan.concern_plan = cplan
        model = resource.roots[0]
        plan.add(
            "application",
            f"refine {model.name!r} through {len(spec.application.concerns)} "
            f"concern(s) in {len(schedule.batches)} pipeline batch(es); "
            "ship once, replay per node",
        )
        for node in spec.nodes:
            mode = f"{node.workers} workers" if node.workers else "serial"
            plan.add("node", f"create {node.name!r} ({mode})")
        for partition in spec.partitions:
            plan.add(
                "partition",
                f"bind {len(partition.servants)} servant(s) under "
                f"{partition.key!r}",
            )
        for user in spec.users:
            plan.add("user", f"provision {user.name!r} roles={list(user.roles)}")
        read_only = spec.read_only_by_type()
        if any(read_only.values()):
            plan.add(
                "classification",
                "mark read-only ops: "
                + ", ".join(
                    f"{type_name}={sorted(ops)}"
                    for type_name, ops in sorted(read_only.items())
                    if ops
                ),
            )
        for pattern, profile in self._binding_qos(spec):
            plan.add("qos", f"default {profile.name!r} for bindings {pattern!r}")
        for site in spec.faults.effective_sites():
            plan.add("fault", f"arm {site.site!r} p={site.probability}")
        if spec.replication.count > 0:
            plan.add(
                "replication",
                f"enable {spec.replication.count} standby(s) per partition, "
                f"{spec.replication.mode} mode "
                f"(snapshot every {spec.replication.snapshot_every})",
            )
        obs = spec.observability
        plan.add(
            "observability",
            f"sample {obs.sample_rate:.0%} of traces, slow-call threshold "
            f"{obs.slow_call_ms:g} ms, event log <= {obs.event_log_capacity}, "
            f"span ring <= {obs.span_capacity}",
        )
        return plan

    @staticmethod
    def _binding_qos(spec: DeploymentSpec):
        """(binding pattern, QoSProfile) pairs declared by servant specs."""
        pairs = []
        for _partition, servant in spec.servants():
            if servant.qos is not None:
                pairs.append((servant.name, spec.profile(servant.qos)))
        return pairs

    # -- phase 2: materialization -------------------------------------------------

    def deploy(self, spec: DeploymentSpec, metrics=None):
        """Materialize ``spec`` as a live :class:`Federation`."""
        from repro.core import MdaLifecycle, MiddlewareServices, ship
        from repro.runtime.federation import Federation

        bootstrap = self.compile(spec)
        federation = Federation(
            seed=spec.seed,
            latency_ms=spec.sim_latency_ms,
            real_latency_s=spec.real_latency_ms / 1000.0,
            metrics=metrics,
            delivery_workers=spec.delivery_workers,
            transport=spec.transport,
        )
        try:
            for index, node_spec in enumerate(spec.nodes):
                federation.add_node(
                    node_spec.name,
                    workers=node_spec.workers,
                    seed=(
                        node_spec.seed
                        if node_spec.seed is not None
                        else spec.seed * 31 + index
                    ),
                )
            # the vendor side refines once, through the pipeline — on
            # the resource the compile phase already resolved; every
            # node replays the shipped package against its own services
            vendor = MdaLifecycle(
                bootstrap.resource,
                registry=self.registry,
                services=MiddlewareServices.create(),
            )
            if spec.application.concerns:
                vendor.apply_plan(bootstrap.concern_plan)
            federation.app_package = ship(vendor)
            for node in federation.nodes.values():
                self.deploy_node(federation, node)
            for type_name, ops in sorted(spec.read_only_by_type().items()):
                if ops:
                    federation.mark_read_only(type_name, ops)
            for partition in spec.partitions:
                owner = federation.node_for(partition.key)
                for servant_spec in partition.servants:
                    self._bind_servant(owner, servant_spec)
            for user in spec.users:
                federation.add_user(user.name, user.password, roles=user.roles)
            for pattern, profile in self._binding_qos(spec):
                federation.set_binding_qos(pattern, profile.to_qos())
            for site in spec.faults.effective_sites():
                federation.configure_fault(site.site, site.probability)
            if spec.replication.count > 0:
                federation.enable_replication(
                    spec.replication.count,
                    mode=spec.replication.mode,
                    snapshot_every=spec.replication.snapshot_every,
                )
            federation.observability.configure(spec.observability)
            federation.spec = spec
            federation.bootstrap_plan = bootstrap
            return federation
        except BaseException:
            federation.shutdown()
            raise

    @staticmethod
    def deploy_node(federation, node) -> None:
        """Replay the federation's shipped application onto one node.

        The package was verified against the vendor model when it was
        shipped moments earlier in this process, so the per-node replay
        skips the fingerprint re-check (pure cost at N nodes).
        """
        from repro.core import replay

        if federation.app_package is None:
            raise DeploymentError(
                "federation has no shipped application package to replay"
            )
        lifecycle = replay(
            federation.app_package, services=node.services, verify=False
        )
        module = lifecycle.build_application(
            f"deploy_{node.name.replace('-', '_')}"
        )
        node.host(lifecycle, module)

    @staticmethod
    def _bind_servant(node, servant_spec: ServantSpec) -> None:
        cls = getattr(node.module, servant_spec.type_name, None)
        if cls is None:
            raise DeploymentError(
                f"application has no class {servant_spec.type_name!r} "
                f"(servant {servant_spec.name!r})"
            )
        try:
            servant = cls(**servant_spec.state)
        except TypeError as exc:
            raise DeploymentError(
                f"servant {servant_spec.name!r}: state does not match "
                f"{servant_spec.type_name!r} constructor: {exc}"
            ) from exc
        node.bind(servant_spec.name, servant)


# ---------------------------------------------------------------------------
# live topology -> spec (the reconciler's "current" side)
# ---------------------------------------------------------------------------


def extract_spec(federation, include_state: bool = False) -> DeploymentSpec:
    """Project a live federation back into a :class:`DeploymentSpec`.

    Structure (nodes, partitions, servant names/types/classification,
    replication, armed fault sites, users) is re-read from the live
    topology; the application section and QoS declarations are taken
    from the spec the federation was compiled from (they cannot drift at
    runtime).  ``include_state`` snapshots each servant's attribute dict
    — useful as a manifest view, but mutable state never participates
    in structural diffs.
    """
    from repro.runtime.federation import ShardedNamingService

    deployed: Optional[DeploymentSpec] = federation.spec
    if deployed is not None:
        application = deployed.application
        qos_profiles = deployed.qos_profiles
        client_qos = deployed.client_qos
        name = deployed.name
        servant_qos = {
            servant.name: servant.qos
            for _partition, servant in deployed.servants()
        }
    else:
        application = ApplicationSpec(name="adopted", builder="adopted")
        qos_profiles = ()
        client_qos = None
        name = "extracted"
        servant_qos = {}

    nodes = tuple(
        NodeSpec(name=node.name, workers=node.workers, seed=node.seed)
        for node in sorted(federation.nodes.values(), key=lambda n: n.name)
    )
    grouped: Dict[str, List[str]] = {}
    for bound in federation.naming.list():
        grouped.setdefault(
            ShardedNamingService.partition_key(bound), []
        ).append(bound)
    read_only = {
        type_name: tuple(sorted(ops))
        for type_name, ops in federation.read_only_ops.items()
    }
    partitions = []
    for key in sorted(grouped):
        servants = []
        for bound in sorted(grouped[key]):
            servant = federation.servant(bound)
            type_name = type(servant).__name__
            state: Dict[str, Any] = {}
            if include_state:
                state = dict(servant.__dict__)
            servants.append(
                ServantSpec(
                    name=bound,
                    type_name=type_name,
                    state=state,
                    read_only_ops=read_only.get(type_name, ()),
                    qos=servant_qos.get(bound),
                )
            )
        partitions.append(
            PartitionSpec(
                key=key,
                servants=tuple(servants),
                node=federation.naming.owner_of(key),
            )
        )
    return DeploymentSpec(
        name=name,
        application=application,
        nodes=nodes,
        partitions=tuple(partitions),
        replication=(
            ReplicationSpec(
                count=federation.replicas.count,
                mode=federation.replicas.mode,
                snapshot_every=federation.replicas.snapshot_every,
            )
            if federation.replicas
            else ReplicationSpec()
        ),
        # the federation's fault log is append-only (reconfigured sites
        # are re-appended); collapse it last-wins so the extracted spec
        # has unique sites and passes its own validate()
        faults=FaultCampaignSpec(
            sites=tuple(
                FaultSiteSpec(site=site, probability=probability)
                for site, probability in {
                    site: probability
                    for site, probability, _kwargs in federation._fault_sites
                }.items()
            ),
            armed=bool(federation._fault_sites),
        ),
        users=tuple(
            UserSpec(name=user, password=password, roles=tuple(roles))
            for user, password, roles in federation._provisioned_users
        ),
        qos_profiles=qos_profiles,
        client_qos=client_qos,
        observability=ObservabilitySpec(
            sample_rate=federation.observability.tracer.sample_rate,
            slow_call_ms=federation.observability.tracer.slow_call_ms,
            event_log_capacity=federation.observability.events.capacity,
            span_capacity=federation.observability.tracer.capacity,
        ),
        sim_latency_ms=federation.latency_ms,
        real_latency_ms=federation.real_latency_s * 1000.0,
        delivery_workers=federation.delivery_workers,
        seed=deployed.seed if deployed is not None else federation.seed,
        transport=federation.transport_mode,
    )


def timed_deploy(spec: DeploymentSpec, registry=None):
    """(federation, compile_s, bootstrap_s) — the benchmark's view."""
    compiler = DeploymentCompiler(registry=registry)
    started = time.perf_counter()
    compiler.compile(spec)
    compiled = time.perf_counter()
    federation = compiler.deploy(spec)
    deployed = time.perf_counter()
    return federation, compiled - started, deployed - compiled
