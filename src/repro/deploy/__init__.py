"""S17 — Declarative deployment: spec → compile → reconcile.

The deployment subsystem closes the loop between the paper's
declarative-configuration pipeline (PR 1: *which concerns* refine an
application) and the elastic runtime (PR 2–4: *where* the refined
application runs):

* :mod:`repro.deploy.spec` — :class:`DeploymentSpec` and its parts:
  topology, servant placement + initial state + read-only operation
  classification, replication, fault campaign, QoS profiles, users.
  Lossless JSON round-trip, referential validation, stable digest.
* :mod:`repro.deploy.compiler` — :class:`DeploymentCompiler`: lower a
  spec through the configuration pipeline into a :class:`BootstrapPlan`
  and materialize it as a live
  :class:`~repro.runtime.federation.Federation`
  (``deploy(spec) -> Federation``).
* :mod:`repro.deploy.reconcile` — :class:`DeploymentDiff` /
  :class:`MigrationPlan`: reconfiguration as a spec diff executed
  through the migration-gate machinery (``apply(federation, target)``),
  with ``Federation.current_spec()`` as the drift-check inverse.
"""

from repro.deploy.compiler import (
    BootstrapPlan,
    BootstrapStep,
    DeploymentCompiler,
    extract_spec,
    register_application,
    resolve_application,
    timed_deploy,
)
from repro.deploy.reconcile import (
    DeploymentDiff,
    MigrationAction,
    MigrationPlan,
    apply,
)
from repro.deploy.spec import (
    SPEC_FORMAT,
    ApplicationSpec,
    ConcernSpec,
    DeploymentSpec,
    FaultCampaignSpec,
    FaultSiteSpec,
    NodeSpec,
    ObservabilitySpec,
    PartitionSpec,
    QoSProfile,
    ReplicationSpec,
    ServantSpec,
    UserSpec,
)

__all__ = [
    "SPEC_FORMAT",
    "ApplicationSpec",
    "BootstrapPlan",
    "BootstrapStep",
    "ConcernSpec",
    "DeploymentCompiler",
    "DeploymentDiff",
    "DeploymentSpec",
    "FaultCampaignSpec",
    "FaultSiteSpec",
    "MigrationAction",
    "MigrationPlan",
    "NodeSpec",
    "ObservabilitySpec",
    "PartitionSpec",
    "QoSProfile",
    "ReplicationSpec",
    "ServantSpec",
    "UserSpec",
    "apply",
    "extract_spec",
    "register_application",
    "resolve_application",
    "timed_deploy",
]
